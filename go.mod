module artemis

go 1.22
