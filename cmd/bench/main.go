// Command bench measures the three throughput-critical paths of the
// validation pipeline — campaign end-to-end throughput, the
// mutate+compile front-end, and raw interpretation — and writes the
// results as deterministic-shape JSON (BENCH_campaign.json by
// default) so CI can archive and diff them across commits.
//
// Usage:
//
//	bench                          # full measurement, BENCH_campaign.json
//	bench -seeds 5 -benchtime 0.1  # the cheap smoke variant `make ci` runs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"artemis/internal/blame"
	"artemis/internal/bugs"
	"artemis/internal/bytecode"
	"artemis/internal/fuzz"
	"artemis/internal/harness"
	"artemis/internal/jonm"
	"artemis/internal/lang/parser"
	"artemis/internal/lang/sem"
	"artemis/internal/profiles"
	"artemis/internal/vm"
)

type benchJSON struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

type report struct {
	Campaign struct {
		Profile    string  `json:"profile"`
		Seeds      int     `json:"seeds"`
		Mutants    int     `json:"mutants"`
		Runs       int     `json:"runs"`
		ElapsedSec float64 `json:"elapsed_sec"`
		RunsPerSec float64 `json:"runs_per_sec"`
	} `json:"campaign"`
	MutateCompile benchJSON `json:"mutate_compile"`
	Interpreter   benchJSON `json:"interpreter"`
	// Blame measures one full fault localization (pass bisection +
	// space shrink) of the flagship GCM reproducer — the cost a
	// campaign pays per first-seen finding when -blame is on.
	Blame benchJSON `json:"blame"`
}

func main() {
	testing.Init() // registers test.benchtime so micro-benchmark time is tunable
	out := flag.String("out", "BENCH_campaign.json", "output JSON path")
	seeds := flag.Int("seeds", 30, "campaign seeds for the throughput measurement")
	benchtime := flag.Float64("benchtime", 1, "seconds per micro-benchmark")
	flag.Parse()
	if err := flag.Set("test.benchtime", fmt.Sprintf("%gs", *benchtime)); err != nil {
		fatal(err)
	}

	prof, err := profiles.Get("hotspotlike")
	if err != nil {
		fatal(err)
	}

	var r report

	fmt.Fprintf(os.Stderr, "bench: campaign (%d seeds)...\n", *seeds)
	stats := harness.RunCampaign(harness.CampaignOptions{
		Options: harness.Options{Profile: prof, MaxIter: 8, Buggy: true},
		Seeds:   *seeds,
	})
	r.Campaign.Profile = stats.Profile
	r.Campaign.Seeds = stats.Seeds
	r.Campaign.Mutants = stats.Mutants
	r.Campaign.Runs = stats.Runs
	r.Campaign.ElapsedSec = stats.Elapsed.Seconds()
	r.Campaign.RunsPerSec = stats.Throughput()

	fmt.Fprintln(os.Stderr, "bench: mutate+compile front-end...")
	r.MutateCompile = run(benchMutateCompile(prof))

	fmt.Fprintln(os.Stderr, "bench: interpreter...")
	r.Interpreter = run(benchInterpreter())

	fmt.Fprintln(os.Stderr, "bench: fault localization...")
	r.Blame = run(benchBlame(prof))

	data, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bench: report written to %s\n", *out)
	fmt.Printf("campaign %.2f runs/s | mutate+compile %d ns/op %d allocs/op | interpreter %d ns/op %d allocs/op | blame %d ns/op\n",
		r.Campaign.RunsPerSec,
		r.MutateCompile.NsPerOp, r.MutateCompile.AllocsPerOp,
		r.Interpreter.NsPerOp, r.Interpreter.AllocsPerOp,
		r.Blame.NsPerOp)
}

// benchMutateCompile measures one mutant's front-end cost the way a
// campaign pays it: JoNM mutation against a pre-analyzed seed plus an
// incremental (method-granular) compile against the seed's program.
func benchMutateCompile(prof *profiles.Profile) func(b *testing.B) {
	seedProg := fuzz.Generate(fuzz.Options{Seed: 1})
	seedInfo := sem.MustAnalyze(seedProg)
	seedBP := bytecode.MustCompile(seedInfo)
	cfg := &jonm.Config{
		Min: prof.SynMin, Max: prof.SynMax, StepMax: prof.SynStepMax,
		Rand:     rand.New(rand.NewSource(1)),
		SeedInfo: seedInfo,
	}
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, rep, err := jonm.Mutate(seedProg, cfg)
			if err != nil {
				b.Fatal(err)
			}
			bytecode.MustCompileDelta(rep.Info, seedBP, rep.Mutated)
		}
	}
}

// benchInterpreter measures raw bytecode interpretation with a reused
// per-worker Scratch, matching the campaign's steady-state run path.
func benchInterpreter() func(b *testing.B) {
	prog, err := parser.Parse(`class T { void main() {
        long a = 0;
        for (int i = 0; i < 200000; i++) { a += i ^ (a >> 3); }
        print(a);
    } }`)
	if err != nil {
		fatal(err)
	}
	bp := harness.Compile(prog)
	scratch := &vm.Scratch{}
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			vm.Run(vm.Config{Scratch: scratch}, bp)
		}
	}
}

// benchBlame measures one complete fault localization of the flagship
// GCM store-sink reproducer: the per-finding bisection cost campaigns
// pay with Blame enabled.
func benchBlame(prof *profiles.Profile) func(b *testing.B) {
	prog, err := parser.Parse(`class T {
        int l = 0;
        void g() {
            for (int i = 0; i < 10; i++) {
                for (int w = 0; w < 13; w += 4) { }
                l += 2;
            }
        }
        void main() {
            for (int r = 0; r < 2000; r++) { l = 0; g(); }
            print(l);
        }
    }`)
	if err != nil {
		fatal(err)
	}
	ref := vm.Run(vm.Config{}, harness.Compile(prog)).Output
	symptom := func(out *vm.Output) bool { return !out.Equivalent(ref) }
	cfg := blame.Config{Profile: prof, Bugs: bugs.NewSet("hs-gcm-store-sink")}
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := blame.Localize(prog, symptom, cfg)
			if res.PassVerdict != blame.VerdictLocalized {
				b.Fatalf("localization regressed: %s", res.PassVerdict)
			}
		}
	}
}

func run(fn func(b *testing.B)) benchJSON {
	res := testing.Benchmark(fn)
	return benchJSON{
		NsPerOp:     res.NsPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
