// Command artemis is the end-to-end JIT-compiler validation driver:
// Algorithm 1 of the paper, at campaign scale, against the simulated
// JVM profiles. It regenerates the paper's evaluation tables.
//
// Usage:
//
//	artemis -profile hotspotlike -seeds 200        # one campaign
//	artemis -table1 -seeds 150                     # Table 1 across all profiles
//	artemis -table2 -seeds 150                     # Table 2 (crash components)
//	artemis -table4 -seeds 400                     # Table 4 (CSE vs traditional)
//	artemis -selfcheck -seeds 50                   # correct VM: expect 0 findings
//	artemis -workers 8 -seeds 1000                 # 8 parallel seed workers
//	artemis -metrics out.json -seeds 200           # exploration-coverage metrics
//	artemis -journal run.journal -seeds 100000     # crash-safe campaign
//	artemis -journal run.journal -resume ...       # continue after a crash
//	artemis -corpus corpus/ -seeds 1000            # persist + auto-reduce findings
//	artemis -blame -corpus corpus/ -seeds 1000     # + localize guilty passes / minimal space
//
// Campaign output — including the -metrics JSON — is byte-identical
// for any -workers value: seeds run in parallel but merge
// deterministically in seed order. The same holds across -resume: an
// interrupted campaign resumed from its journal reproduces exactly
// the stats an uninterrupted run would have produced.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"artemis/internal/harness"
	"artemis/internal/profiles"
	"artemis/internal/profiling"
)

func main() {
	profileName := flag.String("profile", "hotspotlike", "VM profile for single-campaign mode")
	seeds := flag.Int("seeds", 100, "number of seed programs")
	iters := flag.Int("iters", 8, "mutants per seed (MAX_ITER; the paper uses 8)")
	seedBase := flag.Int64("seedbase", 0, "first fuzzer seed")
	steps := flag.Int64("steps", 0, "per-run step budget (0 = default)")
	confirm := flag.Bool("confirm", false, "confirm findings and bisect the responsible defect (slower)")
	workers := flag.Int("workers", 0, "parallel seed workers (0 = all CPUs); any value yields identical output")
	seedTimeout := flag.Duration("seedtimeout", 0, "per-seed wall-clock budget (0 = none; non-zero trades determinism for liveness)")
	quiet := flag.Bool("quiet", false, "suppress progress lines on stderr")
	table1 := flag.Bool("table1", false, "regenerate Table 1 (all profiles)")
	table2 := flag.Bool("table2", false, "regenerate Table 2 (crash components)")
	table4 := flag.Bool("table4", false, "regenerate Table 4 (comparative study, openj9like)")
	selfcheck := flag.Bool("selfcheck", false, "run against the CORRECT VM; any finding is a bug in this repository")
	examples := flag.Bool("examples", false, "print example bug-triggering mutants")
	metricsOut := flag.String("metrics", "", "collect execution metrics and write the JSON report to this file (byte-identical for any -workers value)")
	journalPath := flag.String("journal", "", "stream per-seed outcomes to this crash-safe journal file")
	resume := flag.Bool("resume", false, "resume an interrupted campaign from -journal, skipping already-journaled seeds")
	corpusDir := flag.String("corpus", "", "persist every novel finding (seed, mutant, auto-reduced reproducer) under this directory")
	reduceBudget := flag.Int("reducebudget", 0, "keep-predicate evaluations per finding for in-campaign auto-reduction (0 = default, negative disables)")
	blameOn := flag.Bool("blame", false, "localize every first-seen finding: bisect the guilty pass set and shrink the forced-compilation method set; prints the behavior-derived Table 2")
	blameBudget := flag.Int("blamebudget", 0, "probe VM runs per fault localization (0 = default)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof allocation profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	collectMetrics := *metricsOut != ""
	persisting := *journalPath != "" || *corpusDir != ""
	if *resume && *journalPath == "" {
		fatal(fmt.Errorf("-resume requires -journal"))
	}

	var progress func(harness.Progress)
	if !*quiet {
		progress = harness.StderrProgress(2 * time.Second)
	}

	switch {
	case *table1 || *table2:
		if persisting {
			fatal(fmt.Errorf("-journal/-corpus apply to single-campaign mode, not table sweeps"))
		}
		var all []*harness.CampaignStats
		for _, prof := range profiles.All() {
			fmt.Fprintf(os.Stderr, "campaign: %s (%d seeds x %d mutants)...\n", prof.Name, *seeds, *iters)
			stats := harness.RunCampaign(harness.CampaignOptions{
				Options: harness.Options{
					Profile: prof, MaxIter: *iters, Buggy: true,
					StepLimit: *steps, ConfirmAndFix: *confirm || *table1,
					CollectMetrics: collectMetrics,
				},
				Seeds: *seeds, SeedBase: *seedBase,
				Workers: *workers, SeedTimeout: *seedTimeout, Progress: progress,
				Blame: *blameOn, BlameBudget: *blameBudget,
			})
			all = append(all, stats)
		}
		if *table1 {
			fmt.Println(harness.FormatTable1(all))
		}
		if *table2 {
			fmt.Println(harness.FormatTable2(all))
		}
		if *blameOn {
			fmt.Println(harness.FormatBlameTable(all))
		}
		writeMetrics(*metricsOut, all)
	case *table4:
		if persisting {
			fatal(fmt.Errorf("-journal/-corpus apply to single-campaign mode, not table sweeps"))
		}
		prof, err := profiles.Get("openj9like")
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "comparative campaign: openj9like (%d seeds)...\n", *seeds)
		stats := harness.RunCampaign(harness.CampaignOptions{
			Options: harness.Options{
				Profile: prof, MaxIter: *iters, Buggy: true, StepLimit: *steps,
				CollectMetrics: collectMetrics,
			},
			Seeds:       *seeds,
			SeedBase:    *seedBase,
			Comparative: true,
			Workers:     *workers, SeedTimeout: *seedTimeout, Progress: progress,
			Blame: *blameOn, BlameBudget: *blameBudget,
		})
		fmt.Println(harness.FormatTable4(stats))
		if *blameOn {
			fmt.Println(harness.FormatBlameTable([]*harness.CampaignStats{stats}))
		}
		writeMetrics(*metricsOut, []*harness.CampaignStats{stats})
	default:
		prof, err := profiles.Get(*profileName)
		if err != nil {
			fatal(err)
		}
		buggy := !*selfcheck
		stats, err := harness.RunResumableCampaign(harness.CampaignOptions{
			Options: harness.Options{
				Profile: prof, MaxIter: *iters, Buggy: buggy,
				StepLimit: *steps, ConfirmAndFix: *confirm,
				CollectMetrics: collectMetrics,
			},
			Seeds: *seeds, SeedBase: *seedBase,
			Workers: *workers, SeedTimeout: *seedTimeout, Progress: progress,
			JournalPath: *journalPath, Resume: *resume,
			CorpusDir: *corpusDir, ReduceBudget: *reduceBudget,
			Blame: *blameOn, BlameBudget: *blameBudget,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("profile %s: %d seeds, %d mutants, %d VM runs in %s (%.2f runs/s)\n",
			stats.Profile, stats.Seeds, stats.Mutants, stats.Runs,
			stats.Elapsed.Round(1e6), stats.Throughput())
		fmt.Printf("discarded (timeout) seeds: %d\n", stats.DiscardedSeeds)
		fmt.Printf("distinct findings: %d (+%d duplicate manifestations), flagged seeds: %d\n",
			len(stats.Distinct), stats.Duplicates, stats.CSESeeds)
		for _, f := range stats.Distinct {
			extra := ""
			if f.FixedBy != "" {
				extra = " fixed-by=" + f.FixedBy
			}
			fmt.Printf("  [%s] %-36s x%d seed=%d detail=%q%s\n", f.Kind, f.Component, f.Count, f.SeedID, f.Detail, extra)
		}
		if *blameOn {
			fmt.Println(harness.FormatBlameTable([]*harness.CampaignStats{stats}))
		}
		if *selfcheck {
			if len(stats.Distinct) > 0 {
				fmt.Println("SELF-CHECK FAILED: the correct VM produced discrepancies")
				stopProf() // os.Exit skips defers
				os.Exit(1)
			}
			fmt.Println("self-check passed: no false positives")
		}
		if *examples {
			for i, ex := range stats.Examples {
				fmt.Printf("\n--- example mutant %d ---\n%s", i, ex)
			}
		}
		writeMetrics(*metricsOut, []*harness.CampaignStats{stats})
	}
}

// writeMetrics writes the deterministic metrics JSON to path and prints
// the human-readable coverage summary. No-op when path is empty.
func writeMetrics(path string, all []*harness.CampaignStats) {
	if path == "" {
		return
	}
	data, err := harness.MetricsReport(all)
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println(harness.FormatMetrics(all))
	fmt.Printf("metrics written to %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "artemis:", err)
	os.Exit(1)
}
