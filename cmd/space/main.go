// Command space enumerates the compilation space of a program
// (Figure 1 of the paper): every subset of its methods is forced to
// run compiled or interpreted, and all 2^n outputs are cross-checked.
//
// With no argument it uses the paper's 4-call example program.
//
// Usage:
//
//	space                               # Figure 1's program, 16 choices
//	space -profile artlike prog.mj      # enumerate a user program
//	space -buggy prog.mj                # hunt in the seeded-defect VM
//	space -workers 8 prog.mj            # evaluate choices on 8 workers
//	space -metrics space.json           # per-choice execution metrics
//
// Choices are evaluated in parallel (each on a fresh VM) and reported
// in mask order, so output is identical for any worker count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"artemis/internal/harness"
	"artemis/internal/lang/ast"
	"artemis/internal/lang/parser"
	"artemis/internal/profiles"
	"artemis/internal/profiling"
	"artemis/internal/vm"
)

// figure1 is the example program of Figure 1: four method calls,
// sixteen compilation choices, and every one must print 3.
const figure1 = `class T {
    int baz() { return 1; }
    int bar() { return 2; }
    int foo() { return bar() + baz(); }
    void main() { print(foo()); }
}
`

func main() {
	profileName := flag.String("profile", "hotspotlike", "VM profile")
	buggy := flag.Bool("buggy", false, "use the seeded-defect VM")
	methodsFlag := flag.String("methods", "", "comma-separated methods to toggle (default: all)")
	workers := flag.Int("workers", 0, "parallel choice workers (0 = all CPUs); any value yields identical output")
	metricsOut := flag.String("metrics", "", "write per-choice execution metrics JSON to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof allocation profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	src := figure1
	if flag.NArg() == 1 {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		fatal(err)
	}
	prof, err := profiles.Get(*profileName)
	if err != nil {
		fatal(err)
	}

	var methods []string
	if *methodsFlag != "" {
		methods = strings.Split(*methodsFlag, ",")
	} else {
		for _, m := range prog.Class.Methods {
			methods = append(methods, m.Name)
		}
		sort.Strings(methods)
		if len(methods) > 6 {
			fmt.Fprintf(os.Stderr, "space: limiting to the first 6 of %d methods (64 choices); use -methods to pick\n", len(methods))
			methods = methods[:6]
		}
	}

	choices := harness.EnumerateSpaceParallel(prof, prog, methods, *buggy, *workers)
	fmt.Printf("compilation space of %s modulo %s: %d choices over methods %s\n\n",
		progName(prog), prof.Name, len(choices), strings.Join(methods, ", "))

	byKey := map[string]int{}
	for i, c := range choices {
		line := firstLine(c.Output)
		fmt.Printf("#%-3d %-40s -> %-22s trace %s\n", i+1, c.Label(methods), line, c.Trace.Key())
		byKey[c.Output.Key()]++
	}
	fmt.Println()
	if *metricsOut != "" {
		if err := writeSpaceMetrics(*metricsOut, prog, prof, methods, choices, len(byKey)); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}
	if len(byKey) == 1 {
		fmt.Println("all choices agree: no JIT-compiler bug observable in this space")
	} else {
		fmt.Printf("DISCREPANCY: %d distinct behaviours in one compilation space — JIT-compiler bug!\n", len(byKey))
		stopProf() // os.Exit skips defers
		os.Exit(3)
	}
}

// writeSpaceMetrics exports the enumerated space as deterministic JSON:
// one entry per compilation choice with its output key, JIT-trace key,
// and execution metrics (wall-clock fields are excluded by ExecStats'
// JSON tags, so the bytes are identical for any -workers value).
func writeSpaceMetrics(path string, prog *ast.Program, prof *profiles.Profile, methods []string, choices []harness.SpaceChoice, distinct int) error {
	type choiceJSON struct {
		Label         string        `json:"label"`
		OutputKey     string        `json:"output_key"`
		TraceKey      string        `json:"trace_key"`
		MaxTemp       int           `json:"max_temp"`
		HottestMethod string        `json:"hottest_method,omitempty"`
		Stats         *vm.ExecStats `json:"stats"`
	}
	report := struct {
		Program            string       `json:"program"`
		Profile            string       `json:"profile"`
		Methods            []string     `json:"methods"`
		DistinctBehaviours int          `json:"distinct_behaviours"`
		Choices            []choiceJSON `json:"choices"`
	}{
		Program: progName(prog), Profile: prof.Name, Methods: methods,
		DistinctBehaviours: distinct,
	}
	for _, c := range choices {
		report.Choices = append(report.Choices, choiceJSON{
			Label:         c.Label(methods),
			OutputKey:     c.Output.Key(),
			TraceKey:      c.Trace.Key(),
			MaxTemp:       c.Trace.MaxTemp(),
			HottestMethod: c.Trace.HottestMethod(),
			Stats:         c.Stats,
		})
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func progName(p *ast.Program) string { return p.Class.Name }

func firstLine(o *vm.Output) string {
	switch o.Term {
	case vm.TermCrash:
		return "CRASH"
	case vm.TermException:
		return "exception: " + o.Detail
	case vm.TermTimeout:
		return "timeout"
	}
	if len(o.Lines) == 0 {
		return "(no output)"
	}
	s := strings.Join(o.Lines, ",")
	if len(s) > 20 {
		s = s[:20] + "…"
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "space:", err)
	os.Exit(1)
}
