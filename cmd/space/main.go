// Command space enumerates the compilation space of a program
// (Figure 1 of the paper): every subset of its methods is forced to
// run compiled or interpreted, and all 2^n outputs are cross-checked.
//
// With no argument it uses the paper's 4-call example program.
//
// Usage:
//
//	space                               # Figure 1's program, 16 choices
//	space -profile artlike prog.mj      # enumerate a user program
//	space -buggy prog.mj                # hunt in the seeded-defect VM
//	space -workers 8 prog.mj            # evaluate choices on 8 workers
//
// Choices are evaluated in parallel (each on a fresh VM) and reported
// in mask order, so output is identical for any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"artemis/internal/harness"
	"artemis/internal/lang/ast"
	"artemis/internal/lang/parser"
	"artemis/internal/profiles"
	"artemis/internal/vm"
)

// figure1 is the example program of Figure 1: four method calls,
// sixteen compilation choices, and every one must print 3.
const figure1 = `class T {
    int baz() { return 1; }
    int bar() { return 2; }
    int foo() { return bar() + baz(); }
    void main() { print(foo()); }
}
`

func main() {
	profileName := flag.String("profile", "hotspotlike", "VM profile")
	buggy := flag.Bool("buggy", false, "use the seeded-defect VM")
	methodsFlag := flag.String("methods", "", "comma-separated methods to toggle (default: all)")
	workers := flag.Int("workers", 0, "parallel choice workers (0 = all CPUs); any value yields identical output")
	flag.Parse()

	src := figure1
	if flag.NArg() == 1 {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		fatal(err)
	}
	prof, err := profiles.Get(*profileName)
	if err != nil {
		fatal(err)
	}

	var methods []string
	if *methodsFlag != "" {
		methods = strings.Split(*methodsFlag, ",")
	} else {
		for _, m := range prog.Class.Methods {
			methods = append(methods, m.Name)
		}
		sort.Strings(methods)
		if len(methods) > 6 {
			fmt.Fprintf(os.Stderr, "space: limiting to the first 6 of %d methods (64 choices); use -methods to pick\n", len(methods))
			methods = methods[:6]
		}
	}

	choices := harness.EnumerateSpaceParallel(prof, prog, methods, *buggy, *workers)
	fmt.Printf("compilation space of %s modulo %s: %d choices over methods %s\n\n",
		progName(prog), prof.Name, len(choices), strings.Join(methods, ", "))

	byKey := map[string]int{}
	for i, c := range choices {
		line := firstLine(c.Output)
		fmt.Printf("#%-3d %-40s -> %-22s trace %s\n", i+1, c.Label(methods), line, c.Trace.Key())
		byKey[c.Output.Key()]++
	}
	fmt.Println()
	if len(byKey) == 1 {
		fmt.Println("all choices agree: no JIT-compiler bug observable in this space")
	} else {
		fmt.Printf("DISCREPANCY: %d distinct behaviours in one compilation space — JIT-compiler bug!\n", len(byKey))
		os.Exit(3)
	}
}

func progName(p *ast.Program) string { return p.Class.Name }

func firstLine(o *vm.Output) string {
	switch o.Term {
	case vm.TermCrash:
		return "CRASH"
	case vm.TermException:
		return "exception: " + o.Detail
	case vm.TermTimeout:
		return "timeout"
	}
	if len(o.Lines) == 0 {
		return "(no output)"
	}
	s := strings.Join(o.Lines, ",")
	if len(s) > 20 {
		s = s[:20] + "…"
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "space:", err)
	os.Exit(1)
}
