// Command mjreduce shrinks a bug-triggering MJ program while keeping
// its JIT discrepancy alive (the Perses/C-Reduce step of the paper's
// workflow).
//
// The predicate compares the program's behaviour on the seeded-defect
// VM against pure interpretation:
//
//	-mode diff   keep programs whose compiled output differs (default)
//	-mode crash  keep programs that crash the VM
//
// Usage:
//
//	mjreduce -profile openj9like mutant.mj > reduced.mj
package main

import (
	"flag"
	"fmt"
	"os"

	"artemis/internal/harness"
	"artemis/internal/lang/ast"
	"artemis/internal/lang/parser"
	"artemis/internal/profiles"
	"artemis/internal/reduce"
	"artemis/internal/vm"
)

func main() {
	profileName := flag.String("profile", "hotspotlike", "VM profile")
	mode := flag.String("mode", "diff", "predicate: diff | crash")
	steps := flag.Int64("steps", 100_000_000, "per-run step budget")
	rounds := flag.Int("rounds", 12, "max reduction rounds")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mjreduce [flags] program.mj")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := parser.Parse(string(data))
	if err != nil {
		fatal(err)
	}
	prof, err := profiles.Get(*profileName)
	if err != nil {
		fatal(err)
	}

	runBoth := func(p *ast.Program) (*vm.Output, *vm.Output) {
		bp := harness.Compile(p)
		jit := prof.VMConfig(true)
		jit.StepLimit = *steps
		jitOut := vm.Run(jit, bp).Output
		ref := prof.InterpreterConfig()
		ref.StepLimit = *steps
		refOut := vm.Run(ref, bp).Output
		return jitOut, refOut
	}

	var keep reduce.Predicate
	switch *mode {
	case "crash":
		keep = func(p *ast.Program) bool {
			jitOut, _ := runBoth(p)
			return jitOut.Term == vm.TermCrash
		}
	case "diff":
		keep = func(p *ast.Program) bool {
			jitOut, refOut := runBoth(p)
			if jitOut.Term == vm.TermTimeout || refOut.Term == vm.TermTimeout {
				return false
			}
			return !jitOut.Equivalent(refOut)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	if !keep(prog) {
		fatal(fmt.Errorf("input does not satisfy the %s predicate on %s", *mode, prof.Name))
	}
	before := ast.ProgramSize(prog)
	small := reduce.Reduce(prog, keep, reduce.Options{MaxRounds: *rounds})
	fmt.Fprintf(os.Stderr, "mjreduce: %d -> %d statements\n", before, ast.ProgramSize(small))
	fmt.Print(ast.Print(small))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mjreduce:", err)
	os.Exit(1)
}
