// Command mjreduce shrinks a bug-triggering MJ program while keeping
// its JIT discrepancy alive (the Perses/C-Reduce step of the paper's
// workflow).
//
// The predicate compares the program's behaviour on the seeded-defect
// VM against pure interpretation (built by harness.KeepConfig — the
// same predicates the campaign auto-reducer uses):
//
//	-mode diff   keep programs whose compiled output differs (default)
//	-mode crash  keep programs that crash the VM
//
// Exit status: 0 on success, 1 when the input program does not
// trigger the finding at all (the keep(original) precondition — there
// is nothing to reduce, and proceeding would shrink toward an
// unrelated program), 2 on usage errors.
//
// With -blame, the reduced reproducer is additionally fault-localized
// (internal/blame): the guilty optimization passes and the minimal
// forced-compilation method set are reported on stderr.
//
// Usage:
//
//	mjreduce -profile openj9like mutant.mj > reduced.mj
//	mjreduce -profile openj9like -blame crash.mj > reduced.mj
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"artemis/internal/blame"
	"artemis/internal/harness"
	"artemis/internal/lang/ast"
	"artemis/internal/lang/parser"
	"artemis/internal/profiles"
	"artemis/internal/reduce"
	"artemis/internal/vm"
)

func main() {
	profileName := flag.String("profile", "hotspotlike", "VM profile")
	mode := flag.String("mode", "diff", "predicate: diff | crash")
	steps := flag.Int64("steps", 100_000_000, "per-run step budget")
	rounds := flag.Int("rounds", 12, "max reduction rounds")
	blameOn := flag.Bool("blame", false, "after reduction, bisect the guilty pass set and shrink the forced-compilation method set")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mjreduce [flags] program.mj")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := parser.Parse(string(data))
	if err != nil {
		fatal(err)
	}
	prof, err := profiles.Get(*profileName)
	if err != nil {
		fatal(err)
	}

	kc := harness.KeepConfig{Profile: prof, Bugs: prof.BugSet(), StepLimit: *steps}
	keep, err := kc.ForMode(*mode)
	if err != nil {
		fatal(err)
	}

	before := ast.ProgramSize(prog)
	small, ok := reduce.ReduceChecked(prog, keep, reduce.Options{MaxRounds: *rounds})
	if !ok {
		fmt.Fprintf(os.Stderr,
			"mjreduce: %s never triggers the %q finding on profile %s — nothing to reduce\n"+
				"mjreduce: (check -profile, -mode and -steps match how the finding was produced)\n",
			flag.Arg(0), *mode, prof.Name)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mjreduce: %d -> %d statements\n", before, ast.ProgramSize(small))
	if *blameOn {
		localize(small, prof, *mode, *steps)
	}
	fmt.Print(ast.Print(small))
}

// localize fault-localizes the reduced reproducer and reports the
// result on stderr (stdout stays the reduced program only).
func localize(prog *ast.Program, prof *profiles.Profile, mode string, steps int64) {
	var symptom blame.Symptom
	if mode == "crash" {
		symptom = func(out *vm.Output) bool { return out.Term == vm.TermCrash }
	} else {
		intCfg := prof.InterpreterConfig()
		intCfg.StepLimit = steps
		ref := vm.Run(intCfg, harness.Compile(prog)).Output
		if ref.Term == vm.TermTimeout {
			fmt.Fprintln(os.Stderr, "mjreduce: blame skipped (interpreted reference times out)")
			return
		}
		symptom = func(out *vm.Output) bool {
			return out.Term != vm.TermTimeout && !out.Equivalent(ref)
		}
	}
	res := blame.Localize(prog, symptom, blame.Config{Profile: prof, Bugs: prof.BugSet(), StepLimit: steps})
	fmt.Fprintf(os.Stderr, "mjreduce: blame: passes %s (%d probe runs)\n", res.PassLabel(), res.Runs)
	if res.SpaceVerdict == blame.VerdictMinimal {
		fmt.Fprintf(os.Stderr, "mjreduce: blame: minimal forced-compilation set {%s}\n", strings.Join(res.MinimalMethods, ","))
	} else {
		fmt.Fprintf(os.Stderr, "mjreduce: blame: space %s\n", res.SpaceVerdict)
	}
	if res.IRInvariant != "" {
		fmt.Fprintf(os.Stderr, "mjreduce: blame: IR invariant broken: %s\n", res.IRInvariant)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mjreduce:", err)
	os.Exit(1)
}
