// Command mjrun executes one MJ program on the simulated JVM.
//
// Usage:
//
//	mjrun [flags] program.mj
//
// Examples:
//
//	mjrun -profile hotspotlike prog.mj          # tiered, correct JIT
//	mjrun -xint prog.mj                          # pure interpretation
//	mjrun -buggy -profile openj9like prog.mj     # seeded-defect VM
//	mjrun -count0 prog.mj                        # force-compile everything
//	mjrun -trace prog.mj                         # print the JIT trace
//	mjrun -disasm prog.mj                        # show bytecode and exit
package main

import (
	"flag"
	"fmt"
	"os"

	"artemis/internal/bytecode"
	"artemis/internal/lang/parser"
	"artemis/internal/lang/sem"
	"artemis/internal/profiles"
	"artemis/internal/vm"
)

func main() {
	profileName := flag.String("profile", "hotspotlike", "VM profile: hotspotlike, openj9like, artlike")
	xint := flag.Bool("xint", false, "interpret only (no JIT)")
	buggy := flag.Bool("buggy", false, "enable the profile's seeded JIT defects")
	count0 := flag.Bool("count0", false, "force-compile every method before its first call (-Xjit:count=0 analogue)")
	trace := flag.Bool("trace", false, "record and print the JIT trace (temperature vectors)")
	disasm := flag.Bool("disasm", false, "print bytecode disassembly and exit")
	steps := flag.Int64("steps", 400_000_000, "abstract step budget")
	stats := flag.Bool("stats", false, "print execution statistics")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mjrun [flags] program.mj")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		fatal(err)
	}
	bp, err := bytecode.Compile(info)
	if err != nil {
		fatal(err)
	}
	if *disasm {
		fmt.Print(bytecode.Disasm(bp))
		return
	}

	prof, err := profiles.Get(*profileName)
	if err != nil {
		fatal(err)
	}
	var cfg vm.Config
	switch {
	case *xint:
		cfg = prof.InterpreterConfig()
	default:
		cfg = prof.VMConfig(*buggy)
	}
	if *count0 {
		cfg.Policy = &vm.ForcedPolicy{
			Tier:   prof.MaxTier,
			Choice: func(string, int64) vm.ForceChoice { return vm.ForceCompile },
		}
	}
	cfg.StepLimit = *steps
	cfg.RecordTrace = *trace
	cfg.CollectStats = *stats

	res := vm.Run(cfg, bp)
	for _, line := range res.Output.Lines {
		fmt.Println(line)
	}
	if res.Output.NLines > len(res.Output.Lines) {
		fmt.Printf("... (%d more lines, digest %016x)\n", res.Output.NLines-len(res.Output.Lines), res.Output.Hash())
	}
	switch res.Output.Term {
	case vm.TermNormal:
	case vm.TermException:
		fmt.Printf("Exception: %s\n", res.Output.Detail)
	case vm.TermCrash:
		fmt.Printf("VM CRASH: %s\n", res.Output.Detail)
	case vm.TermTimeout:
		fmt.Println("TIMEOUT: step budget exhausted")
	}
	if *trace && res.Trace != nil {
		fmt.Printf("JIT trace (%d calls): %s\n", res.Trace.NTotal, res.Trace)
	}
	if *stats {
		fmt.Printf("steps=%d compilations=%d deopts=%d osr=%d gc=%d\n",
			res.Steps, res.Compilations, res.Deopts, res.OSREntries, res.GCRuns)
		if s := res.Stats; s != nil {
			fmt.Printf("interp-steps=%d compiled-steps=%d by-tier=%v failed=%d traps=%d peak-heap=%d\n",
				s.InterpSteps, s.CompiledSteps, s.CompilationsByTier,
				s.FailedCompilations, s.UncommonTraps, s.PeakHeapWords)
			if len(s.OptsByPass) > 0 {
				fmt.Printf("jit-opts=%v\n", s.OptsByPass)
			}
		}
	}
	if res.Output.Term == vm.TermCrash {
		os.Exit(3)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mjrun:", err)
	os.Exit(1)
}
