// Command mjfuzz emits random MJ seed programs (the JavaFuzzer
// analogue of Section 4.1).
//
// Usage:
//
//	mjfuzz -seed 42                 # one program to stdout
//	mjfuzz -n 100 -o seeds/        # seeds/seed_0.mj ... seeds/seed_99.mj
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"artemis/internal/fuzz"
	"artemis/internal/lang/ast"
)

func main() {
	seed := flag.Int64("seed", 0, "generator seed")
	n := flag.Int("n", 1, "number of programs")
	out := flag.String("o", "", "output directory (default: stdout)")
	budget := flag.Int("budget", 0, "statement budget (default 90)")
	flag.Parse()

	for i := 0; i < *n; i++ {
		p := fuzz.Generate(fuzz.Options{Seed: *seed + int64(i), StmtBudget: *budget})
		src := ast.Print(p)
		if *out == "" {
			if *n > 1 {
				fmt.Printf("// seed %d\n", *seed+int64(i))
			}
			fmt.Print(src)
			continue
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, fmt.Sprintf("seed_%d.mj", *seed+int64(i)))
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mjfuzz:", err)
	os.Exit(1)
}
