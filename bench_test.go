// Package artemis's root benchmark suite regenerates every table and
// figure of the paper's evaluation (Section 4) against the simulated
// JVM profiles, plus ablation benchmarks for the design choices called
// out in DESIGN.md. Absolute numbers differ from the paper (our VMs
// are simulators, scaled accordingly); the benchmarks assert and
// report the *shape* of each result.
//
// Regenerate everything:
//
//	go test -bench=. -benchmem .
//
// The cmd/artemis and cmd/space tools produce the same tables
// interactively with larger budgets.
package artemis

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
	"time"

	"artemis/internal/fuzz"
	"artemis/internal/harness"
	"artemis/internal/jonm"
	"artemis/internal/lang/ast"
	"artemis/internal/lang/parser"
	"artemis/internal/lang/sem"
	"artemis/internal/profiles"
	"artemis/internal/vm"
)

func mustProfile(b *testing.B, name string) *profiles.Profile {
	b.Helper()
	p, err := profiles.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// ---------------------------------------------------------------------------
// Figure 1 — the compilation space of a simple program
// ---------------------------------------------------------------------------

// BenchmarkFigure1CompilationSpace enumerates all 16 compilation
// choices of the paper's 4-call example and checks they agree.
func BenchmarkFigure1CompilationSpace(b *testing.B) {
	src := `class T {
        int baz() { return 1; }
        int bar() { return 2; }
        int foo() { return bar() + baz(); }
        void main() { print(foo()); }
    }`
	prog, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	prof := mustProfile(b, "hotspotlike")
	methods := []string{"main", "foo", "bar", "baz"}

	var choices []harness.SpaceChoice
	for i := 0; i < b.N; i++ {
		choices = harness.EnumerateSpace(prof, prog, methods, false)
		for _, c := range choices {
			if c.Output.Term != vm.TermNormal || c.Output.Lines[0] != "3" {
				b.Fatalf("choice %s returned %v %v, want 3", c.Label(methods), c.Output.Term, c.Output.Lines)
			}
		}
	}
	b.ReportMetric(float64(len(choices)), "choices")
	if b.N == 1 || testing.Verbose() {
		fmt.Fprintf(os.Stderr, "\nFigure 1: %d compilation choices, all print 3 (consistent space)\n", len(choices))
		for i, c := range choices {
			fmt.Fprintf(os.Stderr, "  #%-2d %s -> %s\n", i+1, c.Label(methods), c.Output.Lines[0])
		}
	}
}

// ---------------------------------------------------------------------------
// Tables 1 and 2 — bug statistics and affected components
// ---------------------------------------------------------------------------

// campaignFor runs one scaled-down campaign for benchmarks.
func campaignFor(prof *profiles.Profile, seeds, iters int, confirm bool) *harness.CampaignStats {
	return harness.RunCampaign(harness.CampaignOptions{
		Options: harness.Options{
			Profile: prof, MaxIter: iters, Buggy: true, ConfirmAndFix: confirm,
		},
		Seeds: seeds,
	})
}

// BenchmarkTable1BugStatistics regenerates Table 1: per simulated JVM,
// distinct findings, duplicates, confirmed, fixed, and the
// mis-compilation/crash/performance split.
func BenchmarkTable1BugStatistics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var all []*harness.CampaignStats
		total := 0
		for _, prof := range profiles.All() {
			stats := campaignFor(prof, 20, 6, true)
			all = append(all, stats)
			total += len(stats.Distinct)
		}
		if total == 0 {
			b.Fatal("campaigns found no bugs at all")
		}
		if i == 0 {
			fmt.Fprintf(os.Stderr, "\n%s\n", harness.FormatTable1(all))
		}
		b.ReportMetric(float64(total), "distinct-bugs")
	}
}

// BenchmarkTable2Components regenerates Table 2: crash counts per JIT
// component; the expected shape is loop/GVN-heavy for hotspotlike and
// GC-heavy for openj9like.
func BenchmarkTable2Components(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var all []*harness.CampaignStats
		for _, name := range []string{"hotspotlike", "openj9like"} {
			all = append(all, campaignFor(mustProfile(b, name), 25, 8, false))
		}
		if i == 0 {
			fmt.Fprintf(os.Stderr, "\n%s\n", harness.FormatTable2(all))
		}
		crashes := 0
		for _, s := range all {
			for _, n := range s.ByComponent() {
				crashes += n
			}
		}
		b.ReportMetric(float64(crashes), "crash-components")
	}
}

// BenchmarkCampaignParallel measures the parallel campaign engine at
// 1, 4, and NumCPU workers over one fixed workload. Stats are
// byte-identical across worker counts (asserted by the harness
// determinism tests); only wall-clock should move. On multi-core
// hardware expect near-linear scaling — per-seed work shares nothing.
func BenchmarkCampaignParallel(b *testing.B) {
	prof := mustProfile(b, "openj9like")
	counts := []int{1, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	for _, w := range counts {
		if seen[w] {
			continue
		}
		seen[w] = true
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stats := harness.RunCampaign(harness.CampaignOptions{
					Options: harness.Options{Profile: prof, MaxIter: 6, Buggy: true},
					Seeds:   30,
					Workers: w,
				})
				b.ReportMetric(stats.Throughput(), "vm-runs/s")
				b.ReportMetric(float64(len(stats.Distinct)), "distinct")
			}
		})
	}
}

// BenchmarkCampaignMetricsOverhead runs BenchmarkCampaignParallel's
// workers=1 workload with metrics collection off and on. The disabled
// path must be in the noise (stats are nil-guarded at compile/deopt/GC
// events and cost nothing per interpreted step); the enabled path adds
// trace recording plus counter updates and stays within a few percent.
func BenchmarkCampaignMetricsOverhead(b *testing.B) {
	prof := mustProfile(b, "openj9like")
	for _, metrics := range []bool{false, true} {
		name := "metrics=off"
		if metrics {
			name = "metrics=on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stats := harness.RunCampaign(harness.CampaignOptions{
					Options: harness.Options{
						Profile: prof, MaxIter: 6, Buggy: true,
						CollectMetrics: metrics,
					},
					Seeds:   30,
					Workers: 1,
				})
				b.ReportMetric(stats.Throughput(), "vm-runs/s")
				if metrics && stats.Metrics == nil {
					b.Fatal("metrics run produced no CampaignMetrics")
				}
			}
		})
	}
}

// BenchmarkCampaignJournalOverhead runs the same workload with the
// seed-outcome journal off and on. Journaling serializes one JSON
// record per merged seed on the reducer goroutine and flushes it —
// O(seeds) work against O(seeds × mutants × runs) VM execution, so
// the cost must be in the noise next to the metrics overhead above.
func BenchmarkCampaignJournalOverhead(b *testing.B) {
	prof := mustProfile(b, "openj9like")
	for _, journaled := range []bool{false, true} {
		name := "journal=off"
		if journaled {
			name = "journal=on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := harness.CampaignOptions{
					Options: harness.Options{
						Profile: prof, MaxIter: 6, Buggy: true,
						CollectMetrics: true,
					},
					Seeds:   30,
					Workers: 1,
				}
				if journaled {
					opts.JournalPath = filepath.Join(b.TempDir(), "bench.journal")
				}
				stats, err := harness.RunResumableCampaign(opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(stats.Throughput(), "vm-runs/s")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Table 3 — mutation cost
// ---------------------------------------------------------------------------

// BenchmarkTable3MutationCostSingleRun measures the paper's
// "Single-run" row: starting cold from source text (parse + analyze +
// mutate + print) for every mutant.
func BenchmarkTable3MutationCostSingleRun(b *testing.B) {
	seedSrc := ast.Print(fuzz.Generate(fuzz.Options{Seed: 1}))
	prof := mustProfile(b, "hotspotlike")
	times := benchMutation(b, func(i int) {
		prog, err := parser.Parse(seedSrc)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sem.Analyze(prog); err != nil {
			b.Fatal(err)
		}
		mutant, _, err := jonm.Mutate(prog, &jonm.Config{
			Min: prof.SynMin, Max: prof.SynMax, StepMax: prof.SynStepMax,
			Rand: rand.New(rand.NewSource(int64(i))),
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = ast.Print(mutant)
	})
	reportCostRow(b, "Single-run", times)
}

// BenchmarkTable3MutationCostLargeScale measures the "Large-scale"
// row: the engine is booted once — the seed is parsed and analyzed a
// single time, its sem.Info handed to every mutation via SeedInfo —
// and then driven to generate many mutants, each validity-checked
// incrementally (AnalyzeDelta re-checks only mutated methods). This is
// exactly how harness.Validate drives jonm in a campaign.
func BenchmarkTable3MutationCostLargeScale(b *testing.B) {
	prog := fuzz.Generate(fuzz.Options{Seed: 1})
	info := sem.MustAnalyze(prog)
	prof := mustProfile(b, "hotspotlike")
	times := benchMutation(b, func(i int) {
		mutant, _, err := jonm.Mutate(prog, &jonm.Config{
			Min: prof.SynMin, Max: prof.SynMax, StepMax: prof.SynStepMax,
			Rand:     rand.New(rand.NewSource(int64(i))),
			SeedInfo: info,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = mutant
	})
	reportCostRow(b, "Large-scale", times)
}

func benchMutation(b *testing.B, one func(i int)) []time.Duration {
	var times []time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		one(i)
		times = append(times, time.Since(start))
	}
	return times
}

func reportCostRow(b *testing.B, label string, times []time.Duration) {
	if len(times) == 0 {
		return
	}
	sorted := append([]time.Duration(nil), times...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, t := range sorted {
		sum += t
	}
	mean := sum / time.Duration(len(sorted))
	median := sorted[len(sorted)/2]
	b.ReportMetric(float64(mean.Microseconds()), "mean-µs")
	b.ReportMetric(float64(median.Microseconds()), "median-µs")
	b.ReportMetric(float64(sorted[0].Microseconds()), "min-µs")
	b.ReportMetric(float64(sorted[len(sorted)-1].Microseconds()), "max-µs")
	fmt.Fprintf(os.Stderr, "Table 3 row %-12s mean=%v median=%v min=%v max=%v (n=%d)\n",
		label, mean, median, sorted[0], sorted[len(sorted)-1], len(sorted))
}

// ---------------------------------------------------------------------------
// Table 4 — comparative study and throughput
// ---------------------------------------------------------------------------

// BenchmarkTable4Comparative regenerates the comparative study: CSE
// versus the traditional default-vs-fully-compiled oracle on the
// openj9like profile. The expected shape: CSE flags strictly more
// seeds, with a small overlap.
func BenchmarkTable4Comparative(b *testing.B) {
	prof := mustProfile(b, "openj9like")
	for i := 0; i < b.N; i++ {
		stats := harness.RunCampaign(harness.CampaignOptions{
			Options:     harness.Options{Profile: prof, MaxIter: 8, Buggy: true},
			Seeds:       60,
			Comparative: true,
		})
		if i == 0 {
			fmt.Fprintf(os.Stderr, "\n%s\n", harness.FormatTable4(stats))
		}
		b.ReportMetric(float64(stats.CSESeeds), "cse-seeds")
		b.ReportMetric(float64(stats.TradSeeds), "trad-seeds")
		b.ReportMetric(float64(stats.BothSeeds), "both-seeds")
		b.ReportMetric(stats.Throughput(), "vm-runs/s")
	}
}

// ---------------------------------------------------------------------------
// Ablations (design choices from DESIGN.md)
// ---------------------------------------------------------------------------

// BenchmarkAblationMaxIter varies MAX_ITER (the paper picks 8 as the
// cost/effectiveness sweet spot).
func BenchmarkAblationMaxIter(b *testing.B) {
	prof := mustProfile(b, "openj9like")
	for _, iters := range []int{2, 8, 16} {
		b.Run(fmt.Sprintf("iters=%d", iters), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stats := harness.RunCampaign(harness.CampaignOptions{
					Options: harness.Options{Profile: prof, MaxIter: iters, Buggy: true},
					Seeds:   15,
				})
				b.ReportMetric(float64(stats.CSESeeds), "flagged-seeds")
				b.ReportMetric(float64(len(stats.Distinct)), "distinct")
				b.ReportMetric(float64(stats.Runs), "vm-runs")
			}
		})
	}
}

// BenchmarkAblationMutators compares single-mutator configurations
// against the full LI+SW+MI set.
func BenchmarkAblationMutators(b *testing.B) {
	prof := mustProfile(b, "openj9like")
	sets := map[string][]jonm.MutatorName{
		"LI":  {jonm.LI},
		"SW":  {jonm.SW},
		"MI":  {jonm.MI},
		"all": {jonm.LI, jonm.SW, jonm.MI},
	}
	for _, name := range []string{"LI", "SW", "MI", "all"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stats := harness.RunCampaign(harness.CampaignOptions{
					Options: harness.Options{Profile: prof, MaxIter: 6, Buggy: true, Mutators: sets[name]},
					Seeds:   15,
				})
				b.ReportMetric(float64(stats.CSESeeds), "flagged-seeds")
				b.ReportMetric(float64(len(stats.Distinct)), "distinct")
			}
		})
	}
}

// BenchmarkAblationSkeletons toggles statement-skeleton synthesis
// (Section 3.4 argues skeletons diversify control/data flow inside
// synthesized loops).
func BenchmarkAblationSkeletons(b *testing.B) {
	prof := mustProfile(b, "hotspotlike")
	for _, disabled := range []bool{false, true} {
		name := "with-skeletons"
		if disabled {
			name = "without-skeletons"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stats := harness.RunCampaign(harness.CampaignOptions{
					Options: harness.Options{Profile: prof, MaxIter: 6, Buggy: true, DisableSkeletons: disabled},
					Seeds:   20,
				})
				b.ReportMetric(float64(len(stats.Distinct)), "distinct")
				b.ReportMetric(float64(stats.CSESeeds), "flagged-seeds")
			}
		})
	}
}

// BenchmarkAblationThresholds compares the default profile thresholds
// against lowered ones (the Section 4.5 "workaround" the authors
// tried and abandoned: lower thresholds compile more methods, which
// can shrink the explorable space).
func BenchmarkAblationThresholds(b *testing.B) {
	base := mustProfile(b, "openj9like")
	lowered := *base
	lowered.Name = "openj9like-lowthresh"
	lowered.EntryThresholds = []int64{30, 120}
	lowered.OSRThresholds = []int64{40, 150}
	for _, prof := range []*profiles.Profile{base, &lowered} {
		prof := prof
		b.Run(prof.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stats := harness.RunCampaign(harness.CampaignOptions{
					Options: harness.Options{Profile: prof, MaxIter: 6, Buggy: true},
					Seeds:   15,
				})
				b.ReportMetric(float64(len(stats.Distinct)), "distinct")
				b.ReportMetric(float64(stats.CSESeeds), "flagged-seeds")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks
// ---------------------------------------------------------------------------

// BenchmarkInterpreter measures raw bytecode interpretation speed.
func BenchmarkInterpreter(b *testing.B) {
	src := `class T { void main() {
        long a = 0;
        for (int i = 0; i < 200000; i++) { a += i ^ (a >> 3); }
        print(a);
    } }`
	prog, _ := parser.Parse(src)
	bp := harness.Compile(prog)
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		res := vm.Run(vm.Config{}, bp)
		steps = res.Steps
	}
	b.ReportMetric(float64(steps), "steps/run")
}

// BenchmarkTieredExecution measures the same workload under tiered
// JIT execution (OSR + tier-up included).
func BenchmarkTieredExecution(b *testing.B) {
	src := `class T { void main() {
        long a = 0;
        for (int i = 0; i < 200000; i++) { a += i ^ (a >> 3); }
        print(a);
    } }`
	prog, _ := parser.Parse(src)
	bp := harness.Compile(prog)
	prof := mustProfile(b, "hotspotlike")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := prof.VMConfig(false)
		vm.Run(cfg, bp)
	}
}

// BenchmarkJITCompileTier2 measures optimizing-tier compilation
// latency on a fuzzed method corpus.
func BenchmarkJITCompileTier2(b *testing.B) {
	prog := fuzz.Generate(fuzz.Options{Seed: 5})
	bp := harness.Compile(prog)
	prof := mustProfile(b, "hotspotlike")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := prof.VMConfig(false)
		cfg.Policy = &vm.ForcedPolicy{
			Tier:       2,
			Choice:     func(string, int64) vm.ForceChoice { return vm.ForceCompile },
			DisableOSR: true,
		}
		vm.Run(cfg, bp)
	}
}

// BenchmarkSeedGeneration measures JavaFuzzer-analogue throughput.
func BenchmarkSeedGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fuzz.Generate(fuzz.Options{Seed: int64(i)})
	}
}
