// spacewalk reproduces Figure 1 of the paper: the compilation space
// of a simple 4-call program has 2^4 = 16 JIT compilation choices;
// running the program under every choice must consistently print 3,
// while each choice produces a distinct JIT trace (the temperature
// vectors of Definition 3.2).
//
// It then demonstrates how the same enumeration becomes a test oracle:
// with the seeded-defect VM and a speculation-hostile program, some
// points of the space disagree — a JIT bug caught purely by walking
// the compilation space.
//
// Run with: go run ./examples/spacewalk
package main

import (
	"fmt"

	"artemis/internal/harness"
	"artemis/internal/lang/parser"
	"artemis/internal/profiles"
	"artemis/internal/vm"
)

const figure1 = `class T {
    int baz() { return 1; }
    int bar() { return 2; }
    int foo() { return bar() + baz(); }
    void main() { print(foo()); }
}
`

func main() {
	prof, err := profiles.Get("hotspotlike")
	if err != nil {
		panic(err)
	}
	prog, err := parser.Parse(figure1)
	if err != nil {
		panic(err)
	}

	methods := []string{"main", "foo", "bar", "baz"}
	fmt.Printf("Figure 1: compilation space of a %d-call program (2^%d = %d choices)\n\n",
		len(methods), len(methods), 1<<len(methods))

	choices := harness.EnumerateSpace(prof, prog, methods, false)
	agreed := true
	traces := map[string]bool{}
	for i, c := range choices {
		out := "?"
		if c.Output.Term == vm.TermNormal && len(c.Output.Lines) > 0 {
			out = c.Output.Lines[0]
		}
		fmt.Printf("  choice #%-2d %-44s -> %s\n", i+1, c.Label(methods), out)
		if out != "3" {
			agreed = false
		}
		traces[c.Trace.Key()] = true
	}
	fmt.Printf("\n%d distinct JIT traces; ", len(traces))
	if agreed {
		fmt.Println("all 16 choices print 3 — the space is consistent. ✓")
	} else {
		fmt.Println("the space is INCONSISTENT — JIT bug!")
	}

	fmt.Println("\n--- the same oracle as a bug detector ---")
	// This program's g() is heavily pre-invoked with z == true, so
	// compiling it triggers profile-guided speculation; under the
	// seeded-defect VM some compilation choices then disagree.
	buggyProg := `class T {
        boolean z = false;
        int l = 0;
        int g(int x) {
            int a = l;
            if (z) { l = a + 5; }
            int b = l;
            return a + b + x;
        }
        void heat() {
            z = true;
            for (int u = 0; u < 3000; u++) { g(u); }
            z = false;
            l = 0;
        }
        void main() {
            heat();
            int s = 0;
            for (int i = 0; i < 6; i++) { z = i % 2 == 0; s += g(i); }
            print(s);
            print(l);
        }
    }`
	p2, err := parser.Parse(buggyProg)
	if err != nil {
		panic(err)
	}
	m2 := []string{"main", "g", "heat"}
	choices2 := harness.EnumerateSpace(prof, p2, m2, true)
	outs := map[string]int{}
	for _, c := range choices2 {
		outs[c.Output.Key()]++
	}
	fmt.Printf("%d compilation choices over %v produced %d distinct behaviours\n",
		len(choices2), m2, len(outs))
	if len(outs) > 1 {
		fmt.Println("=> compilation-space exploration exposed a JIT bug the default run may hide")
		for _, c := range choices2 {
			fmt.Printf("  %-36s -> %v %v\n", c.Label(m2), c.Output.Term, c.Output.Lines)
		}
	}
}
