// Quickstart: the smallest end-to-end use of the library.
//
//  1. Parse an MJ program (the Java-like test language).
//  2. Run it on the tiered VM and look at its JIT trace.
//  3. Apply one JoNM mutation and verify neutrality: same output,
//     different JIT trace — one step of compilation space exploration.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"artemis/internal/bytecode"
	"artemis/internal/jit"
	"artemis/internal/jonm"
	"artemis/internal/lang/ast"
	"artemis/internal/lang/parser"
	"artemis/internal/lang/sem"
	"artemis/internal/vm"
)

const program = `class Demo {
    int total = 0;
    int step(int x) { return x * 3 + 1; }
    void main() {
        for (int i = 0; i < 10; i++) {
            total += step(i);
        }
        print(total);
    }
}
`

func main() {
	// 1. Front end: parse, type-check, compile to bytecode.
	prog, err := parser.Parse(program)
	if err != nil {
		log.Fatal(err)
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		log.Fatal(err)
	}
	bp, err := bytecode.Compile(info)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Run on a tiered VM (interpreter + two JIT tiers) with tiny
	// thresholds so this toy program becomes hot, and record the JIT
	// trace (the temperature vectors of Definition 3.2).
	cfg := vm.Config{
		JIT:             jit.New(jit.Options{MaxTier: 2}),
		EntryThresholds: []int64{5, 20},
		OSRThresholds:   []int64{5, 20},
		RecordTrace:     true,
		CollectStats:    true,
	}
	seedRes := vm.Run(cfg, bp)
	fmt.Println("seed output:   ", seedRes.Output.Lines)
	fmt.Println("seed JIT trace:", seedRes.Trace)

	// Execution metrics (Result.Stats): how much of the compilation
	// machinery the run exercised.
	st := seedRes.Stats
	fmt.Printf("seed metrics:   %d interpreted + %d compiled steps, "+
		"compilations by tier %v (%d OSR), %d deopts\n",
		st.InterpSteps, st.CompiledSteps, st.CompilationsByTier,
		st.OSRCompilations, st.Deopts)

	// 3. One JoNM mutation: same observable behaviour, different
	// compilation choices.
	mutant, report, err := jonm.Mutate(prog, &jonm.Config{
		Min: 50, Max: 100, StepMax: 4,
		Rand: rand.New(rand.NewSource(7)),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\napplied mutations:", report)

	mbp := bytecode.MustCompile(sem.MustAnalyze(mutant))
	cfg.JIT = jit.New(jit.Options{MaxTier: 2}) // fresh compiler caches
	mutRes := vm.Run(cfg, mbp)
	fmt.Println("mutant output: ", mutRes.Output.Lines)
	fmt.Printf("mutant JIT trace: %d calls, max temperature t%d\n",
		mutRes.Trace.NTotal, mutRes.Trace.MaxTemp())

	// The compilation-space oracle: equivalent outputs, or the JIT is
	// broken.
	if mutRes.Output.Equivalent(seedRes.Output) {
		fmt.Println("\n✓ outputs agree across compilation choices (no JIT bug observed)")
	} else {
		fmt.Println("\n✗ DISCREPANCY — JIT-compiler bug!")
	}
	fmt.Println("\nmutant source:")
	fmt.Print(ast.Print(mutant))
}
