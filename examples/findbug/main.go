// findbug reproduces the paper's core workflow end to end (Sections
// 2.2 and 4.1): fuzz seed programs, mutate them with JoNM, run seed
// and mutants on a buggy production-like VM, catch a discrepancy, and
// reduce the bug-triggering mutant to a small reproducer — the same
// pipeline that produced the paper's JDK-8288975 report.
//
// Run with: go run ./examples/findbug
package main

import (
	"fmt"
	"math/rand"

	"artemis/internal/fuzz"
	"artemis/internal/harness"
	"artemis/internal/lang/ast"
	"artemis/internal/lang/parser"
	"artemis/internal/profiles"
	"artemis/internal/reduce"
	"artemis/internal/vm"
)

func main() {
	prof, err := profiles.Get("hotspotlike")
	if err != nil {
		panic(err)
	}
	fmt.Printf("hunting JIT bugs in the %s VM (%s)\n\n", prof.Name, prof.Description)

	// Phase 1: Algorithm 1 over fuzzed seeds until a finding appears.
	var buggySrc string
	var finding harness.Finding
	for seed := int64(0); seed < 200; seed++ {
		seedProg := fuzz.Generate(fuzz.Options{Seed: seed})
		opts := harness.Options{
			Profile: prof,
			MaxIter: 8,
			Buggy:   true,
			Rand:    rand.New(rand.NewSource(seed * 31)),
		}
		res := harness.Validate(seedProg, seed, opts)
		if len(res.Findings) == 0 {
			continue
		}
		// MutantSources pairs 1:1 with Findings; a seed whose default
		// run crashed has no mutant source ("") and cannot be reduced,
		// so pick the first finding that comes with one.
		found := false
		for i, f := range res.Findings {
			if res.MutantSources[i] != "" {
				finding, buggySrc = f, res.MutantSources[i]
				found = true
				break
			}
		}
		if !found {
			continue
		}
		fmt.Printf("seed %d, mutant %d: %s", seed, finding.MutantID, finding.Kind)
		if finding.Component != "" {
			fmt.Printf(" in %q", finding.Component)
		}
		fmt.Printf("\n  detail: %s\n\n", finding.Detail)
		break
	}
	if buggySrc == "" {
		fmt.Println("no finding in this window — try more seeds")
		return
	}

	// Phase 2: reduce the mutant while the discrepancy persists (the
	// Perses/C-Reduce step).
	prog, err := parser.Parse(buggySrc)
	if err != nil {
		panic(err)
	}
	keep := predicateFor(prof, finding)
	fmt.Printf("reducing the %d-statement reproducer...\n", ast.ProgramSize(prog))
	small := reduce.Reduce(prog, keep, reduce.Options{MaxRounds: 8})
	fmt.Printf("reduced to %d statements:\n\n%s\n", ast.ProgramSize(small), ast.Print(small))

	// Phase 3: show the bug is JIT-specific: interpretation is clean.
	bp := harness.Compile(small)
	intCfg := prof.InterpreterConfig()
	intOut := vm.Run(intCfg, bp).Output
	jitCfg := prof.VMConfig(true)
	jitOut := vm.Run(jitCfg, bp).Output
	fmt.Printf("interpreted: %-9s %v\n", intOut.Term, intOut.Lines)
	fmt.Printf("JIT-enabled: %-9s %v %s\n", jitOut.Term, jitOut.Lines, jitOut.Detail)
	fmt.Println("\nthe bug disappears with the JIT off — a JIT-compiler bug, as promised.")
}

// predicateFor keeps programs that still show the finding's symptom.
func predicateFor(prof *profiles.Profile, f harness.Finding) reduce.Predicate {
	return func(p *ast.Program) bool {
		bp := harness.Compile(p)
		jitCfg := prof.VMConfig(true)
		jitCfg.StepLimit = 120_000_000
		jitOut := vm.Run(jitCfg, bp).Output
		if f.Kind == harness.CrashFinding {
			return jitOut.Term == vm.TermCrash
		}
		intCfg := prof.InterpreterConfig()
		intCfg.StepLimit = 120_000_000
		intOut := vm.Run(intCfg, bp).Output
		if jitOut.Term == vm.TermTimeout || intOut.Term == vm.TermTimeout {
			return false
		}
		return !jitOut.Equivalent(intOut)
	}
}
