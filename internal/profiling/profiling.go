// Package profiling wires the standard -cpuprofile/-memprofile flags
// into the command-line drivers. Profiles are written in pprof format;
// inspect them with `go tool pprof <binary> <profile>`.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (no-op when empty) and returns
// a stop function that finishes the CPU profile and, when memPath is
// non-empty, writes an allocation profile. Call the stop function once,
// right before the process exits normally.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush garbage so the profile shows live objects
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}
