// Package journal implements the append-only, checksummed outcome log
// that makes long campaigns crash-safe: every record the harness has
// journaled survives a crash, an OOM kill, or a SIGKILL, and a
// partially written final record — the only damage a torn append can
// cause — is detected and dropped on recovery instead of poisoning
// the file.
//
// # On-disk format
//
// A journal is a sequence of framed records, one per line:
//
//	llllllll cccccccc <payload>\n
//
// where llllllll is the payload length and cccccccc the IEEE CRC32 of
// the payload, both as fixed-width lowercase hex. The payload is an
// arbitrary byte string (the harness stores one JSON document per
// record, so an intact journal is also valid JSONL after stripping
// the 18-byte frame prefix). The frame is self-describing: recovery
// never needs to parse the payload to walk the file.
//
// # Crash-tolerance contract
//
//   - A record is durable once Append returns (the frame is flushed
//     to the OS; Sync additionally forces it to stable storage).
//   - Recover replays every intact record in order. A final record
//     that is incomplete or fails its checksum — the signature of a
//     write cut short by a crash — is dropped and reported via
//     Truncated, not treated as an error.
//   - Damage anywhere *before* the final record (a checksum mismatch
//     or broken frame with more data after it) cannot be explained by
//     a torn append; it means the file was corrupted at rest, and
//     Recover returns a *CorruptError rather than silently dropping
//     work.
//   - Resume recovers, truncates any torn tail so the next Append
//     starts on a clean boundary, and reopens the file for appending.
package journal

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
)

// frameLen is the fixed byte length of a record frame prefix:
// 8 hex digits of payload length, a space, 8 hex digits of CRC32,
// and a trailing space.
const frameLen = 8 + 1 + 8 + 1

// MaxRecordLen bounds a single record's payload. The cap exists so a
// corrupted length field cannot make recovery attempt a multi-gigabyte
// allocation; it is far above any record the harness writes.
const MaxRecordLen = 1 << 28

// Writer appends framed records to a journal file.
type Writer struct {
	f  *os.File
	bw *bufio.Writer
}

// Create opens a fresh journal at path, failing if a non-empty file
// already exists there (an existing journal is prior work; callers
// that mean to continue it must go through Resume, and callers that
// mean to discard it must remove it explicitly).
func Create(path string) (*Writer, error) {
	if st, err := os.Stat(path); err == nil && st.Size() > 0 {
		return nil, fmt.Errorf("journal %s already exists (%d bytes); resume it or remove it first", path, st.Size())
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &Writer{f: f, bw: bufio.NewWriter(f)}, nil
}

// Append frames payload and writes it. The record is flushed to the
// operating system before Append returns, so it survives a process
// crash (call Sync to also survive power loss).
func (w *Writer) Append(payload []byte) error {
	if len(payload) > MaxRecordLen {
		return fmt.Errorf("journal record too large: %d bytes", len(payload))
	}
	fmt.Fprintf(w.bw, "%08x %08x ", len(payload), crc32.ChecksumIEEE(payload))
	w.bw.Write(payload)
	w.bw.WriteByte('\n')
	return w.bw.Flush()
}

// Sync forces everything appended so far to stable storage.
func (w *Writer) Sync() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close flushes and closes the journal file.
func (w *Writer) Close() error {
	flushErr := w.bw.Flush()
	closeErr := w.f.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// CorruptError reports damage before the final record — corruption
// that a torn final append cannot explain.
type CorruptError struct {
	Path   string
	Offset int64  // byte offset of the damaged record's frame
	Reason string // what failed to parse or verify
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("journal %s: corrupt record at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// Recovered is the result of replaying a journal.
type Recovered struct {
	// Records holds every intact record's payload, in append order.
	Records [][]byte
	// Truncated reports that a torn final record was dropped.
	Truncated bool
	// CleanLen is the byte length of the intact prefix; Resume
	// truncates the file to this length before appending.
	CleanLen int64
}

// Recover reads the journal at path and replays its intact records.
// See the package comment for the tolerance contract: a torn final
// record is dropped (Truncated=true); damage before the final record
// yields a *CorruptError.
func Recover(path string) (*Recovered, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rec := &Recovered{}
	off := int64(0)
	for int(off) < len(data) {
		rest := data[off:]
		// tornTail marks everything from off onward as a torn final
		// record: tolerated, dropped, recovery stops here.
		tornTail := func() (*Recovered, error) {
			rec.Truncated = true
			rec.CleanLen = off
			return rec, nil
		}
		corrupt := func(reason string) (*Recovered, error) {
			return nil, &CorruptError{Path: path, Offset: off, Reason: reason}
		}
		if len(rest) < frameLen {
			return tornTail()
		}
		var length, sum uint32
		if _, err := fmt.Sscanf(string(rest[:frameLen-1]), "%08x %08x", &length, &sum); err != nil ||
			rest[8] != ' ' || rest[frameLen-1] != ' ' {
			// The frame itself is unreadable. If it runs to the end of
			// the file it is a torn append; earlier it is corruption.
			if bytes.IndexByte(rest, '\n') == len(rest)-1 || bytes.IndexByte(rest, '\n') == -1 {
				return tornTail()
			}
			return corrupt("unparseable frame header")
		}
		if length > MaxRecordLen {
			return corrupt(fmt.Sprintf("declared payload length %d exceeds cap", length))
		}
		end := off + frameLen + int64(length) + 1 // +1 for the newline
		if end > int64(len(data)) {
			return tornTail()
		}
		payload := data[off+frameLen : end-1]
		final := end == int64(len(data))
		if data[end-1] != '\n' {
			if final {
				return tornTail()
			}
			return corrupt("missing record terminator")
		}
		if crc32.ChecksumIEEE(payload) != sum {
			if final {
				return tornTail()
			}
			return corrupt("checksum mismatch")
		}
		rec.Records = append(rec.Records, payload)
		off = end
	}
	rec.CleanLen = off
	return rec, nil
}

// Resume recovers the journal at path, truncates any torn tail so the
// file ends on a record boundary, and reopens it for appending. The
// recovered records let the caller replay prior work; subsequent
// Appends extend the same journal.
func Resume(path string) (*Recovered, *Writer, error) {
	rec, err := Recover(path)
	if err != nil {
		return nil, nil, err
	}
	if rec.Truncated {
		if err := os.Truncate(path, rec.CleanLen); err != nil {
			return nil, nil, fmt.Errorf("journal %s: dropping torn tail: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return rec, &Writer{f: f, bw: bufio.NewWriter(f)}, nil
}
