package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "campaign.journal")
}

func writeRecords(t *testing.T, path string, payloads ...[]byte) {
	t.Helper()
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func mustRecover(t *testing.T, path string) *Recovered {
	t.Helper()
	rec, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestRoundTrip(t *testing.T) {
	path := tmpJournal(t)
	payloads := [][]byte{
		[]byte(`{"kind":"header","v":1}`),
		[]byte(`{"kind":"seed","idx":0}`),
		[]byte(``), // empty payloads are legal records
		[]byte(`{"kind":"seed","idx":1,"detail":"multi byte é"}`),
	}
	writeRecords(t, path, payloads...)
	rec := mustRecover(t, path)
	if rec.Truncated {
		t.Error("clean journal reported as truncated")
	}
	if len(rec.Records) != len(payloads) {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), len(payloads))
	}
	for i, p := range payloads {
		if !bytes.Equal(rec.Records[i], p) {
			t.Errorf("record %d: got %q, want %q", i, rec.Records[i], p)
		}
	}
	st, _ := os.Stat(path)
	if rec.CleanLen != st.Size() {
		t.Errorf("CleanLen = %d, file size = %d", rec.CleanLen, st.Size())
	}
}

func TestEmptyJournal(t *testing.T) {
	path := tmpJournal(t)
	writeRecords(t, path) // create, append nothing
	rec := mustRecover(t, path)
	if len(rec.Records) != 0 || rec.Truncated || rec.CleanLen != 0 {
		t.Errorf("empty journal: %+v", rec)
	}
}

func TestMissingJournal(t *testing.T) {
	_, err := Recover(filepath.Join(t.TempDir(), "nope.journal"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file: got %v, want not-exist", err)
	}
}

// TestTruncatedFinalRecord simulates a crash mid-append: every
// truncation point of the final record — inside the frame, inside the
// payload, at the missing terminator — must be tolerated, dropping
// exactly that record.
func TestTruncatedFinalRecord(t *testing.T) {
	path := tmpJournal(t)
	writeRecords(t, path, []byte(`{"idx":0}`), []byte(`{"idx":1}`), []byte(`{"idx":2,"pad":"xxxxxxxx"}`))
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	intact := mustRecover(t, path)
	lastStart := intact.CleanLen - int64(frameLen+len(`{"idx":2,"pad":"xxxxxxxx"}`)+1)
	for cut := lastStart + 1; cut < int64(len(full)); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(path)
		if err != nil {
			t.Fatalf("cut at %d: unexpected error %v", cut, err)
		}
		if !rec.Truncated {
			t.Fatalf("cut at %d: truncation not reported", cut)
		}
		if len(rec.Records) != 2 {
			t.Fatalf("cut at %d: recovered %d records, want 2", cut, len(rec.Records))
		}
		if rec.CleanLen != lastStart {
			t.Fatalf("cut at %d: CleanLen=%d, want %d", cut, rec.CleanLen, lastStart)
		}
	}
}

// TestCorruptedFinalRecord: a bit-flip confined to the final record is
// indistinguishable from a torn append and is likewise dropped.
func TestCorruptedFinalRecord(t *testing.T) {
	path := tmpJournal(t)
	writeRecords(t, path, []byte(`{"idx":0}`), []byte(`{"idx":1}`))
	data, _ := os.ReadFile(path)
	data[len(data)-3] ^= 0x40 // flip a payload byte of the last record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rec := mustRecover(t, path)
	if !rec.Truncated || len(rec.Records) != 1 {
		t.Errorf("corrupt final record: truncated=%v records=%d, want true/1", rec.Truncated, len(rec.Records))
	}
}

// TestCorruptedChecksumMidFile: damage before the final record cannot
// come from a torn append; recovery must refuse rather than silently
// drop journaled work.
func TestCorruptedChecksumMidFile(t *testing.T) {
	path := tmpJournal(t)
	writeRecords(t, path, []byte(`{"idx":0}`), []byte(`{"idx":1}`), []byte(`{"idx":2}`))
	data, _ := os.ReadFile(path)
	data[frameLen+2] ^= 0x01 // payload byte of record 0
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Recover(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("mid-file corruption: got %v, want *CorruptError", err)
	}
	if ce.Offset != 0 {
		t.Errorf("corruption attributed to offset %d, want 0", ce.Offset)
	}
}

// TestResumeAfterTornTail: Resume must drop the torn tail, land the
// file back on a record boundary, and append cleanly after it.
func TestResumeAfterTornTail(t *testing.T) {
	path := tmpJournal(t)
	writeRecords(t, path, []byte(`{"idx":0}`), []byte(`{"idx":1}`))
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil { // tear record 1
		t.Fatal(err)
	}
	rec, w, err := Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Truncated || len(rec.Records) != 1 {
		t.Fatalf("resume: truncated=%v records=%d, want true/1", rec.Truncated, len(rec.Records))
	}
	if err := w.Append([]byte(`{"idx":1,"retry":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	after := mustRecover(t, path)
	if after.Truncated || len(after.Records) != 2 {
		t.Fatalf("post-resume journal: truncated=%v records=%d, want false/2", after.Truncated, len(after.Records))
	}
	if string(after.Records[1]) != `{"idx":1,"retry":true}` {
		t.Errorf("appended record mangled: %q", after.Records[1])
	}
}

// TestCreateRefusesExisting: Create must not clobber prior work.
func TestCreateRefusesExisting(t *testing.T) {
	path := tmpJournal(t)
	writeRecords(t, path, []byte(`{"idx":0}`))
	if _, err := Create(path); err == nil {
		t.Fatal("Create overwrote an existing non-empty journal")
	}
}

// TestManyRecordsSurviveEveryPrefix: recovery of any write-boundary
// prefix of a long journal yields exactly the records appended before
// the cut — the invariant the campaign resume path depends on.
func TestManyRecordsSurviveEveryPrefix(t *testing.T) {
	path := tmpJournal(t)
	var payloads [][]byte
	for i := 0; i < 50; i++ {
		payloads = append(payloads, []byte(fmt.Sprintf(`{"idx":%d,"body":"%0*d"}`, i, i%17+1, i)))
	}
	writeRecords(t, path, payloads...)
	full, _ := os.ReadFile(path)

	// Walk record boundaries via a clean recovery first.
	boundaries := []int64{0}
	off := int64(0)
	for _, p := range payloads {
		off += int64(frameLen + len(p) + 1)
		boundaries = append(boundaries, off)
	}
	for n, b := range boundaries {
		if err := os.WriteFile(path, full[:b], 0o644); err != nil {
			t.Fatal(err)
		}
		rec := mustRecover(t, path)
		if len(rec.Records) != n || rec.Truncated {
			t.Fatalf("prefix of %d records: recovered %d (truncated=%v)", n, len(rec.Records), rec.Truncated)
		}
	}
}
