package reduce

import (
	"testing"

	"artemis/internal/lang/ast"
	"artemis/internal/vm"
)

const guardSrc = `class T {
    int junk1(int x) { return x * 3; }
    int junk2(int x) { return x - 11; }
    void main() {
        int a = 5;
        int b = 2;
        for (int i = 0; i < 4; i++) { b += junk1(i); }
        print(a + 2);
        print(junk2(b));
    }
}`

// TestReduceRejectsUninterestingInput is the regression test for the
// unchecked precondition: Reduce documents that keep(p) must hold but
// never verified it. Given an input that is NOT interesting, the old
// code would happily shrink toward whatever small program first
// satisfies the predicate — returning a "reduced reproducer" for a
// behaviour the input never had. Now the precondition is probed up
// front and the input comes back unchanged.
func TestReduceRejectsUninterestingInput(t *testing.T) {
	p := mustParse(t, guardSrc)
	// "Interesting" = prints nothing. The input prints two lines, so
	// the precondition is violated — but statement removal could
	// easily manufacture a silent program.
	keep := func(q *ast.Program) bool { return runOut(q).NLines == 0 }
	calls := 0
	got := Reduce(p, func(q *ast.Program) bool { calls++; return keep(q) }, Options{})
	if ast.Print(got) != ast.Print(p) {
		t.Errorf("Reduce changed an uninteresting input:\n%s", ast.Print(got))
	}
	if calls != 1 {
		t.Errorf("predicate consulted %d times, want exactly the one precondition probe", calls)
	}
}

// TestReduceCheckedReportsPrecondition: callers (cmd/mjreduce, the
// campaign auto-reducer) need to distinguish "already minimal" from
// "never triggered the finding"; ReduceChecked must say which.
func TestReduceCheckedReportsPrecondition(t *testing.T) {
	p := mustParse(t, guardSrc)
	got, ok := ReduceChecked(p, func(q *ast.Program) bool { return false }, Options{})
	if ok {
		t.Error("ReduceChecked reported ok for an input that never satisfies the predicate")
	}
	if ast.Print(got) != ast.Print(p) {
		t.Error("failed precondition must return the input unchanged")
	}
	got, ok = ReduceChecked(p, func(q *ast.Program) bool { return true }, Options{})
	if !ok {
		t.Error("ReduceChecked reported failure for a satisfiable predicate")
	}
	if ast.ProgramSize(got) >= ast.ProgramSize(p) {
		t.Error("trivially-keepable program was not reduced at all")
	}
}

// TestReduceNegativeMaxRounds: a negative MaxRounds used to slip past
// the ==0 default check, so the round loop never ran and Reduce
// returned the input unreduced. Negative values now clamp to the
// default and reduction proceeds.
func TestReduceNegativeMaxRounds(t *testing.T) {
	p := mustParse(t, guardSrc)
	ref := runOut(p)
	if ref.Term != vm.TermNormal {
		t.Fatalf("guard program must run: %v %s", ref.Term, ref.Detail)
	}
	keep := func(q *ast.Program) bool {
		o := runOut(q)
		return o.Term == vm.TermNormal && o.NLines >= 1 && o.Lines[0] == "7"
	}
	if !keep(p) {
		t.Fatal("precondition: input must be interesting")
	}
	got := Reduce(p, keep, Options{MaxRounds: -5})
	if !keep(got) {
		t.Fatal("reduced program lost the predicate")
	}
	if len(got.Class.Methods) >= len(p.Class.Methods) {
		t.Errorf("MaxRounds=-5 performed no reduction: still %d methods\n%s",
			len(got.Class.Methods), ast.Print(got))
	}
}
