// Package reduce shrinks bug-triggering MJ programs while preserving
// a caller-defined "interestingness" predicate — the role Perses and
// C-Reduce play in the paper's workflow (Section 4.1): JavaFuzzer
// seeds are large, so every reported bug is first reduced to a small
// reproducer.
//
// The reducer is syntax-guided delta debugging on the AST: candidate
// transformations (drop a statement, unwrap a loop or conditional,
// inline a block, simplify an initializer) are attempted greedily and
// kept whenever the program stays valid and the predicate still
// holds. Like C-Reduce, transformations need not preserve semantics —
// only the predicate matters.
package reduce

import (
	"artemis/internal/lang/ast"
	"artemis/internal/lang/sem"
)

// Predicate reports whether a candidate program is still interesting
// (e.g. still triggers the discrepancy). It must be deterministic.
type Predicate func(*ast.Program) bool

// Options tunes reduction.
type Options struct {
	// MaxRounds bounds full fixpoint rounds (default 20).
	MaxRounds int
}

// Reduce returns the smallest program found that satisfies keep.
// The input is not modified. The precondition keep(p) is verified
// up front: if the input is not interesting to begin with, nothing
// the reducer keeps could be either (every accepted edit re-checks
// keep), so Reduce returns an unchanged clone instead of shrinking
// against a vacuous predicate. Callers that need to distinguish "the
// input was already minimal" from "the input never satisfied the
// predicate" should use ReduceChecked.
func Reduce(p *ast.Program, keep Predicate, opts Options) *ast.Program {
	out, _ := ReduceChecked(p, keep, opts)
	return out
}

// ReduceChecked is Reduce with an explicit precondition report: the
// second return value is false — and the input comes back as an
// unchanged clone — when keep(p) did not hold to begin with, so the
// outcome of the precondition probe is never silently discarded.
func ReduceChecked(p *ast.Program, keep Predicate, opts Options) (*ast.Program, bool) {
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 20
	}
	cur := ast.CloneProgram(p)
	if !keep(cur) {
		return cur, false
	}
	for round := 0; round < opts.MaxRounds; round++ {
		changed := false
		if tryEach(cur, keep, removeMethodCandidates) {
			changed = true
		}
		if tryEach(cur, keep, removeFieldCandidates) {
			changed = true
		}
		if reduceStatements(cur, keep) {
			changed = true
		}
		if !changed {
			break
		}
	}
	return cur, true
}

// valid reports whether the candidate still type-checks; reductions
// that break validity are discarded before consulting the predicate.
func valid(p *ast.Program) bool {
	_, err := sem.Analyze(p)
	return err == nil
}

// candidate is one attempted transformation: apply edits cur in place
// and returns an undo function.
type candidate struct {
	apply func() func()
}

// tryEach applies each candidate greedily, keeping those that preserve
// validity and interestingness.
func tryEach(cur *ast.Program, keep Predicate, gen func(*ast.Program) []candidate) bool {
	any := false
	for {
		applied := false
		for _, c := range gen(cur) {
			undo := c.apply()
			if valid(cur) && keep(cur) {
				applied = true
				any = true
				break // regenerate candidates: positions shifted
			}
			undo()
		}
		if !applied {
			return any
		}
	}
}

// removeMethodCandidates proposes dropping whole methods (main stays).
func removeMethodCandidates(p *ast.Program) []candidate {
	var out []candidate
	cls := p.Class
	for i := range cls.Methods {
		i := i
		if cls.Methods[i].Name == "main" {
			continue
		}
		out = append(out, candidate{apply: func() func() {
			saved := append([]*ast.Method(nil), cls.Methods...)
			cls.Methods = append(append([]*ast.Method(nil), cls.Methods[:i]...), cls.Methods[i+1:]...)
			return func() { cls.Methods = saved }
		}})
	}
	return out
}

// removeFieldCandidates proposes dropping fields.
func removeFieldCandidates(p *ast.Program) []candidate {
	var out []candidate
	cls := p.Class
	for i := range cls.Fields {
		i := i
		out = append(out, candidate{apply: func() func() {
			saved := append([]*ast.Field(nil), cls.Fields...)
			cls.Fields = append(append([]*ast.Field(nil), cls.Fields[:i]...), cls.Fields[i+1:]...)
			return func() { cls.Fields = saved }
		}})
	}
	return out
}

// reduceStatements walks every statement list in the program and
// tries, in order: dropping a statement, replacing a compound
// statement by one of its sub-blocks' contents.
func reduceStatements(p *ast.Program, keep Predicate) bool {
	any := false
	for {
		applied := false
		for _, m := range p.Class.Methods {
			lists := collectLists(m)
			for _, lst := range lists {
				if tryListEdits(p, keep, lst) {
					applied = true
					any = true
					break
				}
			}
			if applied {
				break
			}
		}
		if !applied {
			return any
		}
	}
}

// collectLists returns pointers to every statement list in the method.
func collectLists(m *ast.Method) []*[]ast.Stmt {
	var lists []*[]ast.Stmt
	var visit func(s ast.Stmt)
	visitBlock := func(b *ast.Block) {
		if b == nil {
			return
		}
		lists = append(lists, &b.Stmts)
	}
	visit = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.Block:
			visitBlock(s)
			for _, bs := range s.Stmts {
				visit(bs)
			}
		case *ast.IfStmt:
			visitBlock(s.Then)
			for _, bs := range s.Then.Stmts {
				visit(bs)
			}
			if s.Else != nil {
				visit(s.Else)
			}
		case *ast.ForStmt:
			visitBlock(s.Body)
			for _, bs := range s.Body.Stmts {
				visit(bs)
			}
		case *ast.WhileStmt:
			visitBlock(s.Body)
			for _, bs := range s.Body.Stmts {
				visit(bs)
			}
		case *ast.SwitchStmt:
			for _, c := range s.Cases {
				c := c
				lists = append(lists, &c.Body)
				for _, bs := range c.Body {
					visit(bs)
				}
			}
		}
	}
	lists = append(lists, &m.Body.Stmts)
	for _, s := range m.Body.Stmts {
		visit(s)
	}
	return lists
}

// tryListEdits attempts edits on one statement list: chunked removal
// (ddmin-flavoured: halves, then quarters, then singles) and compound
// unwrapping.
func tryListEdits(p *ast.Program, keep Predicate, lst *[]ast.Stmt) bool {
	n := len(*lst)
	if n == 0 {
		return false
	}
	ok := func() bool { return valid(p) && keep(p) }

	// Chunked removal.
	for size := n; size >= 1; size /= 2 {
		for start := 0; start+size <= len(*lst); start++ {
			saved := append([]ast.Stmt(nil), *lst...)
			*lst = append(append([]ast.Stmt(nil), saved[:start]...), saved[start+size:]...)
			if ok() {
				return true
			}
			*lst = saved
		}
		if size == 1 {
			break
		}
	}

	// Unwrap compounds: if -> then-branch stmts; loops -> body once;
	// switch -> a single arm's body.
	for i, s := range *lst {
		var replacements [][]ast.Stmt
		switch s := s.(type) {
		case *ast.IfStmt:
			replacements = append(replacements, s.Then.Stmts)
			if e, okElse := s.Else.(*ast.Block); okElse {
				replacements = append(replacements, e.Stmts)
			}
		case *ast.ForStmt:
			replacements = append(replacements, s.Body.Stmts)
		case *ast.WhileStmt:
			replacements = append(replacements, s.Body.Stmts)
		case *ast.SwitchStmt:
			for _, c := range s.Cases {
				replacements = append(replacements, c.Body)
			}
		case *ast.Block:
			replacements = append(replacements, s.Stmts)
		}
		for _, repl := range replacements {
			saved := append([]ast.Stmt(nil), *lst...)
			next := append([]ast.Stmt(nil), saved[:i]...)
			// Deep-clone replacement statements: they may alias nodes
			// reachable from the saved list.
			for _, rs := range repl {
				next = append(next, ast.CloneStmt(rs))
			}
			next = append(next, saved[i+1:]...)
			*lst = next
			if ok() {
				return true
			}
			*lst = saved
		}
	}
	return false
}
