package reduce

import (
	"strings"
	"testing"

	"artemis/internal/bytecode"
	"artemis/internal/fuzz"
	"artemis/internal/lang/ast"
	"artemis/internal/lang/parser"
	"artemis/internal/lang/sem"
	"artemis/internal/vm"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runOut(p *ast.Program) *vm.Output {
	info, err := sem.Analyze(p)
	if err != nil {
		panic(err)
	}
	bp, err := bytecode.Compile(info)
	if err != nil {
		panic(err)
	}
	return vm.Run(vm.Config{StepLimit: 10_000_000}, bp).Output
}

func TestReducePreservesPredicate(t *testing.T) {
	src := `class T {
        int a = 1;
        int b = 2;
        long unused1 = 99L;
        int noise(int x) { return x * 3 + 1; }
        void main() {
            int c = noise(4);
            int d = c + a;
            print(d);
            for (int i = 0; i < 3; i++) { c += i; }
            print(1 / (a - 1));
            print(b);
        }
    }`
	p := mustParse(t, src)
	keep := func(q *ast.Program) bool {
		out := runOut(q)
		return out.Term == vm.TermException && strings.Contains(out.Detail, "ArithmeticException")
	}
	if !keep(p) {
		t.Fatal("seed does not satisfy predicate")
	}
	small := Reduce(p, keep, Options{})
	if !keep(small) {
		t.Fatal("reduction lost the predicate")
	}
	if got, orig := ast.ProgramSize(small), ast.ProgramSize(p); got >= orig {
		t.Errorf("no shrinkage: %d -> %d", orig, got)
	} else {
		t.Logf("reduced %d -> %d statements:\n%s", orig, got, ast.Print(small))
	}
	// The prints before the division and the noise method should be
	// gone.
	if strings.Contains(ast.Print(small), "noise") {
		t.Log("warning: noise method survived (acceptable but unexpected)")
	}
}

func TestReduceDoesNotTouchInput(t *testing.T) {
	p := mustParse(t, `class T { void main() { print(5); print(6); } }`)
	before := ast.Print(p)
	keep := func(q *ast.Program) bool {
		out := runOut(q)
		return out.NLines >= 1 && out.Lines[0] == "5"
	}
	Reduce(p, keep, Options{})
	if ast.Print(p) != before {
		t.Fatal("Reduce mutated its input")
	}
}

func TestReduceFuzzedPrograms(t *testing.T) {
	// Reduce fuzzed programs under the predicate "still prints the
	// same first line" — exercising the reducer against rich shapes.
	for seed := int64(0); seed < 5; seed++ {
		p := fuzz.Generate(fuzz.Options{Seed: seed})
		ref := runOut(p)
		if ref.Term == vm.TermTimeout || ref.NLines == 0 {
			continue
		}
		first := ref.Lines[0]
		keep := func(q *ast.Program) bool {
			out := runOut(q)
			return out.NLines >= 1 && out.Lines[0] == first && out.Term != vm.TermTimeout
		}
		small := Reduce(p, keep, Options{MaxRounds: 4})
		if !keep(small) {
			t.Fatalf("seed %d: predicate lost", seed)
		}
		if ast.ProgramSize(small) > ast.ProgramSize(p) {
			t.Errorf("seed %d: grew during reduction", seed)
		}
	}
}
