package fuzz

import (
	"testing"
	"testing/quick"

	"artemis/internal/bytecode"
	"artemis/internal/jit"
	"artemis/internal/lang/ast"
	"artemis/internal/lang/parser"
	"artemis/internal/lang/sem"
	"artemis/internal/vm"
)

func newCorrectJIT(maxTier int) vm.JITCompiler {
	return jit.New(jit.Options{MaxTier: maxTier})
}

func TestGenerateValidAndDeterministic(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		p1 := Generate(Options{Seed: seed})
		p2 := Generate(Options{Seed: seed})
		if ast.Print(p1) != ast.Print(p2) {
			t.Fatalf("seed %d: generation is not deterministic", seed)
		}
	}
	a := Generate(Options{Seed: 1})
	b := Generate(Options{Seed: 2})
	if ast.Print(a) == ast.Print(b) {
		t.Error("different seeds produced identical programs")
	}
}

func TestGeneratedProgramsRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		p := Generate(Options{Seed: seed})
		src := ast.Print(p)
		p2, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: reparse failed: %v\n%s", seed, err, src)
		}
		if ast.Print(p2) != src {
			t.Fatalf("seed %d: print not stable", seed)
		}
	}
}

// TestGeneratedProgramsTerminate runs seeds in the interpreter and
// checks they terminate quickly (the JavaFuzzer property: seeds avoid
// lengthy loops, so the compilation space must be opened by mutation).
func TestGeneratedProgramsTerminate(t *testing.T) {
	tooSlow := 0
	for seed := int64(0); seed < 150; seed++ {
		p := Generate(Options{Seed: seed})
		info := sem.MustAnalyze(p)
		bp := bytecode.MustCompile(info)
		res := vm.Run(vm.Config{StepLimit: 20_000_000}, bp)
		switch res.Output.Term {
		case vm.TermNormal, vm.TermException:
		case vm.TermTimeout:
			tooSlow++
		default:
			t.Fatalf("seed %d: unexpected termination %v (%s)", seed, res.Output.Term, res.Output.Detail)
		}
	}
	// A small tail of slow seeds is expected (nested loops compose
	// multiplicatively); the harness discards them, like the paper's
	// 2-minute cutoff discards slow seeds (Section 4.3).
	if tooSlow > 10 {
		t.Errorf("%d/150 seeds hit the step limit; seeds should mostly be short-running", tooSlow)
	}
}

// TestSeedsRarelyReachThresholds verifies the premise of the paper's
// evaluation setup: with production-like thresholds, seed programs
// essentially never trigger JIT compilation on their own.
func TestSeedsRarelyReachThresholds(t *testing.T) {
	compiled := 0
	for seed := int64(0); seed < 100; seed++ {
		p := Generate(Options{Seed: seed})
		bp := bytecode.MustCompile(sem.MustAnalyze(p))
		v := vm.New(vm.Config{
			EntryThresholds: []int64{5000, 10000},
			OSRThresholds:   []int64{5000, 10000},
			StepLimit:       20_000_000,
		}, bp)
		v.Run()
		for _, m := range bp.Methods {
			st := v.MethodStateByName(m.Name)
			if st != nil && st.Counters.Temperature([]int64{5000, 10000}) > 0 {
				compiled++
				break
			}
		}
	}
	if compiled > 10 {
		t.Errorf("%d/100 seeds got hot on their own; expected them to stay cold", compiled)
	}
}

// TestDifferentialInterpreterVsTiers is the self-validation property:
// on a correct VM, every compilation choice yields the same output.
// It drives fuzzed programs through the interpreter and both forced
// JIT tiers via testing/quick.
func TestDifferentialInterpreterVsTiers(t *testing.T) {
	if testing.Short() {
		t.Skip("differential property test is slow")
	}
	check := func(seed int64) bool {
		p := Generate(Options{Seed: seed})
		bp := bytecode.MustCompile(sem.MustAnalyze(p))
		ref := vm.Run(vm.Config{StepLimit: 20_000_000}, bp)
		if ref.Output.Term == vm.TermTimeout {
			return true // inconclusive
		}
		for _, tier := range []int{1, 2} {
			res := vm.Run(vm.Config{
				JIT:       newCorrectJIT(tier),
				StepLimit: 100_000_000,
				Policy: &vm.ForcedPolicy{
					Tier:       tier,
					Choice:     func(string, int64) vm.ForceChoice { return vm.ForceCompile },
					DisableOSR: true,
				},
			}, bp)
			if !res.Output.Equivalent(ref.Output) {
				t.Logf("seed %d tier %d: interp=%v/%q jit=%v/%q",
					seed, tier, ref.Output.Term, ref.Output.Detail,
					res.Output.Term, res.Output.Detail)
				t.Logf("interp lines: %v", ref.Output.Lines)
				t.Logf("jit lines:    %v", res.Output.Lines)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}
