package fuzz

import (
	"testing"

	"artemis/internal/bytecode"
	"artemis/internal/lang/sem"
	"artemis/internal/vm"
)

func TestStressDifferential(t *testing.T) {
	bad := 0
	for seed := int64(1000); seed < 3000; seed++ {
		p := Generate(Options{Seed: seed})
		bp := bytecode.MustCompile(sem.MustAnalyze(p))
		ref := vm.Run(vm.Config{StepLimit: 5_000_000}, bp)
		if ref.Output.Term == vm.TermTimeout {
			continue
		}
		for _, tier := range []int{1, 2} {
			res := vm.Run(vm.Config{
				JIT:       newCorrectJIT(tier),
				StepLimit: 40_000_000,
				Policy: &vm.ForcedPolicy{Tier: tier,
					Choice:     func(string, int64) vm.ForceChoice { return vm.ForceCompile },
					DisableOSR: true},
			}, bp)
			if !res.Output.Equivalent(ref.Output) {
				t.Errorf("seed %d tier %d: %v/%q vs %v/%q", seed, tier,
					ref.Output.Term, ref.Output.Detail, res.Output.Term, res.Output.Detail)
				bad++
			}
		}
		// Tiered with tiny thresholds: exercises OSR + deopt + tier-up.
		res := vm.Run(vm.Config{
			JIT:             newCorrectJIT(2),
			EntryThresholds: []int64{30, 120},
			OSRThresholds:   []int64{40, 160},
			StepLimit:       40_000_000,
		}, bp)
		if res.Output.Term != vm.TermTimeout && !res.Output.Equivalent(ref.Output) {
			t.Errorf("seed %d tiered: %v/%q vs %v/%q lines=%v/%v", seed,
				ref.Output.Term, ref.Output.Detail, res.Output.Term, res.Output.Detail,
				trunc(ref.Output.Lines), trunc(res.Output.Lines))
			bad++
		}
		if bad > 5 {
			t.Fatal("too many failures")
		}
	}
}

func trunc(l []string) []string {
	if len(l) > 5 {
		return l[:5]
	}
	return l
}
