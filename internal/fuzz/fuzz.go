// Package fuzz generates random MJ seed programs, playing the role
// JavaFuzzer plays in the paper's evaluation (Section 4.1): programs
// that are structurally rich (nested control flow, switches, arrays,
// fields, helper methods) but deliberately avoid lengthy loops, so
// they rarely reach JIT compilation thresholds by themselves — the
// compilation space must be opened up by JoNM mutations.
//
// Every generated program is semantically valid (checked against
// sem.Analyze) and terminates: loops have small constant bounds,
// loop counters are never reassigned, and the call graph is acyclic.
package fuzz

import (
	"fmt"
	"math/rand"

	"artemis/internal/lang/ast"
	"artemis/internal/lang/sem"
)

// Options tunes generation.
type Options struct {
	// Seed drives the deterministic RNG.
	Seed int64
	// MaxMethods bounds helper methods (default 5).
	MaxMethods int
	// StmtBudget bounds total generated statements (default 90).
	StmtBudget int
	// PrintProb is the probability of a print statement inside bodies
	// (default 0.08). main always prints a field/array summary.
	PrintProb float64
	// RawDivProb is the probability a division is left unguarded and
	// may throw ArithmeticException (default 0.02).
	RawDivProb float64
}

func (o Options) withDefaults() Options {
	if o.MaxMethods == 0 {
		o.MaxMethods = 5
	}
	if o.StmtBudget == 0 {
		o.StmtBudget = 90
	}
	if o.PrintProb == 0 {
		o.PrintProb = 0.08
	}
	if o.RawDivProb == 0 {
		o.RawDivProb = 0.02
	}
	return o
}

// Generate produces a random valid program.
func Generate(opts Options) *ast.Program {
	opts = opts.withDefaults()
	g := &gen{
		rng:  rand.New(rand.NewSource(opts.Seed)),
		opts: opts,
	}
	p := g.program()
	if _, err := sem.Analyze(p); err != nil {
		// A generator defect, not a user error: fail loudly with the
		// program for diagnosis.
		panic(fmt.Sprintf("fuzz: generated invalid program (seed %d): %v\n%s", opts.Seed, err, ast.Print(p)))
	}
	return p
}

type localVar struct {
	name      string
	typ       ast.Type
	protected bool // loop counters: never assigned
}

type gen struct {
	rng  *rand.Rand
	opts Options

	fields  []*ast.Field
	sigs    []*ast.Method // signatures, index = callable target
	counter int
	budget  int

	// Scope state while generating one method.
	locals    []localVar
	scopeMark []int
	method    *ast.Method
	methodIdx int
	loopKinds []byte // 'f' = for (continue ok), 'w' = while (no continue)
}

func (g *gen) fresh(prefix string) string {
	g.counter++
	return fmt.Sprintf("%s%d", prefix, g.counter)
}

func (g *gen) chance(p float64) bool { return g.rng.Float64() < p }

func (g *gen) pick(n int) int { return g.rng.Intn(n) }

// scalarType picks int (often), long, or boolean.
func (g *gen) scalarType() ast.Type {
	switch g.pick(10) {
	case 0, 1, 2, 3, 4, 5:
		return ast.TypeInt
	case 6, 7:
		return ast.TypeLong
	default:
		return ast.TypeBoolean
	}
}

func (g *gen) program() *ast.Program {
	cls := &ast.Class{Name: "T"}
	g.budget = g.opts.StmtBudget

	// Fields.
	nScalar := 3 + g.pick(4)
	for i := 0; i < nScalar; i++ {
		t := g.scalarType()
		f := &ast.Field{Type: t, Name: g.fresh("f"), Init: g.literal(t)}
		g.fields = append(g.fields, f)
	}
	nArr := 1 + g.pick(2)
	for i := 0; i < nArr; i++ {
		elem := ast.KindInt
		if g.chance(0.3) {
			elem = ast.KindLong
		}
		n := 3 + g.pick(6)
		lit := &ast.NewArrayExpr{Elem: elem, Elems: []ast.Expr{}}
		for j := 0; j < n; j++ {
			lit.Elems = append(lit.Elems, g.literal(ast.Type{Kind: elem}))
		}
		f := &ast.Field{Type: ast.ArrayOf(elem), Name: g.fresh("arr"), Init: lit}
		g.fields = append(g.fields, f)
	}
	cls.Fields = g.fields

	// Method signatures first (calls may only target lower indices,
	// keeping the call graph acyclic).
	nMethods := 2 + g.pick(g.opts.MaxMethods-1)
	for i := 0; i < nMethods; i++ {
		var ret ast.Type
		switch g.pick(5) {
		case 0:
			ret = ast.TypeVoid
		case 1:
			ret = ast.TypeLong
		case 2:
			ret = ast.TypeBoolean
		default:
			ret = ast.TypeInt
		}
		m := &ast.Method{Ret: ret, Name: g.fresh("m")}
		nParams := g.pick(4)
		for j := 0; j < nParams; j++ {
			m.Params = append(m.Params, &ast.Param{Type: g.scalarType(), Name: g.fresh("p")})
		}
		g.sigs = append(g.sigs, m)
	}

	// Bodies.
	for i, m := range g.sigs {
		g.startMethod(m, i)
		m.Body = g.block(2 + g.pick(3))
		if m.Ret.Kind != ast.KindVoid {
			m.Body.Stmts = append(m.Body.Stmts, &ast.ReturnStmt{Value: g.expr(m.Ret, 2)})
		}
		cls.Methods = append(cls.Methods, m)
	}

	// main: drive the helpers, then print a summary of every field.
	main := &ast.Method{Ret: ast.TypeVoid, Name: "main"}
	g.startMethod(main, len(g.sigs))
	body := &ast.Block{}
	nCalls := 2 + g.pick(4)
	for i := 0; i < nCalls; i++ {
		mi := g.pick(len(g.sigs))
		body.Stmts = append(body.Stmts, g.callStmt(mi))
	}
	// Occasionally some extra logic in main too.
	g.budget = 10
	extra := g.block(2)
	body.Stmts = append(body.Stmts, extra.Stmts...)
	// Field summary.
	for _, f := range g.fields {
		if !f.Type.IsArray() {
			body.Stmts = append(body.Stmts, &ast.PrintStmt{X: &ast.Ident{Name: f.Name}})
			continue
		}
		sumT := ast.TypeLong
		sum := g.fresh("sum")
		idx := g.fresh("i")
		body.Stmts = append(body.Stmts,
			&ast.DeclStmt{Type: sumT, Name: sum, Init: &ast.IntLit{Value: 0, IsLong: true}},
			&ast.ForStmt{
				Init: &ast.DeclStmt{Type: ast.TypeInt, Name: idx, Init: &ast.IntLit{Value: 0}},
				Cond: &ast.BinaryExpr{Op: ast.OpLt, X: &ast.Ident{Name: idx}, Y: &ast.LenExpr{Arr: &ast.Ident{Name: f.Name}}},
				Post: &ast.AssignStmt{Target: &ast.Ident{Name: idx}, Op: ast.AsnAdd, Value: &ast.IntLit{Value: 1}},
				Body: &ast.Block{Stmts: []ast.Stmt{
					&ast.AssignStmt{Target: &ast.Ident{Name: sum}, Op: ast.AsnAdd,
						Value: &ast.IndexExpr{Arr: &ast.Ident{Name: f.Name}, Index: &ast.Ident{Name: idx}}},
				}},
			},
			&ast.PrintStmt{X: &ast.Ident{Name: sum}},
		)
	}
	main.Body = body
	cls.Methods = append(cls.Methods, main)

	return &ast.Program{Class: cls}
}

func (g *gen) startMethod(m *ast.Method, idx int) {
	g.method = m
	g.methodIdx = idx
	g.locals = g.locals[:0]
	g.scopeMark = g.scopeMark[:0]
	g.loopKinds = g.loopKinds[:0]
	for _, p := range m.Params {
		g.locals = append(g.locals, localVar{name: p.Name, typ: p.Type})
	}
}

func (g *gen) pushScope() { g.scopeMark = append(g.scopeMark, len(g.locals)) }
func (g *gen) popScope() {
	n := g.scopeMark[len(g.scopeMark)-1]
	g.scopeMark = g.scopeMark[:len(g.scopeMark)-1]
	g.locals = g.locals[:n]
}

// block generates a braced block with roughly want statements.
func (g *gen) block(want int) *ast.Block {
	g.pushScope()
	defer g.popScope()
	b := &ast.Block{}
	for i := 0; i < want && g.budget > 0; i++ {
		b.Stmts = append(b.Stmts, g.stmt())
	}
	return b
}

func (g *gen) stmt() ast.Stmt {
	g.budget--
	switch g.pick(20) {
	case 0, 1, 2:
		return g.declStmt()
	case 3, 4, 5, 6, 7:
		return g.assignStmt()
	case 8, 9:
		return g.ifStmt()
	case 10, 11:
		return g.forStmt()
	case 12:
		return g.whileStmt()
	case 13:
		return g.switchStmt()
	case 14, 15:
		if len(g.callables()) > 0 {
			return g.callStmt(g.callables()[g.pick(len(g.callables()))])
		}
		return g.assignStmt()
	case 16:
		if g.chance(g.opts.PrintProb * 5) {
			t := g.scalarType()
			return &ast.PrintStmt{X: g.expr(t, 2)}
		}
		return g.assignStmt()
	case 17:
		if len(g.loopKinds) > 0 && g.chance(0.5) {
			return &ast.BreakStmt{}
		}
		return g.assignStmt()
	case 18:
		// continue is only safe in for loops (the post-clause still
		// advances the counter).
		if n := len(g.loopKinds); n > 0 && g.loopKinds[n-1] == 'f' && g.chance(0.4) {
			return &ast.ContinueStmt{}
		}
		return g.assignStmt()
	case 19:
		if s := g.arrayWalk(); s != nil {
			return s
		}
		return g.assignStmt()
	default:
		return g.assignStmt()
	}
}

func (g *gen) declStmt() ast.Stmt {
	if g.chance(0.2) {
		// Array local.
		elem := ast.KindInt
		if g.chance(0.3) {
			elem = ast.KindLong
		}
		name := g.fresh("la")
		var init ast.Expr
		if g.chance(0.5) {
			n := 2 + g.pick(5)
			lit := &ast.NewArrayExpr{Elem: elem, Elems: []ast.Expr{}}
			for j := 0; j < n; j++ {
				lit.Elems = append(lit.Elems, g.literal(ast.Type{Kind: elem}))
			}
			init = lit
		} else if arr := g.arrayVar(elem); arr != nil && g.chance(0.4) {
			init = arr
		} else {
			n := int64(1 + g.pick(8))
			if g.chance(0.25) {
				n = 8 // GC-barrier-friendly alignment shows up in real heaps too
				if g.chance(0.3) {
					n = 16
				}
			}
			init = &ast.NewArrayExpr{Elem: elem, Len: &ast.IntLit{Value: n}}
		}
		g.locals = append(g.locals, localVar{name: name, typ: ast.ArrayOf(elem)})
		return &ast.DeclStmt{Type: ast.ArrayOf(elem), Name: name, Init: init}
	}
	t := g.scalarType()
	name := g.fresh("v")
	d := &ast.DeclStmt{Type: t, Name: name, Init: g.expr(t, 2)}
	g.locals = append(g.locals, localVar{name: name, typ: t})
	return d
}

// assignableTargets lists in-scope writable scalar variables/fields.
func (g *gen) assignStmt() ast.Stmt {
	type target struct {
		expr ast.Expr
		typ  ast.Type
	}
	var targets []target
	for _, lv := range g.locals {
		if !lv.protected && !lv.typ.IsArray() {
			targets = append(targets, target{&ast.Ident{Name: lv.name}, lv.typ})
		}
	}
	for _, f := range g.fields {
		if !f.Type.IsArray() {
			targets = append(targets, target{&ast.Ident{Name: f.Name}, f.Type})
		}
	}
	// Array element targets.
	for _, elem := range []ast.Kind{ast.KindInt, ast.KindLong} {
		if arr := g.arrayVar(elem); arr != nil {
			idx := g.guardedIndex(arr)
			targets = append(targets, target{
				&ast.IndexExpr{Arr: arr, Index: idx}, ast.Type{Kind: elem}})
		}
	}
	if len(targets) == 0 {
		t := g.scalarType()
		name := g.fresh("v")
		g.locals = append(g.locals, localVar{name: name, typ: t})
		return &ast.DeclStmt{Type: t, Name: name, Init: g.expr(t, 2)}
	}
	tg := targets[g.pick(len(targets))]
	if tg.typ.Kind == ast.KindBoolean {
		ops := []ast.AssignOp{ast.AsnSet, ast.AsnAnd, ast.AsnOr, ast.AsnXor}
		return &ast.AssignStmt{Target: tg.expr, Op: ops[g.pick(len(ops))], Value: g.expr(ast.TypeBoolean, 2)}
	}
	ops := []ast.AssignOp{ast.AsnSet, ast.AsnSet, ast.AsnAdd, ast.AsnSub, ast.AsnMul,
		ast.AsnAnd, ast.AsnOr, ast.AsnXor, ast.AsnShl, ast.AsnShr, ast.AsnUshr}
	op := ops[g.pick(len(ops))]
	var val ast.Expr
	if op == ast.AsnSet {
		val = g.expr(tg.typ, 2+g.pick(2))
	} else if op == ast.AsnShl || op == ast.AsnShr || op == ast.AsnUshr {
		val = &ast.IntLit{Value: int64(1 + g.pick(8))}
	} else {
		val = g.expr(tg.typ, 2)
	}
	return &ast.AssignStmt{Target: tg.expr, Op: op, Value: val}
}

func (g *gen) ifStmt() ast.Stmt {
	s := &ast.IfStmt{Cond: g.expr(ast.TypeBoolean, 2), Then: g.block(1 + g.pick(3))}
	if g.chance(0.5) {
		s.Else = g.block(1 + g.pick(2))
	}
	return s
}

// forStmt generates a bounded counted loop; the counter is protected
// from reassignment so termination is guaranteed.
func (g *gen) forStmt() ast.Stmt {
	g.pushScope()
	defer g.popScope()
	name := g.fresh("i")
	bound := int64(2 + g.pick(14))
	g.locals = append(g.locals, localVar{name: name, typ: ast.TypeInt, protected: true})
	g.loopKinds = append(g.loopKinds, 'f')
	body := g.block(1 + g.pick(3))
	g.loopKinds = g.loopKinds[:len(g.loopKinds)-1]
	return &ast.ForStmt{
		Init: &ast.DeclStmt{Type: ast.TypeInt, Name: name, Init: &ast.IntLit{Value: 0}},
		Cond: &ast.BinaryExpr{Op: ast.OpLt, X: &ast.Ident{Name: name}, Y: &ast.IntLit{Value: bound}},
		Post: &ast.AssignStmt{Target: &ast.Ident{Name: name}, Op: ast.AsnAdd, Value: &ast.IntLit{Value: 1}},
		Body: body,
	}
}

func (g *gen) whileStmt() ast.Stmt {
	g.pushScope()
	defer g.popScope()
	name := g.fresh("w")
	bound := int64(2 + g.pick(10))
	g.locals = append(g.locals, localVar{name: name, typ: ast.TypeInt, protected: true})
	g.loopKinds = append(g.loopKinds, 'w')
	body := g.block(1 + g.pick(2))
	g.loopKinds = g.loopKinds[:len(g.loopKinds)-1]
	// The counter increment is the first statement, so break cannot
	// skip it forever (bounded iterations regardless of body shape).
	body.Stmts = append([]ast.Stmt{
		&ast.AssignStmt{Target: &ast.Ident{Name: name}, Op: ast.AsnAdd, Value: &ast.IntLit{Value: 1}},
	}, body.Stmts...)
	decl := &ast.DeclStmt{Type: ast.TypeInt, Name: name, Init: &ast.IntLit{Value: 0}}
	loop := &ast.WhileStmt{
		Cond: &ast.BinaryExpr{Op: ast.OpLt, X: &ast.Ident{Name: name}, Y: &ast.IntLit{Value: bound}},
		Body: body,
	}
	return &ast.Block{Stmts: []ast.Stmt{decl, loop}}
}

func (g *gen) switchStmt() ast.Stmt {
	s := &ast.SwitchStmt{Tag: g.expr(ast.TypeInt, 2)}
	n := 2 + g.pick(4)
	used := map[int64]bool{}
	g.loopKinds = append(g.loopKinds, 'w') // breaks inside bind to the switch
	for i := 0; i < n; i++ {
		v := int64(g.rng.Intn(40) - 10)
		for used[v] {
			v++
		}
		used[v] = true
		arm := &ast.SwitchCase{Values: []int64{v}}
		nb := 1 + g.pick(2)
		blk := g.block(nb)
		arm.Body = blk.Stmts
		if !g.chance(0.25) { // mostly break, sometimes fall through
			arm.Body = append(arm.Body, &ast.BreakStmt{})
		}
		s.Cases = append(s.Cases, arm)
	}
	if g.chance(0.7) {
		blk := g.block(1)
		s.Cases = append(s.Cases, &ast.SwitchCase{Values: nil, Body: append(blk.Stmts, &ast.BreakStmt{})})
	}
	g.loopKinds = g.loopKinds[:len(g.loopKinds)-1]
	return s
}

// arrayWalk emits a canonical counted loop over an in-scope array
// with direct (unguarded) element accesses — the shape bounds-check
// elimination recognizes. Rarely the bound is inclusive
// ("i <= a.length"), which a correct VM answers with an
// ArrayIndexOutOfBoundsException; real fuzzed Java corpora contain
// such latent OOB loops too, and they are exactly the bait for
// off-by-one BCE defects.
func (g *gen) arrayWalk() ast.Stmt {
	elem := ast.KindInt
	if g.chance(0.3) {
		elem = ast.KindLong
	}
	arr := g.arrayVar(elem)
	if arr == nil {
		return nil
	}
	idx := g.fresh("i")
	g.pushScope()
	g.locals = append(g.locals, localVar{name: idx, typ: ast.TypeInt, protected: true})
	op := ast.OpLt
	if g.chance(0.12) {
		op = ast.OpLe // latent off-by-one: traps at i == length
	}
	var body []ast.Stmt
	if g.chance(0.6) {
		body = append(body, &ast.AssignStmt{
			Target: &ast.IndexExpr{Arr: ast.CloneExpr(arr), Index: &ast.Ident{Name: idx}},
			Op:     ast.AsnSet,
			Value:  g.expr(ast.Type{Kind: elem}, 1),
		})
	} else {
		target := g.varOf(ast.Type{Kind: elem})
		if target == nil {
			g.popScope()
			return nil
		}
		body = append(body, &ast.AssignStmt{
			Target: target,
			Op:     ast.AsnAdd,
			Value:  &ast.IndexExpr{Arr: ast.CloneExpr(arr), Index: &ast.Ident{Name: idx}},
		})
	}
	g.popScope()
	return &ast.ForStmt{
		Init: &ast.DeclStmt{Type: ast.TypeInt, Name: idx, Init: &ast.IntLit{Value: 0}},
		Cond: &ast.BinaryExpr{Op: op, X: &ast.Ident{Name: idx}, Y: &ast.LenExpr{Arr: ast.CloneExpr(arr)}},
		Post: &ast.AssignStmt{Target: &ast.Ident{Name: idx}, Op: ast.AsnAdd, Value: &ast.IntLit{Value: 1}},
		Body: &ast.Block{Stmts: body},
	}
}

// callables returns method indices this method may call (strictly
// lower indices, keeping the call graph acyclic).
func (g *gen) callables() []int {
	out := make([]int, 0, g.methodIdx)
	for i := 0; i < g.methodIdx && i < len(g.sigs); i++ {
		out = append(out, i)
	}
	return out
}

func (g *gen) callExpr(mi int) *ast.CallExpr {
	m := g.sigs[mi]
	call := &ast.CallExpr{Name: m.Name}
	for _, p := range m.Params {
		call.Args = append(call.Args, g.expr(p.Type, 1))
	}
	return call
}

func (g *gen) callStmt(mi int) ast.Stmt {
	call := g.callExpr(mi)
	if g.sigs[mi].Ret.Kind == ast.KindVoid {
		return &ast.ExprStmt{X: call}
	}
	name := g.fresh("r")
	g.locals = append(g.locals, localVar{name: name, typ: g.sigs[mi].Ret})
	return &ast.DeclStmt{Type: g.sigs[mi].Ret, Name: name, Init: call}
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

func (g *gen) literal(t ast.Type) ast.Expr {
	switch t.Kind {
	case ast.KindBoolean:
		return &ast.BoolLit{Value: g.chance(0.5)}
	case ast.KindLong:
		v := g.rng.Int63n(1 << 32)
		if g.chance(0.5) {
			v = -v
		}
		if g.chance(0.1) {
			v = g.rng.Int63() // occasionally huge
		}
		return &ast.IntLit{Value: v, IsLong: true}
	default:
		v := int64(g.rng.Intn(10000) - 3000)
		if g.chance(0.06) {
			v = int64(int32(g.rng.Uint64())) // full-range int
		}
		return &ast.IntLit{Value: v}
	}
}

// varOf returns a random in-scope variable/field of type t, or nil.
func (g *gen) varOf(t ast.Type) ast.Expr {
	var names []string
	for _, lv := range g.locals {
		if lv.typ.Equal(t) {
			names = append(names, lv.name)
		}
	}
	for _, f := range g.fields {
		if f.Type.Equal(t) {
			names = append(names, f.Name)
		}
	}
	if len(names) == 0 {
		return nil
	}
	return &ast.Ident{Name: names[g.pick(len(names))]}
}

// arrayVar returns an in-scope array variable with the element kind.
func (g *gen) arrayVar(elem ast.Kind) ast.Expr {
	t := ast.ArrayOf(elem)
	return g.varOf(t)
}

// guardedIndex builds a provably in-range index for arr (whose length
// is at least 1 by construction): (expr & 0x7fffffff) % arr.length.
func (g *gen) guardedIndex(arr ast.Expr) ast.Expr {
	e := g.expr(ast.TypeInt, 1)
	masked := &ast.BinaryExpr{Op: ast.OpAnd, X: e, Y: &ast.IntLit{Value: 0x7fffffff}}
	return &ast.BinaryExpr{Op: ast.OpRem, X: masked, Y: &ast.LenExpr{Arr: ast.CloneExpr(arr)}}
}

func (g *gen) expr(t ast.Type, depth int) ast.Expr {
	if depth <= 0 {
		if v := g.varOf(t); v != nil && g.chance(0.65) {
			return v
		}
		return g.literal(t)
	}
	switch t.Kind {
	case ast.KindBoolean:
		switch g.pick(8) {
		case 0:
			return &ast.UnaryExpr{Op: ast.OpNot, X: g.expr(ast.TypeBoolean, depth-1)}
		case 1, 2:
			op := []ast.BinOp{ast.OpLAnd, ast.OpLOr, ast.OpAnd, ast.OpOr, ast.OpXor}[g.pick(5)]
			return &ast.BinaryExpr{Op: op, X: g.expr(ast.TypeBoolean, depth-1), Y: g.expr(ast.TypeBoolean, depth-1)}
		case 3, 4, 5:
			nt := ast.TypeInt
			if g.chance(0.3) {
				nt = ast.TypeLong
			}
			op := []ast.BinOp{ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe, ast.OpEq, ast.OpNe}[g.pick(6)]
			return &ast.BinaryExpr{Op: op, X: g.expr(nt, depth-1), Y: g.expr(nt, depth-1)}
		case 6:
			if c := g.methodReturning(ast.TypeBoolean); c != nil {
				return c
			}
			fallthrough
		default:
			if v := g.varOf(ast.TypeBoolean); v != nil {
				return v
			}
			return g.literal(t)
		}
	case ast.KindInt, ast.KindLong:
		switch g.pick(12) {
		case 0, 1, 2, 3:
			return g.arith(t, depth)
		case 4:
			return &ast.UnaryExpr{Op: []ast.UnOp{ast.OpNeg, ast.OpBitNot}[g.pick(2)], X: g.expr(t, depth-1)}
		case 5:
			return &ast.CondExpr{Cond: g.expr(ast.TypeBoolean, depth-1), Then: g.expr(t, depth-1), Else: g.expr(t, depth-1)}
		case 6:
			// Cast from the other width.
			if t.Kind == ast.KindInt {
				return &ast.CastExpr{To: ast.TypeInt, X: g.expr(ast.TypeLong, depth-1)}
			}
			return &ast.CastExpr{To: ast.TypeLong, X: g.expr(ast.TypeInt, depth-1)}
		case 7:
			if arr := g.arrayVar(t.Kind); arr != nil {
				return &ast.IndexExpr{Arr: arr, Index: g.guardedIndex(arr)}
			}
			return g.arith(t, depth)
		case 8:
			if t.Kind == ast.KindInt {
				for _, elem := range []ast.Kind{ast.KindInt, ast.KindLong} {
					if arr := g.arrayVar(elem); arr != nil && g.chance(0.5) {
						return &ast.LenExpr{Arr: arr}
					}
				}
			}
			return g.arith(t, depth)
		case 9:
			if c := g.methodReturning(t); c != nil {
				return c
			}
			return g.arith(t, depth)
		default:
			if v := g.varOf(t); v != nil {
				return v
			}
			return g.literal(t)
		}
	}
	return g.literal(t)
}

// arith builds a binary arithmetic expression of type t; divisions get
// a (|1) guard on the divisor unless the rare raw-division roll hits.
func (g *gen) arith(t ast.Type, depth int) ast.Expr {
	ops := []ast.BinOp{ast.OpAdd, ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpDiv, ast.OpRem,
		ast.OpAnd, ast.OpOr, ast.OpXor, ast.OpShl, ast.OpShr, ast.OpUshr}
	op := ops[g.pick(len(ops))]
	x := g.expr(t, depth-1)
	var y ast.Expr
	switch {
	case op == ast.OpDiv || op == ast.OpRem:
		y = g.expr(t, depth-1)
		if !g.chance(g.opts.RawDivProb) {
			one := &ast.IntLit{Value: 1, IsLong: t.Kind == ast.KindLong}
			y = &ast.BinaryExpr{Op: ast.OpOr, X: y, Y: one}
		}
	case op.IsShift():
		y = &ast.IntLit{Value: int64(g.pick(40))}
	default:
		y = g.expr(t, depth-1)
	}
	return &ast.BinaryExpr{Op: op, X: x, Y: y}
}

// methodReturning builds a call to a callable method with return type
// t, or nil.
func (g *gen) methodReturning(t ast.Type) ast.Expr {
	var cands []int
	for _, i := range g.callables() {
		if g.sigs[i].Ret.Equal(t) {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	return g.callExpr(cands[g.pick(len(cands))])
}
