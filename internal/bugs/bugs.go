// Package bugs catalogs the seeded JIT-compiler defects that stand in
// for the real production-JVM bugs the paper's campaigns discover
// (85 reported; Tables 1 and 2). Each bug is tagged with the JIT
// component it lives in (mirroring Table 2's component breakdown) and
// the simulated JVM profile it afflicts. The defects themselves are
// implemented inside internal/jit behind `Set.Has(id)` checks; this
// package only holds metadata and the per-profile sets.
//
// Design rules for the corpus, matching the paper's observations:
//
//   - Every bug manifests only when JIT compilation actually happens
//     (Section 4.2: "all reported bugs concern JIT compilers").
//   - Most crashes fire while *compiling* (29 of 32 HotSpot crashes),
//     a few while executing compiled code.
//   - OpenJ9's crashes concentrate in the garbage collector, caused by
//     compiled code corrupting the heap.
//   - Mis-compilations are rarer than crashes (Table 1) and latent:
//     they need specific code shapes that seed programs rarely have
//     but JoNM mutations routinely create (hot loops, pre-invoked
//     methods, speculation + deopt).
package bugs

// Kind classifies a defect's observable symptom.
type Kind int

const (
	Miscompile Kind = iota
	Crash
	Perf
)

func (k Kind) String() string {
	switch k {
	case Miscompile:
		return "mis-compilation"
	case Crash:
		return "crash"
	case Perf:
		return "performance"
	}
	return "unknown"
}

// Phase says when the defect fires.
type Phase int

const (
	// AtCompile: assertion-style failure while the JIT is compiling.
	AtCompile Phase = iota
	// AtExecute: wrong code or fault while running compiled code.
	AtExecute
	// AtGC: compiled code corrupts the heap; the crash surfaces later
	// inside the garbage collector.
	AtGC
)

// Info describes one seeded defect.
type Info struct {
	ID        string
	JVM       string // "hotspot", "openj9", "art"
	Component string // Table 2 component label
	Kind      Kind
	Phase     Phase
	Tier      int // compiler tier the defect lives in (1 or 2)
	Desc      string
}

// Catalog lists every seeded defect.
var Catalog = []Info{
	// --- HotSpot-like: method-JIT C1 (tier 1) + optimizing C2 (tier 2).
	{"hs-c1-bigmethod", "hotspot", "Inlining, C1", Crash, AtCompile, 1,
		"C1 aborts on methods over the inline-buffer budget (many params + large body)"},
	{"hs-igb-region", "hotspot", "Ideal Graph Building, C2", Crash, AtCompile, 2,
		"region-node budget assertion on switch-heavy control flow"},
	{"hs-loopopt-nest", "hotspot", "Ideal Loop Optimization, C2", Crash, AtCompile, 2,
		"assertion in loop-tree construction for >=3-deep nests containing calls"},
	{"hs-gcm-store-sink", "hotspot", "Ideal Loop Optimization, C2", Miscompile, AtExecute, 2,
		"global code motion sinks a field increment into a deeper loop on a frequency tie (JDK-8288975 replica)"},
	{"hs-gcp-fold-minint", "hotspot", "Global Constant Propagation, C2", Crash, AtCompile, 2,
		"constant folder asserts on MIN_VALUE / -1"},
	{"hs-gvn-across-store", "hotspot", "Global Value Numbering, C2", Miscompile, AtExecute, 2,
		"field loads value-numbered ignoring intervening stores"},
	{"hs-gvn-table", "hotspot", "Global Value Numbering, C2", Crash, AtCompile, 2,
		"value-number table overflow assertion on very large methods"},
	{"hs-ea-phi", "hotspot", "Escape Analysis, C2", Crash, AtCompile, 2,
		"escape analysis asserts when an allocation merges into a phi"},
	{"hs-ra-highpressure", "hotspot", "Register Allocation, C2", Miscompile, AtExecute, 2,
		"two spill slots swapped under very high register pressure"},
	{"hs-cg-ushr-wide", "hotspot", "Code Generation, C2", Miscompile, AtExecute, 2,
		"long >>> emitted with a 32-bit shift-count mask"},
	{"hs-exec-guard-stack", "hotspot", "Code Execution, C2", Crash, AtExecute, 2,
		"uncommon-trap stub faults when the deopt frame has a deep operand stack"},
	{"hs-perf-osr-storm", "hotspot", "Code Execution, C2", Perf, AtExecute, 2,
		"OSR code of later loops with multiple guards re-enters the runtime every few instructions, running far slower than the interpreter"},

	// --- OpenJ9-like: single JIT with warm/hot levels (tiers 1/2).
	{"oj-lvp-across-call", "openj9", "Local Value Propagation", Miscompile, AtExecute, 2,
		"field value forwarded across a call that clobbers it"},
	{"oj-gvp-join", "openj9", "Global Value Propagation", Crash, AtCompile, 2,
		"value propagation asserts on wide phi joins of field loads"},
	{"oj-vector-legality", "openj9", "Loop Vectorization", Crash, AtCompile, 2,
		"vectorizer legality check asserts on loops with many array stores"},
	{"oj-deopt-stale", "openj9", "De-optimization", Miscompile, AtExecute, 2,
		"guard frame states capture block-entry locals, resuming with stale values"},
	{"oj-ra-interval", "openj9", "Register Allocation", Crash, AtCompile, 2,
		"linear-scan interval table overflow"},
	{"oj-cg-switch-dense", "openj9", "Code Generation", Crash, AtCompile, 2,
		"dense-switch lowering asserts on tables with many entries"},
	{"oj-cg-l2i-skip", "openj9", "Code Generation", Miscompile, AtExecute, 2,
		"l2i after a shift treated as a no-op (missing truncation)"},
	{"oj-jitint-guard", "openj9", "Other JIT Components", Crash, AtCompile, 2,
		"JIT-interpreter transition assert for methods mixing guards and calls"},
	{"oj-recomp-limit", "openj9", "Recompilation", Crash, AtCompile, 2,
		"recompilation bookkeeping asserts at the third recompile of a method"},
	{"oj-bce-offbyone", "openj9", "Garbage Collection", Crash, AtGC, 2,
		"bounds-check elimination accepts an inclusive loop bound; the unchecked store corrupts the adjacent heap word, crashing the GC"},
	{"oj-gc-barrier", "openj9", "Garbage Collection", Crash, AtGC, 2,
		"compiled store barrier overruns 8-aligned arrays on element-0 stores, corrupting heap metadata found by the GC"},

	// --- ART-like: single method-JIT (tier 1).
	{"art-t1-ushr-int", "art", "OptimizingCompiler", Miscompile, AtExecute, 1,
		"int >>> lowered to an arithmetic shift for non-constant counts"},
	{"art-t1-osr-switch", "art", "OptimizingCompiler", Crash, AtCompile, 1,
		"OSR entry construction asserts when the target loop contains a switch"},
	{"art-t1-bigframe", "art", "OptimizingCompiler", Crash, AtCompile, 1,
		"frame layout assert for methods with very many locals"},
	{"art-gc-clear", "art", "Garbage Collection", Crash, AtGC, 1,
		"compiled array-clear intrinsic overruns by one word on 8-aligned lengths"},
}

// ByID returns metadata for a bug id.
func ByID(id string) (Info, bool) {
	for _, b := range Catalog {
		if b.ID == id {
			return b, true
		}
	}
	return Info{}, false
}

// Set is an enabled-bug set, keyed by bug ID.
type Set map[string]bool

// Has reports whether the bug is enabled.
func (s Set) Has(id string) bool { return s != nil && s[id] }

// NewSet builds a set from ids.
func NewSet(ids ...string) Set {
	s := Set{}
	for _, id := range ids {
		s[id] = true
	}
	return s
}

// ForJVM returns all catalog bugs afflicting the given simulated JVM.
func ForJVM(jvm string) []Info {
	var out []Info
	for _, b := range Catalog {
		if b.JVM == jvm {
			out = append(out, b)
		}
	}
	return out
}

// SetForJVM enables every catalog bug of one simulated JVM.
func SetForJVM(jvm string) Set {
	s := Set{}
	for _, b := range ForJVM(jvm) {
		s[b.ID] = true
	}
	return s
}
