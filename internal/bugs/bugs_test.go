package bugs

import "testing"

func TestCatalogIntegrity(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range Catalog {
		if b.ID == "" || b.Component == "" || b.Desc == "" {
			t.Errorf("incomplete catalog entry: %+v", b)
		}
		if seen[b.ID] {
			t.Errorf("duplicate bug id %q", b.ID)
		}
		seen[b.ID] = true
		switch b.JVM {
		case "hotspot", "openj9", "art":
		default:
			t.Errorf("bug %s: unknown JVM %q", b.ID, b.JVM)
		}
		if b.Tier != 1 && b.Tier != 2 {
			t.Errorf("bug %s: tier %d", b.ID, b.Tier)
		}
	}
}

func TestEveryJVMHasRealisticMix(t *testing.T) {
	// The paper's shape: every JVM has both crashes and at least
	// hotspot/openj9/art-specific defects; openj9 is GC-heavy.
	for _, jvm := range []string{"hotspot", "openj9", "art"} {
		list := ForJVM(jvm)
		if len(list) < 3 {
			t.Errorf("%s: only %d seeded bugs", jvm, len(list))
		}
		crashes, miscompiles := 0, 0
		for _, b := range list {
			switch b.Kind {
			case Crash:
				crashes++
			case Miscompile:
				miscompiles++
			}
		}
		if crashes == 0 || miscompiles == 0 {
			t.Errorf("%s: want both crashes (%d) and mis-compilations (%d)", jvm, crashes, miscompiles)
		}
	}
	gc := 0
	for _, b := range ForJVM("openj9") {
		if b.Component == "Garbage Collection" {
			gc++
		}
	}
	if gc < 2 {
		t.Errorf("openj9 should be GC-crash heavy (Table 2), have %d", gc)
	}
}

func TestSets(t *testing.T) {
	s := NewSet("a", "b")
	if !s.Has("a") || s.Has("c") {
		t.Error("Set membership broken")
	}
	var nilSet Set
	if nilSet.Has("a") {
		t.Error("nil set must be empty")
	}
	hs := SetForJVM("hotspot")
	for _, b := range ForJVM("hotspot") {
		if !hs.Has(b.ID) {
			t.Errorf("SetForJVM missing %s", b.ID)
		}
	}
	if _, ok := ByID("hs-gcm-store-sink"); !ok {
		t.Error("flagship bug missing from catalog")
	}
	if _, ok := ByID("nonexistent"); ok {
		t.Error("ByID invented a bug")
	}
}
