// Package profiles defines the three simulated production JVM
// configurations validated in the paper's evaluation (Section 4.1):
// a HotSpot-like VM (C1+C2 tiers), an OpenJ9-like VM (one JIT with
// warm/hot levels and GC-heavy failure modes), and an ART-like VM
// (single method-JIT with high thresholds). Each profile couples
//
//   - tier structure and compilation thresholds (Definition 3.1),
//   - the JoNM loop-synthesis bounds MIN/MAX/STEP the paper uses for
//     that JVM (5,000/10,000 for HotSpot and OpenJ9, 20,000/50,000
//     for ART), and
//   - the seeded-defect set simulating that JVM's latent JIT bugs.
package profiles

import (
	"fmt"

	"artemis/internal/bugs"
	"artemis/internal/jit"
	"artemis/internal/vm"
)

// Profile describes one simulated JVM.
type Profile struct {
	// Name is the profile identifier ("hotspotlike", ...).
	Name string
	// JVM is the bug-catalog key ("hotspot", "openj9", "art").
	JVM string
	// MaxTier is the number of JIT levels.
	MaxTier int
	// EntryThresholds / OSRThresholds are the Z_i counter thresholds.
	EntryThresholds []int64
	OSRThresholds   []int64
	// SynMin, SynMax, SynStepMax are the JoNM loop-synthesis
	// parameters for this VM (Section 4.1).
	SynMin, SynMax, SynStepMax int64
	// Description for reports.
	Description string
}

var all = []*Profile{
	{
		Name:            "hotspotlike",
		JVM:             "hotspot",
		MaxTier:         2,
		EntryThresholds: []int64{350, 1400},
		OSRThresholds:   []int64{450, 1800},
		SynMin:          5000,
		SynMax:          10000,
		SynStepMax:      10,
		Description:     "HotSpot-like: C1 quick tier + C2 optimizing tier, aggressive speculation",
	},
	{
		Name:            "openj9like",
		JVM:             "openj9",
		MaxTier:         2,
		EntryThresholds: []int64{300, 1200},
		OSRThresholds:   []int64{400, 1500},
		SynMin:          5000,
		SynMax:          10000,
		SynStepMax:      10,
		Description:     "OpenJ9-like: single JIT with warm/hot levels; heap-corrupting defects surface in the GC",
	},
	{
		Name:            "artlike",
		JVM:             "art",
		MaxTier:         1,
		EntryThresholds: []int64{2500},
		OSRThresholds:   []int64{2800},
		SynMin:          20000,
		SynMax:          50000,
		SynStepMax:      10,
		Description:     "ART-like: one method-JIT (OptimizingCompiler) with high thresholds",
	},
}

// All returns every profile.
func All() []*Profile { return all }

// Get returns a profile by name.
func Get(name string) (*Profile, error) {
	for _, p := range all {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("profiles: unknown profile %q (have hotspotlike, openj9like, artlike)", name)
}

// BugSet returns the defect set for this profile (every catalog bug of
// its simulated JVM).
func (p *Profile) BugSet() bugs.Set { return bugs.SetForJVM(p.JVM) }

// VMConfig builds a VM configuration for one run. Each call creates a
// fresh compiler (compiled-code caches are per-VM anyway; compiler
// stats stay isolated per run). When buggy is false, the JIT is
// correct — the configuration to use when validating the validator.
func (p *Profile) VMConfig(buggy bool) vm.Config {
	var set bugs.Set
	if buggy {
		set = p.BugSet()
	}
	return vm.Config{
		Name:            p.Name,
		EntryThresholds: p.EntryThresholds,
		OSRThresholds:   p.OSRThresholds,
		JIT:             jit.New(jit.Options{MaxTier: p.MaxTier, Bugs: set}),
	}
}

// VMConfigWithBugs builds a VM configuration with an explicit defect
// set (used for "fix verification": disabling one bug at a time).
func (p *Profile) VMConfigWithBugs(set bugs.Set) vm.Config {
	return vm.Config{
		Name:            p.Name,
		EntryThresholds: p.EntryThresholds,
		OSRThresholds:   p.OSRThresholds,
		JIT:             jit.New(jit.Options{MaxTier: p.MaxTier, Bugs: set}),
	}
}

// InterpreterConfig returns a JIT-free configuration of this profile
// (the -Xint analogue).
func (p *Profile) InterpreterConfig() vm.Config {
	return vm.Config{Name: p.Name + "-int"}
}
