package profiles

import (
	"testing"

	"artemis/internal/bytecode"
	"artemis/internal/lang/parser"
	"artemis/internal/lang/sem"
	"artemis/internal/vm"
)

func TestGetAndAll(t *testing.T) {
	if len(All()) != 3 {
		t.Fatalf("profiles = %d, want 3", len(All()))
	}
	for _, name := range []string{"hotspotlike", "openj9like", "artlike"} {
		p, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != name {
			t.Errorf("Get(%q).Name = %q", name, p.Name)
		}
		if len(p.EntryThresholds) != p.MaxTier || len(p.OSRThresholds) != p.MaxTier {
			t.Errorf("%s: threshold count mismatch with MaxTier %d", name, p.MaxTier)
		}
	}
	if _, err := Get("v8like"); err == nil {
		t.Error("unknown profile should error")
	}
}

// TestSynthesizedHeatCrossesThresholds: the JoNM loop bounds of each
// profile must guarantee enough iterations to cross at least the
// tier-1 thresholds (otherwise mutation could never open the
// compilation space).
func TestSynthesizedHeatCrossesThresholds(t *testing.T) {
	for _, p := range All() {
		minIters := (p.SynMax - p.SynMin) / p.SynStepMax
		if minIters < p.OSRThresholds[0] {
			t.Errorf("%s: worst-case synthesized iterations %d < OSR threshold %d",
				p.Name, minIters, p.OSRThresholds[0])
		}
		if minIters < p.EntryThresholds[0] {
			t.Errorf("%s: worst-case pre-invocations %d < entry threshold %d",
				p.Name, minIters, p.EntryThresholds[0])
		}
	}
}

func TestVMConfigsRun(t *testing.T) {
	prog, err := parser.Parse(`class T {
        int work(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) { s += i * i; }
            return s;
        }
        void main() {
            long total = 0;
            for (int r = 0; r < 2000; r++) { total += work(40); }
            print(total);
        }
    }`)
	if err != nil {
		t.Fatal(err)
	}
	bp := bytecode.MustCompile(sem.MustAnalyze(prog))

	ref := vm.Run(vm.Config{}, bp).Output
	for _, p := range All() {
		correct := vm.Run(p.VMConfig(false), bp)
		if !correct.Output.Equivalent(ref) {
			t.Errorf("%s (correct): output differs from interpreter", p.Name)
		}
		if correct.Compilations == 0 {
			t.Errorf("%s: hot workload never compiled (thresholds too high?)", p.Name)
		}
		// The buggy VM may crash or mis-compile but must not hang.
		buggy := vm.Run(p.VMConfig(true), bp)
		if buggy.Output.Term == vm.TermTimeout {
			t.Errorf("%s (buggy): unexpected timeout", p.Name)
		}
	}
}

func TestBugSetsMatchJVM(t *testing.T) {
	for _, p := range All() {
		set := p.BugSet()
		if len(set) == 0 {
			t.Errorf("%s: empty bug set", p.Name)
		}
	}
}
