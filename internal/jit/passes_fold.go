package jit

import (
	"artemis/internal/bugs"
	"artemis/internal/bytecode"
	"artemis/internal/jit/ir"
	"artemis/internal/vm"
)

// foldConstants performs sparse constant folding and algebraic
// simplification (the "Global Constant Propagation" component).
// Arithmetic is delegated to vm.EvalBinary so the folder can never
// disagree with the interpreter — except where an injected bug says
// otherwise. It returns the number of values folded.
func foldConstants(f *ir.Func, bugSet bugs.Set) int {
	repl := map[*ir.Value]*ir.Value{}
	newConst := func(b *ir.Block, v int64) *ir.Value {
		c := f.NewValue(b, ir.OpConst)
		c.Aux = v
		return c
	}
	resolve := func(v *ir.Value) *ir.Value {
		for {
			w, ok := repl[v]
			if !ok {
				return v
			}
			v = w
		}
	}

	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			for _, v := range b.Values {
				if _, dead := repl[v]; dead {
					continue
				}
				if w := simplify(f, v, resolve, newConst, bugSet); w != nil && w != v {
					repl[v] = w
					changed = true
				}
			}
		}
	}
	f.ReplaceAll(repl)
	f.RemoveDead()
	return len(repl)
}

// simplify returns a replacement for v, or nil.
func simplify(f *ir.Func, v *ir.Value, resolve func(*ir.Value) *ir.Value,
	newConst func(*ir.Block, int64) *ir.Value, bugSet bugs.Set) *ir.Value {

	argConst := func(i int) (int64, bool) {
		a := resolve(v.Args[i])
		if a.Op == ir.OpConst {
			return a.Aux, true
		}
		return 0, false
	}

	switch {
	case v.Op.IsBinArith():
		x, xok := argConst(0)
		y, yok := argConst(1)
		if xok && yok {
			if (v.Op == ir.OpDiv || v.Op == ir.OpRem) && y == 0 {
				return nil // keep the trapping instruction
			}
			if bugSet.Has("hs-gcp-fold-minint") && (v.Op == ir.OpDiv || v.Op == ir.OpRem) && y == -1 {
				min := int64(-1 << 31)
				if v.Wide {
					min = -1 << 63
				}
				if x == min {
					crashf("Global Constant Propagation, C2",
						"folding overflow: %d %s -1", x, v.Op)
				}
			}
			r, err := vm.EvalBinary(v.Op.BytecodeOpFor(), v.Wide, x, y)
			if err != nil {
				return nil
			}
			return newConst(v.Block, r)
		}
		// Algebraic identities (safe for both widths).
		a0 := resolve(v.Args[0])
		switch v.Op {
		case ir.OpAdd, ir.OpOr, ir.OpXor:
			if yok && y == 0 {
				return a0
			}
			if xok && x == 0 && v.Op == ir.OpAdd {
				return resolve(v.Args[1])
			}
		case ir.OpSub, ir.OpShl, ir.OpShr, ir.OpUshr:
			if yok && y == 0 {
				return a0
			}
		case ir.OpMul:
			if yok && y == 1 {
				return a0
			}
			if yok && y == 0 {
				return newConst(v.Block, 0)
			}
		case ir.OpAnd:
			if yok && y == -1 {
				return a0
			}
		case ir.OpDiv:
			if yok && y == 1 {
				return a0
			}
		}
		return nil

	case v.Op == ir.OpNeg:
		if c, ok := argConst(0); ok {
			if v.Wide {
				return newConst(v.Block, -c)
			}
			return newConst(v.Block, int64(int32(-c)))
		}
	case v.Op == ir.OpBitNot:
		if c, ok := argConst(0); ok {
			if v.Wide {
				return newConst(v.Block, ^c)
			}
			return newConst(v.Block, int64(int32(^c)))
		}
	case v.Op == ir.OpL2I:
		a := resolve(v.Args[0])
		if a.Op == ir.OpConst {
			return newConst(v.Block, int64(int32(a.Aux)))
		}
		if a.Op == ir.OpL2I {
			return a // idempotent
		}
	case v.Op == ir.OpCmp:
		x, xok := argConst(0)
		y, yok := argConst(1)
		if xok && yok {
			if v.Cond.Eval(x, y) {
				return newConst(v.Block, 1)
			}
			return newConst(v.Block, 0)
		}
		a0, a1 := resolve(v.Args[0]), resolve(v.Args[1])
		if a0 == a1 {
			// x op x is decidable for every condition.
			if v.Cond.Eval(0, 0) {
				return newConst(v.Block, 1)
			}
			return newConst(v.Block, 0)
		}
		// (cmp.c a b) == 0  =>  cmp.!c a b
		if v.Cond == bytecode.CondEQ && a1.Op == ir.OpConst && a1.Aux == 0 && a0.Op == ir.OpCmp {
			inv := f.NewValue(v.Block, ir.OpCmp, a0.Args[0], a0.Args[1])
			inv.Cond = a0.Cond.Negate()
			inv.Wide = a0.Wide
			// List-order lowering requires defs before uses: the new
			// compare must sit at v's position, not the block end.
			ir.InsertAfter(inv, v)
			return inv
		}
	case v.Op == ir.OpPhi:
		// A phi whose inputs are all the same value (or itself)
		// collapses.
		var only *ir.Value
		for _, a := range v.Args {
			a = resolve(a)
			if a == v {
				continue
			}
			if only == nil {
				only = a
			} else if only != a {
				return nil
			}
		}
		return only
	case v.Op == ir.OpArrLen:
		a := resolve(v.Args[0])
		if a.Op == ir.OpNewArr {
			if l := resolve(a.Args[0]); l.Op == ir.OpConst {
				return newConst(v.Block, int64(int32(l.Aux)))
			}
		}
	}
	return nil
}

// foldBranches replaces BlockIf with constant controls by plain edges
// (completing sparse conditional constant propagation's control part).
// It returns the number of branches folded.
func foldBranches(f *ir.Func) int {
	folded := 0
	for _, b := range f.Blocks {
		if b.Kind != ir.BlockIf || b.Ctrl == nil || b.Ctrl.Op != ir.OpConst {
			continue
		}
		folded++
		takeIdx := 1
		if b.Ctrl.Aux != 0 {
			takeIdx = 0
		}
		dead := b.Succs[1-takeIdx]
		// Remove this edge from dead's preds (and its phi args).
		for pi, p := range dead.Preds {
			if p == b {
				dead.RemovePredEdge(pi)
				break
			}
		}
		b.Kind = ir.BlockPlain
		b.Ctrl = nil
		b.Succs = []*ir.Block{b.Succs[takeIdx]}
	}
	f.ComputeLoops() // re-derive reachability, loops, frequencies
	f.RemoveDead()
	return folded
}
