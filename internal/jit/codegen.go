package jit

import (
	"fmt"

	"artemis/internal/bugs"
	"artemis/internal/bytecode"
	"artemis/internal/jit/ir"
	"artemis/internal/lang/ast"
	"artemis/internal/vm"
)

// The machine model: compiled code runs on a flat frame of int64 slots
// ("registers"). The allocator assigns one frame slot per virtual
// register — a simple but valid allocation; the injected register-
// allocator defects alias or overflow these assignments.

type mop uint8

const (
	mNop     mop = iota
	mLdi         // R[d] = imm
	mLdArg       // R[d] = args[imm] (prologue)
	mMov         // R[d] = R[a]
	mBin         // R[d] = R[a] bop R[b]
	mNeg         // R[d] = -R[a]
	mBitNot      // R[d] = ^R[a]
	mL2I         // R[d] = int32(R[a])
	mCmp         // R[d] = R[a] cond R[b]
	mGetF        // R[d] = field[imm]
	mPutF        // field[imm] = R[a]
	mNewArr      // R[d] = new kind[R[a]]
	mALoad       // R[d] = R[a][R[b]] (bounds-checked)
	mALoadNC     // unchecked load (clamped to the object, canary included)
	mAStore      // R[a][R[b]] = R[c] (bounds-checked)
	mAStoreNC
	mAStoreRaw // unchecked store that can hit the canary word
	mArrLen    // R[d] = R[a].length
	mCall      // R[d] = call method imm with args regs
	mPrint     // print kind R[a]
	mJmp       // pc = imm
	mBr        // if R[a] != 0 -> imm else fallthrough
	mSwitch    // table dispatch on R[a]
	mGuard     // if R[a] != imm -> deopt #deopt
	mRet       // return R[a]
	mRetVoid
)

type mswitch struct {
	vals    []int64
	targets []int
	deflt   int
}

// loc describes where a deopt frame value lives.
type loc struct {
	isConst bool
	val     int64 // constant value or frame slot
}

// deoptSite is the reconstruction recipe for one guard.
type deoptSite struct {
	pc     int
	locals []loc
	stack  []loc
}

type minstr struct {
	op    mop
	d     int32
	a     int32
	b     int32
	c     int32
	imm   int64
	bop   bytecode.Op
	wide  bool
	cond  bytecode.Cond
	kind  ast.Kind
	args  []int32
	table *mswitch
	deopt int32
	// bug32Mask marks a wide ushr miscompiled with a 32-bit count
	// mask (hs-cg-ushr-wide).
	bug32Mask bool
}

// Code is one compiled method body. It implements vm.CompiledCode via
// the executor in machine.go.
type Code struct {
	name      string
	tier      int
	osr       bool
	frameSize int
	ins       []minstr
	deopts    []deoptSite
	// stats is filled in by the Compiler after lowering; see
	// vm.CompileStatsProvider.
	stats *vm.CompileStats
	// bug toggles consulted at execution time
	execBugs execBugSet
}

type execBugSet struct {
	guardStackCrash bool // hs-exec-guard-stack
	gcBarrier       bool // oj-gc-barrier
	gcClear         bool // art-gc-clear
	perfStorm       bool // hs-perf-osr-storm
	aliasA, aliasB  int32
	aliased         bool // hs-ra-highpressure
}

// Tier implements vm.CompiledCode.
func (c *Code) Tier() int { return c.tier }

// IsOSR implements vm.CompiledCode.
func (c *Code) IsOSR() bool { return c.osr }

// Size implements vm.CompiledCode.
func (c *Code) Size() int { return len(c.ins) }

// CompileStats implements vm.CompileStatsProvider.
func (c *Code) CompileStats() *vm.CompileStats { return c.stats }

// lower translates SSA to machine code.
func lower(f *ir.Func, tier int, bugSet bugs.Set) *Code {
	f.SplitCriticalEdges()
	f.ComputeUses()

	// Codegen-phase injected crashes.
	if tier == 1 && bugSet.Has("art-t1-bigframe") && f.NSlots > 56 {
		crashf("OptimizingCompiler", "frame layout: %d locals exceed dex register budget", f.NSlots)
	}
	if tier == 1 && bugSet.Has("art-t1-osr-switch") && f.OSRLoopID >= 0 {
		nSwitch := 0
		for _, b := range f.Blocks {
			if b.Kind == ir.BlockSwitch {
				nSwitch++
			}
		}
		if nSwitch >= 2 {
			crashf("OptimizingCompiler", "OSR entry: unexpected switch environment")
		}
	}

	// Assign a frame slot to every result-producing value.
	reg := map[*ir.Value]int32{}
	next := int32(0)
	slotOf := func(v *ir.Value) int32 {
		if r, ok := reg[v]; ok {
			return r
		}
		r := next
		next++
		reg[v] = r
		return r
	}
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			// Constants are materialized at each use site instead of
			// at their list position (passes may create them after
			// their consumers in the list).
			if v.Op == ir.OpConst {
				continue
			}
			if v.HasResult() && (v.Uses > 0 || v.Op == ir.OpCall) {
				slotOf(v)
			}
		}
	}
	nRegs := int(next)
	if tier >= 2 && bugSet.Has("oj-ra-interval") && nRegs > 700 {
		crashf("Register Allocation", "linear scan: %d live intervals overflow the interval table", nRegs)
	}
	execBugs := execBugSet{
		guardStackCrash: bugSet.Has("hs-exec-guard-stack"),
		gcBarrier:       bugSet.Has("oj-gc-barrier"),
		gcClear:         tier == 1 && bugSet.Has("art-gc-clear"),
	}
	if bugSet.Has("hs-perf-osr-storm") && f.OSRLoopID >= 2 {
		guards := 0
		for _, b := range f.Blocks {
			for _, v := range b.Values {
				if v.Op == ir.OpGuard {
					guards++
				}
			}
		}
		execBugs.perfStorm = guards >= 2
	}
	if bugSet.Has("hs-ra-highpressure") && nRegs > 96 {
		// BUG: a long-lived early register (slot 1 — typically a
		// parameter or entry-block value) is merged with a
		// mid-function temporary, whose definition clobbers it.
		execBugs.aliased = true
		execBugs.aliasA, execBugs.aliasB = 1, int32(nRegs/2)
	}

	c := &Code{name: f.Name, tier: tier, osr: f.OSRLoopID >= 0, execBugs: execBugs}

	// Layout: reverse postorder.
	order := f.ReversePostorder()
	blockStart := map[int]int{}
	type patch struct {
		ins    int
		target *ir.Block
		// table patches
		tblIdx int // -1 for imm patches
	}
	var patches []patch

	emit := func(in minstr) int {
		c.ins = append(c.ins, in)
		return len(c.ins) - 1
	}

	locOf := func(v *ir.Value) loc {
		if v.Op == ir.OpConst {
			return loc{isConst: true, val: v.Aux}
		}
		return loc{val: int64(slotOf(v))}
	}

	// ensureIn returns the frame slot holding v at the current
	// emission point. Constants are (re)materialized here, at every
	// use site — the only placement that is correct regardless of
	// where passes created them in the value lists.
	ensureIn := func(v *ir.Value) int32 {
		if v.Op == ir.OpConst {
			r := slotOf(v)
			emit(minstr{op: mLdi, d: r, imm: v.Aux})
			return r
		}
		r, ok := reg[v]
		if !ok {
			panic(fmt.Sprintf("jit: value %s has no slot and is not a constant", v))
		}
		return r
	}

	for oi, b := range order {
		blockStart[b.ID] = len(c.ins)

		// Entry prologue: parameters.
		if b == f.Entry {
			for _, v := range b.Values {
				if v.Op == ir.OpParam && v.Uses > 0 {
					emit(minstr{op: mLdArg, d: slotOf(v), imm: v.Aux})
				}
			}
		}

		for _, v := range b.Values {
			switch v.Op {
			case ir.OpPhi, ir.OpParam:
				// Phis are resolved by edge moves; params by prologue.
			case ir.OpConst:
				// Materialized at use sites by ensureIn.
			case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem, ir.OpAnd,
				ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpUshr:
				if v.Uses == 0 && !v.Trapping() {
					continue
				}
				in := minstr{op: mBin, d: slotOf(v), a: ensureIn(v.Args[0]), b: ensureIn(v.Args[1]),
					bop: v.Op.BytecodeOpFor(), wide: v.Wide}
				if v.Op == ir.OpUshr {
					nonConstCount := v.Args[1].Op != ir.OpConst
					if v.Wide && bugSet.Has("hs-cg-ushr-wide") && nonConstCount {
						in.bug32Mask = true // BUG: wrong mask for long >>>
					}
					if !v.Wide && tier == 1 && bugSet.Has("art-t1-ushr-int") && nonConstCount {
						in.bop = bytecode.OpShr // BUG: arithmetic shift instead
					}
				}
				emit(in)
			case ir.OpNeg:
				emit(minstr{op: mNeg, d: slotOf(v), a: ensureIn(v.Args[0]), wide: v.Wide})
			case ir.OpBitNot:
				emit(minstr{op: mBitNot, d: slotOf(v), a: ensureIn(v.Args[0]), wide: v.Wide})
			case ir.OpL2I:
				if bugSet.Has("oj-cg-l2i-skip") && v.Args[0].Op.IsBinArith() &&
					(v.Args[0].Op == ir.OpShl || v.Args[0].Op == ir.OpShr || v.Args[0].Op == ir.OpUshr) {
					// BUG: truncation after shifts "optimized" to a move.
					emit(minstr{op: mMov, d: slotOf(v), a: ensureIn(v.Args[0])})
				} else {
					emit(minstr{op: mL2I, d: slotOf(v), a: ensureIn(v.Args[0])})
				}
			case ir.OpCmp:
				if v.Uses == 0 {
					continue
				}
				emit(minstr{op: mCmp, d: slotOf(v), a: ensureIn(v.Args[0]), b: ensureIn(v.Args[1]), cond: v.Cond})
			case ir.OpGetField:
				if v.Uses == 0 {
					continue
				}
				emit(minstr{op: mGetF, d: slotOf(v), imm: v.Aux})
			case ir.OpPutField:
				emit(minstr{op: mPutF, a: ensureIn(v.Args[0]), imm: v.Aux})
			case ir.OpNewArr:
				emit(minstr{op: mNewArr, d: slotOf(v), a: ensureIn(v.Args[0]), kind: v.Kind})
			case ir.OpALoad:
				emit(minstr{op: mALoad, d: slotOf(v), a: ensureIn(v.Args[0]), b: ensureIn(v.Args[1])})
			case ir.OpALoadNoCheck:
				emit(minstr{op: mALoadNC, d: slotOf(v), a: ensureIn(v.Args[0]), b: ensureIn(v.Args[1])})
			case ir.OpAStore:
				emit(minstr{op: mAStore, a: ensureIn(v.Args[0]), b: ensureIn(v.Args[1]), c: ensureIn(v.Args[2])})
			case ir.OpAStoreNoCheck:
				emit(minstr{op: mAStoreNC, a: ensureIn(v.Args[0]), b: ensureIn(v.Args[1]), c: ensureIn(v.Args[2])})
			case ir.OpAStoreRaw:
				emit(minstr{op: mAStoreRaw, a: ensureIn(v.Args[0]), b: ensureIn(v.Args[1]), c: ensureIn(v.Args[2])})
			case ir.OpArrLen:
				if v.Uses == 0 {
					continue
				}
				emit(minstr{op: mArrLen, d: slotOf(v), a: ensureIn(v.Args[0])})
			case ir.OpCall:
				args := make([]int32, len(v.Args))
				for i, a := range v.Args {
					args[i] = ensureIn(a)
				}
				emit(minstr{op: mCall, d: slotOf(v), imm: v.Aux, args: args})
			case ir.OpPrint:
				emit(minstr{op: mPrint, a: ensureIn(v.Args[0]), kind: v.Kind})
			case ir.OpGuard:
				site := deoptSite{pc: v.FS.PC}
				for _, lv := range v.FS.Locals {
					site.locals = append(site.locals, locOf(lv))
				}
				for _, sv := range v.FS.Stack {
					site.stack = append(site.stack, locOf(sv))
				}
				// Frame-state values that live in slots must actually
				// be materialized.
				for _, lv := range v.FS.Locals {
					if lv.Op != ir.OpConst {
						ensureIn(lv)
					}
				}
				for _, sv := range v.FS.Stack {
					if sv.Op != ir.OpConst {
						ensureIn(sv)
					}
				}
				c.deopts = append(c.deopts, site)
				emit(minstr{op: mGuard, a: ensureIn(v.Args[0]), imm: v.Aux, deopt: int32(len(c.deopts) - 1)})
			default:
				panic(fmt.Sprintf("jit: cannot lower %s", v))
			}
		}

		// Phi-resolving parallel moves on each outgoing edge happen in
		// this block when the successor has phis. After critical-edge
		// splitting, any successor with phis has us as its only
		// branch source or we are its unique predecessor edge.
		emitEdgeMoves := func(succ *ir.Block) {
			pi := succ.PredIndex(b)
			if pi < 0 {
				panic("jit: edge without pred entry")
			}
			type mv struct {
				dst, src int32
				isConst  bool
				imm      int64
			}
			var moves []mv
			for _, p := range succ.Values {
				if p.Op != ir.OpPhi {
					continue
				}
				if p.Uses == 0 {
					continue
				}
				arg := p.Args[pi]
				d := slotOf(p)
				if arg.Op == ir.OpConst {
					moves = append(moves, mv{dst: d, isConst: true, imm: arg.Aux})
				} else {
					moves = append(moves, mv{dst: d, src: slotOf(arg)})
				}
			}
			// Sequentialize the parallel move set: repeatedly emit a
			// move whose destination is not a pending source; break
			// cycles through a scratch slot.
			scratch := int32(-1)
			for len(moves) > 0 {
				progress := false
				for i := 0; i < len(moves); i++ {
					m := moves[i]
					blocked := false
					if !m.isConst {
						for j, o := range moves {
							if j != i && !o.isConst && o.src == m.dst {
								blocked = true
								break
							}
						}
					} else {
						for j, o := range moves {
							if j != i && !o.isConst && o.src == m.dst {
								blocked = true
								break
							}
						}
					}
					if blocked {
						continue
					}
					if m.isConst {
						emit(minstr{op: mLdi, d: m.dst, imm: m.imm})
					} else if m.dst != m.src {
						emit(minstr{op: mMov, d: m.dst, a: m.src})
					}
					moves = append(moves[:i], moves[i+1:]...)
					progress = true
					break
				}
				if !progress {
					// Cycle: rotate through scratch.
					if scratch < 0 {
						scratch = next
						next++
					}
					m := moves[0]
					emit(minstr{op: mMov, d: scratch, a: m.src})
					for j := range moves {
						if !moves[j].isConst && moves[j].src == m.src {
							moves[j].src = scratch
						}
					}
				}
			}
		}

		jumpTo := func(t *ir.Block) {
			// Fallthrough when t is next in layout.
			if oi+1 < len(order) && order[oi+1] == t {
				return
			}
			idx := emit(minstr{op: mJmp})
			patches = append(patches, patch{ins: idx, target: t, tblIdx: -1})
		}

		switch b.Kind {
		case ir.BlockPlain:
			emitEdgeMoves(b.Succs[0])
			jumpTo(b.Succs[0])
		case ir.BlockIf:
			// After critical-edge splitting, successors with phis are
			// single-pred blocks, so edge moves live there; but a succ
			// without phis may still be shared. Emit branch; edge
			// moves for if-successors were pushed into split blocks.
			condReg := ensureIn(b.Ctrl)
			idx := emit(minstr{op: mBr, a: condReg})
			patches = append(patches, patch{ins: idx, target: b.Succs[0], tblIdx: -1})
			emitEdgeMoves(b.Succs[1])
			jumpTo(b.Succs[1])
			// Succs[0] cannot carry phi moves (they would need a home
			// on the edge) — SplitCriticalEdges guarantees this.
			for _, p := range b.Succs[0].Values {
				if p.Op == ir.OpPhi {
					panic("jit: unsplit branch edge with phis")
				}
			}
		case ir.BlockSwitch:
			if bugSet.Has("oj-cg-switch-dense") && len(b.Cases) >= 24 {
				crashf("Code Generation", "dense switch lowering: %d entries", len(b.Cases))
			}
			tagReg := ensureIn(b.Ctrl)
			tbl := &mswitch{}
			idx := emit(minstr{op: mSwitch, a: tagReg, table: tbl})
			for _, cse := range b.Cases {
				tbl.vals = append(tbl.vals, cse.Value)
				tbl.targets = append(tbl.targets, -1)
				patches = append(patches, patch{ins: idx, target: b.Succs[cse.Succ], tblIdx: len(tbl.targets) - 1})
			}
			tbl.deflt = -1
			patches = append(patches, patch{ins: idx, target: b.Succs[b.DefaultSucc], tblIdx: -2})
			for _, s := range b.Succs {
				for _, p := range s.Values {
					if p.Op == ir.OpPhi {
						panic("jit: unsplit switch edge with phis")
					}
				}
			}
		case ir.BlockRet:
			emit(minstr{op: mRet, a: ensureIn(b.Ctrl)})
		case ir.BlockRetVoid:
			emit(minstr{op: mRetVoid})
		}
	}

	// Patch jump targets.
	for _, p := range patches {
		t := blockStart[p.target.ID]
		in := &c.ins[p.ins]
		switch {
		case p.tblIdx == -1:
			in.imm = int64(t)
		case p.tblIdx == -2:
			in.table.deflt = t
		default:
			in.table.targets[p.tblIdx] = t
		}
	}
	c.frameSize = int(next)

	if execBugs.aliased {
		// Apply the register-allocator aliasing defect by rewriting
		// every use of slot aliasB to aliasA.
		for i := range c.ins {
			in := &c.ins[i]
			for _, rp := range []*int32{&in.d, &in.a, &in.b, &in.c} {
				if *rp == execBugs.aliasB {
					*rp = execBugs.aliasA
				}
			}
			for j := range in.args {
				if in.args[j] == execBugs.aliasB {
					in.args[j] = execBugs.aliasA
				}
			}
		}
		for i := range c.deopts {
			for j := range c.deopts[i].locals {
				l := &c.deopts[i].locals[j]
				if !l.isConst && int32(l.val) == execBugs.aliasB {
					l.val = int64(execBugs.aliasA)
				}
			}
		}
	}
	return c
}
