package jit

import (
	"fmt"
	"testing"

	"artemis/internal/vm"
)

// osrReusePolicy is a minimal custom policy exercising the
// ActUseCompiled back-edge contract: the first hot back edge of a loop
// requests OSR compilation; every later one asks the VM to enter the
// already-cached OSR entry without a compile request.
type osrReusePolicy struct {
	threshold int64
	compiled  map[string]bool // "method/loopID" -> OSR requested
}

func (p *osrReusePolicy) OnEntry(st *vm.MethodState) vm.Decision {
	return vm.Decision{Action: vm.ActInterpret}
}

func (p *osrReusePolicy) OnBackEdge(st *vm.MethodState, loopID int) vm.Decision {
	if st.Counters.Backedge[loopID] < p.threshold {
		return vm.Decision{Action: vm.ActInterpret}
	}
	key := fmt.Sprintf("%s/%d", st.Name, loopID)
	if p.compiled[key] {
		return vm.Decision{Action: vm.ActUseCompiled, Tier: 2}
	}
	p.compiled[key] = true
	return vm.Decision{Action: vm.ActCompile, Tier: 2}
}

// TestOSRUseCompiledEntersCachedCode pins the back-edge dispatch
// contract: a policy answering ActUseCompiled must enter the cached
// OSR entry. Before the fix the interpreter only acted on ActCompile
// and silently kept interpreting, so a custom policy could never reuse
// an OSR entry it had already paid to compile — here that showed as a
// single OSR entry (and the second loop execution interpreted) instead
// of two.
func TestOSRUseCompiledEntersCachedCode(t *testing.T) {
	bp := compileSrc(t, `class T {
        int acc = 0;
        void g() { for (int i = 0; i < 200; i++) { acc += i; } }
        void main() { g(); g(); print(acc); }
    }`)
	// NoSpeculation keeps the loop-exit branch unguarded: with
	// speculation on, the profile-trained exit guard fails at i==200,
	// deopts, and (correctly) invalidates the cached OSR entry — which
	// would mask the dispatch behaviour this test pins.
	res := vm.Run(vm.Config{
		JIT:           New(Options{MaxTier: 2}),
		Policy:        &osrReusePolicy{threshold: 100, compiled: map[string]bool{}},
		NoSpeculation: true,
	}, bp)
	if res.Output.Term != vm.TermNormal {
		t.Fatalf("run: %v %q", res.Output.Term, res.Output.Detail)
	}
	interp := vm.Run(vm.Config{}, bp)
	if !res.Output.Equivalent(interp.Output) {
		t.Fatalf("OSR run diverged from interpreter: %v vs %v", res.Output.Lines, interp.Output.Lines)
	}
	// One OSR compilation (first call), two OSR entries (the second
	// call re-enters the cached code via ActUseCompiled).
	if res.Compilations != 1 {
		t.Errorf("compilations = %d, want 1 (second call must reuse, not recompile)", res.Compilations)
	}
	if res.OSREntries != 2 {
		t.Errorf("OSR entries = %d, want 2 (ActUseCompiled must enter the cached entry)", res.OSREntries)
	}
}

// TestCounterPolicyNoRedundantOSRRecompiles pins CounterPolicy's
// back-edge behaviour and the exact compilation counts of a two-call
// hot-loop shape: the cached-OSR branch answers ActUseCompiled (reuse)
// rather than re-requesting compilation on every hot back edge.
func TestCounterPolicyNoRedundantOSRRecompiles(t *testing.T) {
	bp := compileSrc(t, `class T {
        int acc = 0;
        void g() { for (int i = 0; i < 800; i++) { acc += i; } }
        void main() { g(); g(); print(acc); }
    }`)
	res := vm.Run(vm.Config{
		JIT:             New(Options{MaxTier: 2}),
		EntryThresholds: []int64{350, 1400},
		OSRThresholds:   []int64{450, 1800},
		CollectStats:    true,
		NoSpeculation:   true,
	}, bp)
	if res.Output.Term != vm.TermNormal {
		t.Fatalf("run: %v %q", res.Output.Term, res.Output.Detail)
	}
	interp := vm.Run(vm.Config{}, bp)
	if !res.Output.Equivalent(interp.Output) {
		t.Fatalf("diverged from interpreter: %v vs %v", res.Output.Lines, interp.Output.Lines)
	}
	st := res.Stats
	// Call one interprets to back edge 450, OSR-compiles at tier 1 and
	// finishes compiled. Call two interprets to its first back edge,
	// finds the cached tier-1 entry, and re-enters it via
	// ActUseCompiled — one compilation total, two OSR entries. Before
	// the CounterPolicy fix the cached branch answered ActCompile, so a
	// dispatch change here means redundant compile requests are back.
	if st.OSRCompilations != 1 {
		t.Errorf("OSR compilations = %d, want 1 (cached OSR entry recompiled)", st.OSRCompilations)
	}
	if res.OSREntries != 2 {
		t.Errorf("OSR entries = %d, want 2 (cached entry not reused on second call)", res.OSREntries)
	}
	// Pin the tier counts exactly so any policy/dispatch change that
	// alters compilation behaviour is caught, not just gross breakage.
	want := []int64{1}
	if len(st.CompilationsByTier) != len(want) {
		t.Fatalf("CompilationsByTier = %v, want %v", st.CompilationsByTier, want)
	}
	for i := range want {
		if st.CompilationsByTier[i] != want[i] {
			t.Fatalf("CompilationsByTier = %v, want %v", st.CompilationsByTier, want)
		}
	}
}
