package jit

import (
	"fmt"

	"artemis/internal/vm"
)

// Run executes compiled code against the VM's runtime environment,
// implementing vm.CompiledCode. The "machine" is a register machine
// whose frame is a flat slice of int64 slots; it talks to the VM for
// every heap, field, call, and print operation, like JIT-compiled
// code calling runtime stubs.
func (c *Code) Run(env vm.Env, args []int64) vm.ExecResult {
	frame := make([]int64, c.frameSize)
	unregister := env.RegisterRoots(func(yield func(int64)) {
		for _, v := range frame {
			yield(v)
		}
	})
	defer unregister()

	var backedges int64
	pc := 0
	instrs := int64(0)

	// Compiled code runs faster than interpretation: charge 1 abstract
	// step per 8 machine instructions, batched. The hs-perf-osr-storm
	// defect instead re-enters the runtime constantly, making compiled
	// code far more expensive than interpretation — the paper's
	// "performance issue" bug class.
	stepCost := int64(8)
	if c.execBugs.perfStorm {
		stepCost = 640
	}
	charge := func() *vm.Unwind {
		instrs++
		if instrs&63 == 0 {
			return env.Step(stepCost)
		}
		return nil
	}

	for pc >= 0 && pc < len(c.ins) {
		if uw := charge(); uw != nil {
			return vm.ExecResult{Kind: vm.ExecUnwind, Unwind: uw, Backedges: backedges}
		}
		in := &c.ins[pc]
		switch in.op {
		case mNop:
		case mLdi:
			frame[in.d] = in.imm
		case mLdArg:
			frame[in.d] = args[in.imm]
		case mMov:
			frame[in.d] = frame[in.a]
		case mBin:
			a, b := frame[in.a], frame[in.b]
			if in.bug32Mask {
				// hs-cg-ushr-wide: long >>> with a 32-bit count mask.
				frame[in.d] = int64(uint64(a) >> (uint64(b) & 31))
				break
			}
			v, err := vm.EvalBinary(in.bop, in.wide, a, b)
			if err != nil {
				return c.unwindErr(env, err, backedges)
			}
			frame[in.d] = v
		case mNeg:
			if in.wide {
				frame[in.d] = -frame[in.a]
			} else {
				frame[in.d] = int64(int32(-frame[in.a]))
			}
		case mBitNot:
			if in.wide {
				frame[in.d] = ^frame[in.a]
			} else {
				frame[in.d] = int64(int32(^frame[in.a]))
			}
		case mL2I:
			frame[in.d] = int64(int32(frame[in.a]))
		case mCmp:
			if in.cond.Eval(frame[in.a], frame[in.b]) {
				frame[in.d] = 1
			} else {
				frame[in.d] = 0
			}
		case mGetF:
			frame[in.d] = env.GetField(int(in.imm))
		case mPutF:
			env.SetField(int(in.imm), frame[in.a])
		case mNewArr:
			h, err := env.NewArray(in.kind, int64(int32(frame[in.a])))
			if err != nil {
				return c.unwindErr(env, err, backedges)
			}
			frame[in.d] = h
		case mALoad:
			v, err := env.ArrayLoad(frame[in.a], int64(int32(frame[in.b])))
			if err != nil {
				return c.unwindErr(env, err, backedges)
			}
			frame[in.d] = v
		case mALoadNC:
			// Bounds-check-eliminated load: no check. An in-range
			// index (which honest BCE guarantees) behaves identically;
			// the buggy path can observe the canary word.
			v := rawLoad(env, frame[in.a], int64(int32(frame[in.b])))
			frame[in.d] = v
		case mAStore:
			ref, idx, val := frame[in.a], int64(int32(frame[in.b])), frame[in.c]
			if err := env.ArrayStore(ref, idx, val); err != nil {
				return c.unwindErr(env, err, backedges)
			}
			if c.execBugs.gcBarrier || c.execBugs.gcClear {
				c.maybeCorrupt(env, ref, idx)
			}
		case mAStoreNC, mAStoreRaw:
			ref, idx, val := frame[in.a], int64(int32(frame[in.b])), frame[in.c]
			env.ArrayStoreRaw(ref, idx, val)
			if c.execBugs.gcBarrier || c.execBugs.gcClear {
				c.maybeCorrupt(env, ref, idx)
			}
		case mArrLen:
			n, err := env.ArrayLen(frame[in.a])
			if err != nil {
				return c.unwindErr(env, err, backedges)
			}
			frame[in.d] = n
		case mCall:
			callArgs := make([]int64, len(in.args))
			for i, r := range in.args {
				callArgs[i] = frame[r]
			}
			ret, uw := env.CallMethod(int(in.imm), callArgs)
			if uw != nil {
				return vm.ExecResult{Kind: vm.ExecUnwind, Unwind: uw, Backedges: backedges}
			}
			frame[in.d] = ret
		case mPrint:
			env.Print(in.kind, frame[in.a])
		case mJmp:
			if int(in.imm) <= pc {
				backedges++
			}
			pc = int(in.imm)
			continue
		case mBr:
			if frame[in.a] != 0 {
				if int(in.imm) <= pc {
					backedges++
				}
				pc = int(in.imm)
				continue
			}
		case mSwitch:
			v := int64(int32(frame[in.a]))
			t := in.table.deflt
			for i, val := range in.table.vals {
				if val == v {
					t = in.table.targets[i]
					break
				}
			}
			if t <= pc {
				backedges++
			}
			pc = t
			continue
		case mGuard:
			if frame[in.a] != in.imm {
				site := &c.deopts[in.deopt]
				if c.execBugs.guardStackCrash && len(site.stack) >= 3 {
					// hs-exec-guard-stack: the trap stub faults.
					panic(fmt.Sprintf("SIGSEGV: uncommon trap stub, method %s, deopt pc %d", c.name, site.pc))
				}
				d := &vm.Deopt{
					PC:     site.pc,
					Reason: fmt.Sprintf("speculation failed in %s at bytecode %d", c.name, site.pc),
				}
				for _, l := range site.locals {
					d.Locals = append(d.Locals, readLoc(frame, l))
				}
				for _, l := range site.stack {
					d.Stack = append(d.Stack, readLoc(frame, l))
				}
				return vm.ExecResult{Kind: vm.ExecDeopt, Deopt: d, Backedges: backedges}
			}
		case mRet:
			return vm.ExecResult{Kind: vm.ExecReturn, Value: frame[in.a], Backedges: backedges}
		case mRetVoid:
			return vm.ExecResult{Kind: vm.ExecReturn, Backedges: backedges}
		default:
			panic(fmt.Sprintf("jit: machine op %d", in.op))
		}
		pc++
	}
	panic(fmt.Sprintf("SIGSEGV: fell off compiled code of %s (pc %d)", c.name, pc))
}

func (c *Code) unwindErr(env vm.Env, err *vm.RuntimeError, backedges int64) vm.ExecResult {
	e := *err
	e.Msg = e.Msg + " (in " + c.name + ")"
	return vm.ExecResult{Kind: vm.ExecUnwind, Unwind: &vm.Unwind{Err: &e}, Backedges: backedges}
}

func readLoc(frame []int64, l loc) int64 {
	if l.isConst {
		return l.val
	}
	return frame[l.val]
}

// rawLoad performs an unchecked array read. Indexes inside the object
// (including the canary word) read whatever is there; anything else is
// a compiled-code fault.
func rawLoad(env vm.Env, ref, idx int64) int64 {
	n, err := env.ArrayLen(ref)
	if err != nil {
		panic("SIGSEGV: unchecked load from invalid array")
	}
	if idx < 0 || idx > n {
		panic(fmt.Sprintf("SIGSEGV: unchecked load at %d (length %d)", idx, n))
	}
	if idx == n {
		// Reading the canary word through the eliminated check.
		v, _ := env.ArrayLoad(ref, n-1)
		return v ^ 0x5ca1ab1e
	}
	v, err2 := env.ArrayLoad(ref, idx)
	if err2 != nil {
		panic("SIGSEGV: unchecked load raced bounds")
	}
	return v
}

// maybeCorrupt applies the heap-corrupting store defects: oj-gc-barrier
// smashes the canary of 4-aligned arrays on stores to element 0;
// art-gc-clear does it on stores to the last element. The damage is
// silent here and discovered later by the garbage collector.
func (c *Code) maybeCorrupt(env vm.Env, ref, idx int64) {
	n, err := env.ArrayLen(ref)
	if err != nil || n < 4 || n%4 != 0 {
		return
	}
	if c.execBugs.gcBarrier && idx == 0 {
		env.ArrayStoreRaw(ref, n, 0x0badbeef)
	}
	if c.execBugs.gcClear && idx == n-1 {
		env.ArrayStoreRaw(ref, n, 0x0badbeef)
	}
}
