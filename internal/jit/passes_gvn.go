package jit

import (
	"fmt"

	"artemis/internal/bugs"
	"artemis/internal/jit/ir"
)

// gvn performs dominator-scoped global value numbering over pure
// values. Two injected defects live here:
//
//   - hs-gvn-across-store (mis-compilation): field loads are keyed by
//     field index only, ignoring intervening stores and calls, so a
//     stale load replaces a fresh one.
//   - hs-gvn-table (compile-time crash): a fictitious value-number
//     table capacity assert on very large methods.
//
// It returns the number of redundant values eliminated.
func gvn(f *ir.Func, bugSet bugs.Set) int {
	idom := f.Dominators()
	order := f.DomPreorder(idom)

	buggyLoads := bugSet.Has("hs-gvn-across-store")
	tableLimit := -1
	if bugSet.Has("hs-gvn-table") {
		tableLimit = 640
	}

	type entry struct {
		v     *ir.Value
		block *ir.Block
	}
	table := map[string][]entry{}
	repl := map[*ir.Value]*ir.Value{}
	size := 0

	keyOf := func(v *ir.Value) (string, bool) {
		switch {
		case v.Op == ir.OpConst:
			return fmt.Sprintf("c|%d", v.Aux), true
		case v.Op == ir.OpCmp:
			return fmt.Sprintf("cmp|%d|%t|%d|%d", v.Cond, v.Wide, id(repl, v.Args[0]), id(repl, v.Args[1])), true
		case v.Op.IsBinArith() && v.Pure():
			a0, a1 := id(repl, v.Args[0]), id(repl, v.Args[1])
			// Normalize commutative operand order.
			switch v.Op {
			case ir.OpAdd, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor:
				if a0 > a1 {
					a0, a1 = a1, a0
				}
			}
			return fmt.Sprintf("b|%d|%t|%d|%d", v.Op, v.Wide, a0, a1), true
		case v.Op == ir.OpNeg || v.Op == ir.OpBitNot || v.Op == ir.OpL2I:
			return fmt.Sprintf("u|%d|%t|%d", v.Op, v.Wide, id(repl, v.Args[0])), true
		case v.Op == ir.OpArrLen:
			return fmt.Sprintf("len|%d", id(repl, v.Args[0])), true
		case buggyLoads && v.Op == ir.OpGetField:
			// BUG: the key omits any notion of memory state, merging
			// loads across stores along the dominator path.
			return fmt.Sprintf("fld|%d", v.Aux), true
		}
		return "", false
	}

	for _, b := range order {
		for _, v := range b.Values {
			key, ok := keyOf(v)
			if !ok {
				continue
			}
			found := false
			for _, e := range table[key] {
				if ir.Dominates(idom, e.block, b) {
					repl[v] = e.v
					found = true
					break
				}
			}
			if !found {
				table[key] = append(table[key], entry{v, b})
				size++
				if tableLimit > 0 && size > tableLimit {
					crashf("Global Value Numbering, C2",
						"value table overflow (%d entries)", size)
				}
			}
		}
	}
	f.ReplaceAll(repl)
	f.RemoveDead()
	return len(repl)
}

// id resolves replacement chains and returns a stable value id for
// hashing.
func id(repl map[*ir.Value]*ir.Value, v *ir.Value) ir.ID {
	for {
		w, ok := repl[v]
		if !ok {
			return v.ID
		}
		v = w
	}
}
