package ir

// ReversePostorder returns the blocks reachable from Entry in reverse
// postorder.
func (f *Func) ReversePostorder() []*Block {
	seen := make([]bool, f.nextBlockID)
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.ID] = true
		for _, s := range b.Succs {
			if !seen[s.ID] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// RemoveUnreachable drops blocks not reachable from Entry and fixes
// pred lists (and phis) accordingly.
func (f *Func) RemoveUnreachable() {
	rpo := f.ReversePostorder()
	reach := make([]bool, f.nextBlockID)
	for _, b := range rpo {
		reach[b.ID] = true
	}
	for _, b := range rpo {
		// Remove unreachable preds, adjusting phi args.
		for i := 0; i < len(b.Preds); {
			if !reach[b.Preds[i].ID] {
				b.removePred(i)
			} else {
				i++
			}
		}
	}
	f.Blocks = rpo
}

// RemovePredEdge removes the i-th predecessor edge bookkeeping,
// including the corresponding phi arguments (the pred's succ list is
// the caller's responsibility).
func (b *Block) RemovePredEdge(i int) { b.removePred(i) }

// removePred removes the i-th predecessor edge bookkeeping (the pred's
// succ list is left to the caller — used only for unreachable preds).
func (b *Block) removePred(i int) {
	b.Preds = append(b.Preds[:i], b.Preds[i+1:]...)
	for _, v := range b.Values {
		if v.Op == OpPhi {
			v.Args = append(v.Args[:i], v.Args[i+1:]...)
		}
	}
}

// Dominators computes immediate dominators (Cooper-Harvey-Kennedy)
// over reachable blocks. Returns idom indexed by block ID (entry maps
// to itself; unreachable blocks map to nil).
func (f *Func) Dominators() []*Block {
	rpo := f.ReversePostorder()
	index := make([]int, f.nextBlockID)
	for i := range index {
		index[i] = -1
	}
	for i, b := range rpo {
		index[b.ID] = i
	}
	idom := make([]*Block, f.nextBlockID)
	idom[f.Entry.ID] = f.Entry

	intersect := func(a, b *Block) *Block {
		for a != b {
			for index[a.ID] > index[b.ID] {
				a = idom[a.ID]
			}
			for index[b.ID] > index[a.ID] {
				b = idom[b.ID]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if b == f.Entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds {
				if idom[p.ID] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[b.ID] != newIdom {
				idom[b.ID] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b under idom.
func Dominates(idom []*Block, a, b *Block) bool {
	for {
		if a == b {
			return true
		}
		d := idom[b.ID]
		if d == nil || d == b {
			return false
		}
		b = d
	}
}

// ComputeLoops finds natural loops (via dominator back edges), assigns
// Block.LoopDepth / Block.LoopID, and estimates block frequencies
// (10x per loop level, the classic static heuristic — these estimates
// feed global code motion, where the paper's flagship GCM bug
// JDK-8288975 lives).
func (f *Func) ComputeLoops() {
	f.RemoveUnreachable()
	idom := f.Dominators()
	f.Loops = nil
	for _, b := range f.Blocks {
		b.LoopDepth = 0
		b.LoopID = -1
	}

	// Back edge b -> h where h dominates b.
	for _, b := range f.Blocks {
		for _, h := range b.Succs {
			if !Dominates(idom, h, b) {
				continue
			}
			// Collect the natural loop of (b, h): h plus all blocks
			// reaching b without passing h.
			var loop *Loop
			for _, l := range f.Loops {
				if l.Header == h {
					loop = l
					break
				}
			}
			if loop == nil {
				loop = &Loop{ID: len(f.Loops), Header: h, Blocks: map[int]bool{h.ID: true}, Parent: -1}
				f.Loops = append(f.Loops, loop)
			}
			work := []*Block{b}
			for len(work) > 0 {
				x := work[len(work)-1]
				work = work[:len(work)-1]
				if loop.Blocks[x.ID] {
					continue
				}
				loop.Blocks[x.ID] = true
				for _, p := range x.Preds {
					work = append(work, p)
				}
			}
		}
	}

	// Nesting: loop A is inside B if A's header is in B's block set
	// (and A != B). Depth = number of enclosing loops + 1.
	for _, l := range f.Loops {
		for _, m := range f.Loops {
			if l == m || !m.Blocks[l.Header.ID] {
				continue // m does not enclose l
			}
			// Among enclosing loops pick the innermost (smallest).
			if l.Parent == -1 || len(m.Blocks) < len(f.Loops[l.Parent].Blocks) {
				l.Parent = m.ID
			}
		}
	}
	for _, l := range f.Loops {
		d := 1
		p := l.Parent
		for p != -1 {
			d++
			p = f.Loops[p].Parent
		}
		l.Depth = d
	}

	// Per block: innermost containing loop.
	for _, b := range f.Blocks {
		for _, l := range f.Loops {
			if l.Blocks[b.ID] && l.Depth > b.LoopDepth {
				b.LoopDepth = l.Depth
				b.LoopID = l.ID
			}
		}
		b.Freq = 1
		for i := 0; i < b.LoopDepth; i++ {
			b.Freq *= 10
		}
	}
}

// SplitCriticalEdges inserts empty blocks on edges from multi-successor
// blocks to blocks that need phi-resolving moves, so those moves have a
// home during lowering. Edges into any block containing phis are split
// (not just classic critical edges): a speculation-pruned join can
// keep its phis with a single remaining predecessor.
func (f *Func) SplitCriticalEdges() {
	hasPhis := func(b *Block) bool {
		for _, v := range b.Values {
			if v.Op == OpPhi {
				return true
			}
		}
		return false
	}
	for _, b := range append([]*Block(nil), f.Blocks...) {
		if len(b.Succs) < 2 {
			continue
		}
		for si, s := range b.Succs {
			if len(s.Preds) < 2 && !hasPhis(s) {
				continue
			}
			mid := f.NewBlock()
			mid.Kind = BlockPlain
			mid.Succs = []*Block{s}
			mid.Preds = []*Block{b}
			b.Succs[si] = mid
			// Replace b with mid in s.Preds (first occurrence that is b).
			for pi, p := range s.Preds {
				if p == b {
					s.Preds[pi] = mid
					break
				}
			}
		}
	}
}
