package ir

import "testing"

// buildDiamond constructs:
//
//	entry -> a -> {b, c} -> d(ret)
func buildDiamond() (*Func, *Block, *Block, *Block, *Block) {
	f := NewFunc("t", 0, 0, 0, true, -1)
	a := f.NewBlock()
	b := f.NewBlock()
	c := f.NewBlock()
	d := f.NewBlock()
	f.Entry = a
	cond := f.NewValue(a, OpConst)
	cond.Aux = 1
	a.Kind = BlockIf
	a.Ctrl = cond
	a.AddEdge(b)
	a.AddEdge(c)
	b.Kind = BlockPlain
	b.AddEdge(d)
	c.Kind = BlockPlain
	c.AddEdge(d)
	d.Kind = BlockRetVoid
	return f, a, b, c, d
}

func TestDominatorsDiamond(t *testing.T) {
	f, a, b, c, d := buildDiamond()
	idom := f.Dominators()
	if idom[b.ID] != a || idom[c.ID] != a || idom[d.ID] != a {
		t.Errorf("diamond idoms wrong: b<-%v c<-%v d<-%v", idom[b.ID], idom[c.ID], idom[d.ID])
	}
	if !Dominates(idom, a, d) {
		t.Error("a should dominate d")
	}
	if Dominates(idom, b, d) {
		t.Error("b must not dominate d")
	}
}

func TestLoopsAndFrequencies(t *testing.T) {
	// entry -> head <-> body ; head -> exit
	f := NewFunc("t", 0, 0, 0, true, -1)
	entry := f.NewBlock()
	head := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()
	f.Entry = entry
	entry.Kind = BlockPlain
	entry.AddEdge(head)
	cond := f.NewValue(head, OpConst)
	head.Kind = BlockIf
	head.Ctrl = cond
	head.AddEdge(exit)
	head.AddEdge(body)
	body.Kind = BlockPlain
	body.AddEdge(head)
	exit.Kind = BlockRetVoid

	f.ComputeLoops()
	if len(f.Loops) != 1 {
		t.Fatalf("loops = %d", len(f.Loops))
	}
	l := f.Loops[0]
	if l.Header != head || !l.Blocks[body.ID] || l.Blocks[exit.ID] {
		t.Errorf("loop membership wrong: %+v", l)
	}
	if head.LoopDepth != 1 || body.LoopDepth != 1 || exit.LoopDepth != 0 {
		t.Errorf("depths: head=%d body=%d exit=%d", head.LoopDepth, body.LoopDepth, exit.LoopDepth)
	}
	if body.Freq <= entry.Freq {
		t.Error("loop body should have higher frequency estimate")
	}
}

func TestRemoveUnreachable(t *testing.T) {
	f, a, b, _, d := buildDiamond()
	// Cut the a->c edge, making c unreachable.
	a.Kind = BlockPlain
	a.Succs = a.Succs[:1]
	f.RemoveUnreachable()
	for _, blk := range f.Blocks {
		if blk != a && blk != b && blk != d {
			t.Errorf("unreachable block %v survived", blk)
		}
	}
	if len(d.Preds) != 1 {
		t.Errorf("d preds = %d after pruning", len(d.Preds))
	}
}

func TestPhiArgRemovalOnPrune(t *testing.T) {
	f, a, b, c, d := buildDiamond()
	x := f.NewValue(b, OpConst)
	y := f.NewValue(c, OpConst)
	phi := f.NewValue(d, OpPhi, x, y)
	_ = phi
	a.Kind = BlockPlain
	a.Succs = a.Succs[:1] // drop edge to c
	f.RemoveUnreachable()
	if len(phi.Args) != 1 || phi.Args[0] != x {
		t.Errorf("phi args not pruned: %v", phi.Args)
	}
}

func TestComputeUsesAndRemoveDead(t *testing.T) {
	f, a, _, _, d := buildDiamond()
	dead := f.NewValue(a, OpConst)
	dead.Aux = 42
	live := f.NewValue(a, OpConst)
	live.Aux = 7
	d.Kind = BlockRet
	d.Ctrl = live
	f.ComputeUses()
	if live.Uses != 1 || dead.Uses != 0 {
		t.Errorf("uses: live=%d dead=%d", live.Uses, dead.Uses)
	}
	f.RemoveDead()
	for _, v := range a.Values {
		if v == dead {
			t.Error("dead const survived DCE")
		}
	}
	found := false
	for _, v := range a.Values {
		if v == live {
			found = true
		}
	}
	if !found {
		t.Error("live const removed by DCE")
	}
}

func TestEffectfulNeverRemoved(t *testing.T) {
	f, a, _, _, _ := buildDiamond()
	val := f.NewValue(a, OpConst)
	store := f.NewValue(a, OpPutField, val)
	store.Aux = 0
	f.RemoveDead()
	present := false
	for _, v := range a.Values {
		if v == store {
			present = true
		}
	}
	if !present {
		t.Error("effectful store removed")
	}
}

func TestSplitCriticalEdges(t *testing.T) {
	f, _, b, c, d := buildDiamond()
	x := f.NewValue(b, OpConst)
	y := f.NewValue(c, OpConst)
	f.NewValue(d, OpPhi, x, y)
	f.SplitCriticalEdges()
	// a has two succs; both b and c are single-pred so no split
	// needed there; d has phis but its preds are single-succ blocks.
	for _, blk := range f.Blocks {
		if len(blk.Succs) >= 2 {
			for _, s := range blk.Succs {
				hasPhi := false
				for _, v := range s.Values {
					if v.Op == OpPhi {
						hasPhi = true
					}
				}
				if hasPhi {
					t.Errorf("edge %v->%v still carries phis", blk, s)
				}
			}
		}
	}
}

func TestTrappingClassification(t *testing.T) {
	f := NewFunc("t", 0, 0, 0, true, -1)
	b := f.NewBlock()
	f.Entry = b
	b.Kind = BlockRetVoid
	x := f.NewValue(b, OpConst)
	x.Aux = 10
	zero := f.NewValue(b, OpConst)
	zero.Aux = 0
	three := f.NewValue(b, OpConst)
	three.Aux = 3
	v := f.NewValue(b, OpDiv, x, three)
	if v.Trapping() {
		t.Error("division by non-zero constant should not trap")
	}
	w := f.NewValue(b, OpDiv, x, zero)
	if !w.Trapping() {
		t.Error("division by zero constant must trap")
	}
	u := f.NewValue(b, OpDiv, x, v)
	if !u.Trapping() {
		t.Error("division by non-constant must be treated as trapping")
	}
	add := f.NewValue(b, OpAdd, x, three)
	if add.Effectful() {
		t.Error("add is pure")
	}
	call := f.NewValue(b, OpCall)
	if !call.Effectful() {
		t.Error("call is effectful")
	}
}

func TestInsertAfter(t *testing.T) {
	f := NewFunc("t", 0, 0, 0, true, -1)
	b := f.NewBlock()
	f.Entry = b
	b.Kind = BlockRetVoid
	v1 := f.NewValue(b, OpConst)
	v2 := f.NewValue(b, OpConst)
	v3 := f.NewValue(b, OpConst) // appended last
	InsertAfter(v3, v1)
	want := []*Value{v1, v3, v2}
	for i, v := range b.Values {
		if v != want[i] {
			t.Fatalf("order wrong at %d: %v", i, b.Values)
		}
	}
}
