// Package ir defines the SSA intermediate representation of the
// optimizing JIT tier: values in basic blocks with phis, an ordered
// effect list per block (memory operations keep their relative order),
// explicit loop nesting, and frame states on speculative guards so
// compiled code can deoptimize back into the interpreter.
package ir

import (
	"fmt"
	"strings"

	"artemis/internal/bytecode"
	"artemis/internal/lang/ast"
)

// ID identifies a value within a function.
type ID int32

// Op enumerates IR operations.
type Op uint8

const (
	OpInvalid Op = iota

	OpConst // Aux = constant value
	OpParam // Aux = local slot (entry parameters; for OSR entries every slot)
	OpPhi   // Args parallel the block's Preds

	// Pure arithmetic (Wide selects 64-bit semantics).
	OpAdd
	OpSub
	OpMul
	OpDiv // trapping: pinned to the effect list unless divisor is a non-zero constant
	OpRem // trapping, like OpDiv
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpUshr
	OpNeg
	OpBitNot
	OpL2I
	OpCmp // Cond; yields 0/1

	OpArrLen // pure: array lengths are immutable

	// Effectful operations (order within a block is semantic).
	OpGetField // Aux = field index; a load — ordered, removable by value propagation
	OpPutField // Aux = field index; Args[0] = value
	OpNewArr   // Kind = element kind; Args[0] = length
	OpALoad    // Args = ref, idx; bounds-checked
	OpAStore   // Args = ref, idx, val; bounds-checked
	// Unchecked variants produced by bounds-check elimination.
	OpALoadNoCheck
	OpAStoreNoCheck
	// OpAStoreRaw is only produced by injected compiler bugs: it can
	// write one past the end (the heap canary), modeling miscompiled
	// stores that corrupt the heap.
	OpAStoreRaw
	OpCall  // Aux = method index; Args = call arguments
	OpPrint // Kind = value kind; Args[0] = value

	// OpGuard is an uncommon trap: Args[0] must equal Aux (0 or 1),
	// otherwise execution deoptimizes using the attached FrameState.
	OpGuard
)

var opNames = [...]string{
	OpInvalid: "invalid", OpConst: "const", OpParam: "param", OpPhi: "phi",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpUshr: "ushr", OpNeg: "neg", OpBitNot: "bitnot", OpL2I: "l2i",
	OpCmp: "cmp", OpArrLen: "arrlen",
	OpGetField: "getfield", OpPutField: "putfield", OpNewArr: "newarr",
	OpALoad: "aload", OpAStore: "astore",
	OpALoadNoCheck: "aload.nc", OpAStoreNoCheck: "astore.nc", OpAStoreRaw: "astore.raw",
	OpCall: "call", OpPrint: "print", OpGuard: "guard",
}

func (op Op) String() string { return opNames[op] }

// BinOpFor maps a bytecode arithmetic opcode to the IR op.
func BinOpFor(op bytecode.Op) Op {
	switch op {
	case bytecode.OpAdd:
		return OpAdd
	case bytecode.OpSub:
		return OpSub
	case bytecode.OpMul:
		return OpMul
	case bytecode.OpDiv:
		return OpDiv
	case bytecode.OpRem:
		return OpRem
	case bytecode.OpAnd:
		return OpAnd
	case bytecode.OpOr:
		return OpOr
	case bytecode.OpXor:
		return OpXor
	case bytecode.OpShl:
		return OpShl
	case bytecode.OpShr:
		return OpShr
	case bytecode.OpUshr:
		return OpUshr
	}
	panic(fmt.Sprintf("ir: not a binary bytecode op: %v", op))
}

// BytecodeOpFor maps an IR arithmetic op back to bytecode (for shared
// constant folding via vm.EvalBinary).
func (op Op) BytecodeOpFor() bytecode.Op {
	switch op {
	case OpAdd:
		return bytecode.OpAdd
	case OpSub:
		return bytecode.OpSub
	case OpMul:
		return bytecode.OpMul
	case OpDiv:
		return bytecode.OpDiv
	case OpRem:
		return bytecode.OpRem
	case OpAnd:
		return bytecode.OpAnd
	case OpOr:
		return bytecode.OpOr
	case OpXor:
		return bytecode.OpXor
	case OpShl:
		return bytecode.OpShl
	case OpShr:
		return bytecode.OpShr
	case OpUshr:
		return bytecode.OpUshr
	}
	panic(fmt.Sprintf("ir: %v is not arithmetic", op))
}

// IsBinArith reports whether op is a two-operand arithmetic op.
func (op Op) IsBinArith() bool { return op >= OpAdd && op <= OpUshr }

// FrameState captures the interpreter frame to reconstruct when a
// guard fails: the bytecode pc plus the SSA values of every local slot
// and operand-stack word at that point.
type FrameState struct {
	PC     int
	Locals []*Value
	Stack  []*Value
}

// Value is one SSA value.
type Value struct {
	ID    ID
	Op    Op
	Wide  bool
	Cond  bytecode.Cond
	Aux   int64
	Kind  ast.Kind
	Args  []*Value
	Block *Block
	FS    *FrameState // OpGuard only

	// Uses counts references from other values, block controls, and
	// frame states (maintained by Func.ComputeUses).
	Uses int
}

// Trapping reports whether executing v can raise a program-visible
// exception (so v must not be duplicated, reordered against effects,
// or speculatively hoisted).
func (v *Value) Trapping() bool {
	switch v.Op {
	case OpALoad, OpAStore, OpNewArr:
		return true
	case OpDiv, OpRem:
		d := v.Args[1]
		return !(d.Op == OpConst && d.Aux != 0)
	}
	return false
}

// Effectful reports whether v has side effects or observes mutable
// state, pinning it to the block's effect order.
func (v *Value) Effectful() bool {
	switch v.Op {
	case OpGetField, OpPutField, OpNewArr, OpALoad, OpAStore,
		OpALoadNoCheck, OpAStoreNoCheck, OpAStoreRaw, OpCall, OpPrint, OpGuard:
		return true
	case OpDiv, OpRem:
		return v.Trapping()
	}
	return false
}

// Pure reports the opposite of Effectful.
func (v *Value) Pure() bool { return !v.Effectful() }

// HasResult reports whether v produces a value consumed by others.
func (v *Value) HasResult() bool {
	switch v.Op {
	case OpPutField, OpAStore, OpAStoreNoCheck, OpAStoreRaw, OpPrint, OpGuard:
		return false
	case OpCall:
		return true // void calls simply have zero uses
	}
	return true
}

func (v *Value) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "v%d = %s", v.ID, v.Op)
	if v.Wide {
		b.WriteString(".l")
	}
	if v.Op == OpCmp {
		fmt.Fprintf(&b, ".%s", v.Cond)
	}
	switch v.Op {
	case OpConst, OpParam, OpGetField, OpPutField, OpCall, OpGuard:
		fmt.Fprintf(&b, " [%d]", v.Aux)
	case OpNewArr, OpPrint:
		fmt.Fprintf(&b, " [%s]", v.Kind)
	}
	for _, a := range v.Args {
		fmt.Fprintf(&b, " v%d", a.ID)
	}
	if v.FS != nil {
		fmt.Fprintf(&b, " fs@%d", v.FS.PC)
	}
	return b.String()
}

// BlockKind classifies block terminators.
type BlockKind uint8

const (
	BlockPlain   BlockKind = iota // one successor
	BlockIf                       // Ctrl != 0 -> Succs[0], else Succs[1]
	BlockSwitch                   // Ctrl selects via Cases/DefaultSucc
	BlockRet                      // return Ctrl
	BlockRetVoid                  // return
)

// SwitchCase routes one constant to a successor index.
type SwitchCase struct {
	Value int64
	Succ  int // index into Succs
}

// Block is a basic block.
type Block struct {
	ID     int
	Kind   BlockKind
	Values []*Value // in order; effectful values must keep relative order
	Ctrl   *Value   // branch condition / switch tag / return value
	Succs  []*Block
	Preds  []*Block

	// Switch routing (BlockSwitch): DefaultSucc indexes Succs.
	Cases       []SwitchCase
	DefaultSucc int

	// Loop structure, filled by Func.ComputeLoops.
	LoopDepth int
	LoopID    int // innermost loop id, -1 if none

	// Freq is the static frequency estimate used by code motion.
	Freq float64
}

func (b *Block) String() string { return fmt.Sprintf("b%d", b.ID) }

// AddEdge links b -> s.
func (b *Block) AddEdge(s *Block) {
	b.Succs = append(b.Succs, s)
	s.Preds = append(s.Preds, b)
}

// PredIndex returns the index of p in b.Preds.
func (b *Block) PredIndex(p *Block) int {
	for i, q := range b.Preds {
		if q == p {
			return i
		}
	}
	return -1
}

// Loop describes one natural loop.
type Loop struct {
	ID     int
	Header *Block
	Blocks map[int]bool // block IDs in the loop
	Parent int          // enclosing loop id or -1
	Depth  int
}

// Func is one function (method) in SSA form.
type Func struct {
	Name        string
	MethodIndex int
	NParams     int
	NSlots      int // total local slots in the source method
	RetVoid     bool
	OSRLoopID   int // -1 for regular entries

	Entry  *Block
	Blocks []*Block
	Loops  []*Loop

	nextValueID ID
	nextBlockID int
}

// NewFunc creates an empty function.
func NewFunc(name string, methodIndex, nParams, nSlots int, retVoid bool, osrLoop int) *Func {
	return &Func{
		Name:        name,
		MethodIndex: methodIndex,
		NParams:     nParams,
		NSlots:      nSlots,
		RetVoid:     retVoid,
		OSRLoopID:   osrLoop,
	}
}

// NewBlock appends a fresh block.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: f.nextBlockID, LoopID: -1}
	f.nextBlockID++
	f.Blocks = append(f.Blocks, b)
	return b
}

// NewValue creates a value in block b.
func (f *Func) NewValue(b *Block, op Op, args ...*Value) *Value {
	v := &Value{ID: f.nextValueID, Op: op, Args: args, Block: b}
	f.nextValueID++
	b.Values = append(b.Values, v)
	return v
}

// NumValues returns an upper bound on value IDs (for dense tables).
func (f *Func) NumValues() int { return int(f.nextValueID) }

// ComputeUses recounts value uses (args, ctrl, frame states).
func (f *Func) ComputeUses() {
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			v.Uses = 0
		}
	}
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			for _, a := range v.Args {
				a.Uses++
			}
			if v.FS != nil {
				for _, a := range v.FS.Locals {
					a.Uses++
				}
				for _, a := range v.FS.Stack {
					a.Uses++
				}
			}
		}
		if b.Ctrl != nil {
			b.Ctrl.Uses++
		}
	}
}

// String dumps the function.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (method %d, %d params", f.Name, f.MethodIndex, f.NParams)
	if f.OSRLoopID >= 0 {
		fmt.Fprintf(&sb, ", OSR loop %d", f.OSRLoopID)
	}
	sb.WriteString(")\n")
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s: (depth %d, freq %.1f)", b, b.LoopDepth, b.Freq)
		if len(b.Preds) > 0 {
			sb.WriteString(" <-")
			for _, p := range b.Preds {
				fmt.Fprintf(&sb, " %s", p)
			}
		}
		sb.WriteByte('\n')
		for _, v := range b.Values {
			fmt.Fprintf(&sb, "    %s\n", v)
		}
		switch b.Kind {
		case BlockPlain:
			fmt.Fprintf(&sb, "    -> %s\n", b.Succs[0])
		case BlockIf:
			fmt.Fprintf(&sb, "    if v%d -> %s else %s\n", b.Ctrl.ID, b.Succs[0], b.Succs[1])
		case BlockSwitch:
			fmt.Fprintf(&sb, "    switch v%d", b.Ctrl.ID)
			for _, c := range b.Cases {
				fmt.Fprintf(&sb, " %d:%s", c.Value, b.Succs[c.Succ])
			}
			fmt.Fprintf(&sb, " default:%s\n", b.Succs[b.DefaultSucc])
		case BlockRet:
			fmt.Fprintf(&sb, "    ret v%d\n", b.Ctrl.ID)
		case BlockRetVoid:
			sb.WriteString("    ret\n")
		}
	}
	return sb.String()
}
