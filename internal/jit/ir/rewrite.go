package ir

// ReplaceAll rewrites every argument, control, and frame-state
// reference according to repl, following replacement chains.
func (f *Func) ReplaceAll(repl map[*Value]*Value) {
	if len(repl) == 0 {
		return
	}
	resolve := func(v *Value) *Value {
		seen := 0
		for {
			w, ok := repl[v]
			if !ok {
				return v
			}
			v = w
			if seen++; seen > len(repl)+1 {
				panic("ir: replacement cycle")
			}
		}
	}
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			for i, a := range v.Args {
				v.Args[i] = resolve(a)
			}
			if v.FS != nil {
				for i, a := range v.FS.Locals {
					v.FS.Locals[i] = resolve(a)
				}
				for i, a := range v.FS.Stack {
					v.FS.Stack[i] = resolve(a)
				}
			}
		}
		if b.Ctrl != nil {
			b.Ctrl = resolve(b.Ctrl)
		}
	}
}

// RemoveDead drops pure values with no uses, iterating to a fixed
// point. Effectful values are always retained.
func (f *Func) RemoveDead() {
	for {
		f.ComputeUses()
		removed := false
		for _, b := range f.Blocks {
			kept := b.Values[:0]
			for _, v := range b.Values {
				if v.Uses == 0 && v.Pure() && v != b.Ctrl {
					removed = true
					continue
				}
				kept = append(kept, v)
			}
			b.Values = kept
		}
		if !removed {
			return
		}
	}
}

// MoveValue relocates v from its block to the end of dst's value list
// (before nothing — terminators are block fields, not values).
func MoveValue(v *Value, dst *Block) {
	src := v.Block
	for i, w := range src.Values {
		if w == v {
			src.Values = append(src.Values[:i], src.Values[i+1:]...)
			break
		}
	}
	dst.Values = append(dst.Values, v)
	v.Block = dst
}

// MoveValueFront relocates v to dst, after dst's phis but before
// everything else.
func MoveValueFront(v *Value, dst *Block) {
	src := v.Block
	for i, w := range src.Values {
		if w == v {
			src.Values = append(src.Values[:i], src.Values[i+1:]...)
			break
		}
	}
	insert := 0
	for insert < len(dst.Values) && dst.Values[insert].Op == OpPhi {
		insert++
	}
	dst.Values = append(dst.Values, nil)
	copy(dst.Values[insert+1:], dst.Values[insert:])
	dst.Values[insert] = v
	v.Block = dst
}

// InsertAfter repositions newV (already in anchor's block, typically
// just appended by NewValue) to sit immediately after anchor in the
// block's value list, so list-order lowering sees defs before uses.
func InsertAfter(newV, anchor *Value) {
	b := anchor.Block
	if newV.Block != b {
		panic("ir: InsertAfter across blocks")
	}
	// Remove newV.
	for i, w := range b.Values {
		if w == newV {
			b.Values = append(b.Values[:i], b.Values[i+1:]...)
			break
		}
	}
	for i, w := range b.Values {
		if w == anchor {
			b.Values = append(b.Values, nil)
			copy(b.Values[i+2:], b.Values[i+1:])
			b.Values[i+1] = newV
			return
		}
	}
	panic("ir: InsertAfter anchor not found")
}

// DomPreorder visits reachable blocks so that every block is visited
// after its immediate dominator (a preorder of the dominator tree).
func (f *Func) DomPreorder(idom []*Block) []*Block {
	children := make([][]*Block, f.nextBlockID)
	for _, b := range f.Blocks {
		if b == f.Entry {
			continue
		}
		d := idom[b.ID]
		if d != nil {
			children[d.ID] = append(children[d.ID], b)
		}
	}
	var out []*Block
	var walk func(b *Block)
	walk = func(b *Block) {
		out = append(out, b)
		for _, c := range children[b.ID] {
			walk(c)
		}
	}
	walk(f.Entry)
	return out
}
