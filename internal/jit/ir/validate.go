// SSA invariant validation. Validate is the compiler's self-check
// layer: run between passes (under jit.Options.ValidateIR or
// vm.Config.ValidateIR) it pins a violation to the pass that
// introduced it, which lets automatic fault localization distinguish
// "this pass mis-compiled the program" from "this pass broke the IR
// and a later stage mis-lowered the wreckage".
//
// The checks are deliberately limited to properties every pass must
// preserve:
//
//   - CFG consistency: terminator shape per block kind, succ/pred
//     symmetry, value back-pointers, switch case routing.
//   - Phi shape: arity equals the predecessor count (args parallel
//     Preds), phis never carry frame states.
//   - Guards carry a frame state (there is nothing to deoptimize to
//     without one).
//   - Use-dominance at block granularity: a def's block dominates the
//     use's block (for phis: the corresponding predecessor; for
//     controls and frame states: the consuming block).
//   - Effect-list ordering: an effectful value's effectful arguments
//     in the same block must precede it — the effect list executes in
//     order, so a store listed before the allocation it targets is
//     corrupt IR even though the SSA graph looks fine.
//
// Intra-block order of *pure* values is intentionally not checked:
// code motion parks pure values wherever (lowering schedules them by
// dependency), so list position carries no meaning for them.

package ir

import "fmt"

// Validate checks the SSA invariants of f and returns the first
// violation found (nil when the IR is well-formed). Dominance checks
// cover reachable blocks; structural checks cover every block.
func Validate(f *Func) error {
	if f.Entry == nil {
		return fmt.Errorf("no entry block")
	}
	for _, b := range f.Blocks {
		if err := validateBlockShape(b); err != nil {
			return err
		}
	}
	if err := validateEdges(f); err != nil {
		return err
	}

	idom := f.Dominators()
	reachable := func(b *Block) bool { return int(b.ID) < len(idom) && idom[b.ID] != nil }

	// Position of each value in its block, for effect-order checks.
	pos := map[*Value]int{}
	for _, b := range f.Blocks {
		for i, v := range b.Values {
			pos[v] = i
		}
	}

	for _, b := range f.Blocks {
		for i, v := range b.Values {
			if v == nil {
				return fmt.Errorf("%s: nil value at index %d", b, i)
			}
			if v.Block != b {
				return fmt.Errorf("%s: v%d has stale block pointer %s", b, v.ID, v.Block)
			}
			switch v.Op {
			case OpPhi:
				if len(v.Args) != len(b.Preds) {
					return fmt.Errorf("%s: phi v%d has %d args for %d preds", b, v.ID, len(v.Args), len(b.Preds))
				}
				if v.FS != nil {
					return fmt.Errorf("%s: phi v%d carries a frame state", b, v.ID)
				}
			case OpGuard:
				if v.FS == nil {
					return fmt.Errorf("%s: guard v%d has no frame state", b, v.ID)
				}
			}
			for ai, a := range v.Args {
				if a == nil {
					return fmt.Errorf("%s: v%d arg %d is nil", b, v.ID, ai)
				}
				if _, known := pos[a]; !known {
					return fmt.Errorf("%s: v%d uses v%d, which is in no block", b, v.ID, a.ID)
				}
				if !reachable(b) {
					continue
				}
				if v.Op == OpPhi {
					pred := b.Preds[ai]
					if reachable(pred) && reachable(a.Block) && !Dominates(idom, a.Block, pred) {
						return fmt.Errorf("%s: phi v%d arg %d (v%d in %s) does not dominate pred %s",
							b, v.ID, ai, a.ID, a.Block, pred)
					}
					continue
				}
				if !reachable(a.Block) || !Dominates(idom, a.Block, b) {
					return fmt.Errorf("%s: v%d uses v%d defined in %s, which does not dominate",
						b, v.ID, a.ID, a.Block)
				}
				// Effect-list ordering: effects execute in list order,
				// so an effectful consumer must follow its effectful
				// producers within the block.
				if a.Block == b && v.Effectful() && a.Effectful() && pos[a] > pos[v] {
					return fmt.Errorf("%s: effectful v%d (%s) listed before its effectful arg v%d (%s)",
						b, v.ID, v.Op, a.ID, a.Op)
				}
			}
			if v.FS != nil && reachable(b) {
				for _, a := range append(append([]*Value{}, v.FS.Locals...), v.FS.Stack...) {
					if a == nil {
						continue
					}
					if !reachable(a.Block) || !Dominates(idom, a.Block, b) {
						return fmt.Errorf("%s: guard v%d frame state uses v%d defined in %s, which does not dominate",
							b, v.ID, a.ID, a.Block)
					}
				}
			}
		}
		if b.Ctrl != nil && reachable(b) {
			if !reachable(b.Ctrl.Block) || !Dominates(idom, b.Ctrl.Block, b) {
				return fmt.Errorf("%s: control v%d defined in %s, which does not dominate", b, b.Ctrl.ID, b.Ctrl.Block)
			}
		}
	}
	return nil
}

// validateBlockShape checks terminator arity and control presence for
// one block.
func validateBlockShape(b *Block) error {
	switch b.Kind {
	case BlockPlain:
		if len(b.Succs) != 1 {
			return fmt.Errorf("%s: plain block with %d successors", b, len(b.Succs))
		}
	case BlockIf:
		if len(b.Succs) != 2 {
			return fmt.Errorf("%s: if block with %d successors", b, len(b.Succs))
		}
		if b.Ctrl == nil {
			return fmt.Errorf("%s: if block without control value", b)
		}
	case BlockSwitch:
		if b.Ctrl == nil {
			return fmt.Errorf("%s: switch block without control value", b)
		}
		if b.DefaultSucc < 0 || b.DefaultSucc >= len(b.Succs) {
			return fmt.Errorf("%s: switch default successor %d out of range (%d succs)", b, b.DefaultSucc, len(b.Succs))
		}
		for _, c := range b.Cases {
			if c.Succ < 0 || c.Succ >= len(b.Succs) {
				return fmt.Errorf("%s: switch case %d routes to successor %d out of range (%d succs)", b, c.Value, c.Succ, len(b.Succs))
			}
		}
	case BlockRet:
		if b.Ctrl == nil {
			return fmt.Errorf("%s: return block without value", b)
		}
		if len(b.Succs) != 0 {
			return fmt.Errorf("%s: return block with %d successors", b, len(b.Succs))
		}
	case BlockRetVoid:
		if len(b.Succs) != 0 {
			return fmt.Errorf("%s: void return block with %d successors", b, len(b.Succs))
		}
	default:
		return fmt.Errorf("%s: unknown block kind %d", b, b.Kind)
	}
	return nil
}

// validateEdges checks succ/pred symmetry: every b->s edge must appear
// in both adjacency lists the same number of times (both branches of
// an if may target one block, so edges are counted, not set-checked).
func validateEdges(f *Func) error {
	type edge struct{ from, to *Block }
	succCount := map[edge]int{}
	predCount := map[edge]int{}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if s == nil {
				return fmt.Errorf("%s: nil successor", b)
			}
			succCount[edge{b, s}]++
		}
		for _, p := range b.Preds {
			if p == nil {
				return fmt.Errorf("%s: nil predecessor", b)
			}
			predCount[edge{p, b}]++
		}
	}
	for e, n := range succCount {
		if predCount[e] != n {
			return fmt.Errorf("edge %s->%s: %d succ entries but %d pred entries", e.from, e.to, n, predCount[e])
		}
	}
	for e, n := range predCount {
		if succCount[e] != n {
			return fmt.Errorf("edge %s->%s: %d pred entries but %d succ entries", e.from, e.to, n, succCount[e])
		}
	}
	return nil
}
