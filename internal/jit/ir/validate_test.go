package ir

import (
	"strings"
	"testing"
)

// validDiamond builds a well-formed diamond with a phi at the merge.
func validDiamond() (*Func, *Block, *Block, *Block, *Block, *Value) {
	f, a, b, c, d := buildDiamond()
	x := f.NewValue(b, OpConst)
	x.Aux = 1
	y := f.NewValue(c, OpConst)
	y.Aux = 2
	phi := f.NewValue(d, OpPhi, x, y)
	return f, a, b, c, d, phi
}

func wantViolation(t *testing.T, f *Func, fragment string) {
	t.Helper()
	err := Validate(f)
	if err == nil {
		t.Fatalf("Validate accepted corrupt IR (want %q)", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("violation %q does not mention %q", err, fragment)
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	f, _, _, _, _, _ := validDiamond()
	if err := Validate(f); err != nil {
		t.Fatalf("well-formed diamond rejected: %v", err)
	}
}

func TestValidatePhiArity(t *testing.T) {
	f, _, _, _, _, phi := validDiamond()
	phi.Args = phi.Args[:1] // 1 arg for 2 preds
	wantViolation(t, f, "args for 2 preds")
}

func TestValidatePhiArgDominance(t *testing.T) {
	f, _, b, c, _, phi := validDiamond()
	// Swap the phi args: now the value defined in b flows in along the
	// c edge and vice versa — neither def dominates its predecessor.
	phi.Args[0], phi.Args[1] = phi.Args[1], phi.Args[0]
	_ = b
	_ = c
	wantViolation(t, f, "does not dominate pred")
}

func TestValidateUseDominance(t *testing.T) {
	f, _, b, c, _, _ := validDiamond()
	// A value defined in branch b used in sibling branch c: b does not
	// dominate c.
	v := f.NewValue(b, OpConst)
	v.Aux = 7
	f.NewValue(c, OpNeg, v)
	wantViolation(t, f, "does not dominate")
}

func TestValidateEdgeSymmetry(t *testing.T) {
	f, _, b, _, d, _ := validDiamond()
	// Drop d's pred entry for the b->d edge without touching b.Succs.
	for i, p := range d.Preds {
		if p == b {
			d.Preds = append(d.Preds[:i], d.Preds[i+1:]...)
			break
		}
	}
	wantViolation(t, f, "succ entries")
}

func TestValidateGuardNeedsFrameState(t *testing.T) {
	f, a, _, _, _, _ := validDiamond()
	cond := f.NewValue(a, OpConst)
	g := f.NewValue(a, OpGuard, cond)
	g.FS = nil
	wantViolation(t, f, "no frame state")
}

func TestValidatePhiRejectsFrameState(t *testing.T) {
	f, _, _, _, _, phi := validDiamond()
	phi.FS = &FrameState{}
	wantViolation(t, f, "carries a frame state")
}

func TestValidateStaleBlockPointer(t *testing.T) {
	f, a, b, _, _, _ := validDiamond()
	v := f.NewValue(b, OpConst)
	v.Block = a // list membership and back-pointer disagree
	wantViolation(t, f, "stale block pointer")
}

func TestValidateEffectOrder(t *testing.T) {
	f, a, _, _, _, _ := validDiamond()
	call := f.NewValue(a, OpCall)
	store := f.NewValue(a, OpPutField, call)
	store.Aux = 0
	// Reorder the effect list so the store precedes the call whose
	// result it consumes: effects execute in list order, so this IR
	// would write a value that does not exist yet.
	vals := a.Values
	ci, si := -1, -1
	for i, v := range vals {
		if v == call {
			ci = i
		}
		if v == store {
			si = i
		}
	}
	vals[ci], vals[si] = vals[si], vals[ci]
	wantViolation(t, f, "listed before its effectful arg")
}

func TestValidatePureOrderUnchecked(t *testing.T) {
	// Global code motion parks pure values anywhere in a block;
	// lowering schedules them by dependency. A pure def listed after
	// its (pure) consumer must therefore be accepted.
	f, a, _, _, _, _ := validDiamond()
	x := f.NewValue(a, OpConst)
	x.Aux = 3
	neg := f.NewValue(a, OpNeg, x)
	vals := a.Values
	xi, ni := -1, -1
	for i, v := range vals {
		if v == x {
			xi = i
		}
		if v == neg {
			ni = i
		}
	}
	vals[xi], vals[ni] = vals[ni], vals[xi]
	if err := Validate(f); err != nil {
		t.Fatalf("pure out-of-order def rejected: %v", err)
	}
}

func TestValidateUnreachableBlockSkipsDominance(t *testing.T) {
	// Unreachable blocks have no dominator-tree entry; structural
	// checks still apply but dominance must not panic or misfire.
	f, _, _, _, d, _ := validDiamond()
	orphan := f.NewBlock()
	orphan.Kind = BlockPlain
	orphan.AddEdge(d)
	// d now has 3 preds; fix the phi to match.
	for _, v := range d.Values {
		if v.Op == OpPhi {
			ext := f.NewValue(orphan, OpConst)
			v.Args = append(v.Args, ext)
		}
	}
	if err := Validate(f); err != nil {
		t.Fatalf("unreachable block broke validation: %v", err)
	}
}
