package jit

import (
	"artemis/internal/bugs"
	"artemis/internal/bytecode"
	"artemis/internal/jit/ir"
)

// boundsCheckElim removes array bounds checks for the canonical
// counted-loop pattern
//
//	i = phi(init, i + step); loop while i < a.length; ... a[i] ...
//
// with init >= 0 and step > 0, where a is loop-invariant. Accesses
// proven in range become the NoCheck variants.
//
// The injected oj-bce-offbyone defect also accepts the inclusive bound
// "i <= a.length" (which a correct VM answers with an
// ArrayIndexOutOfBoundsException at i == length). For such loops the
// eliminated store becomes a raw store that, at i == length, writes
// the heap canary word — the corruption is then discovered by the
// garbage collector, which is exactly how the paper's OpenJ9 crashes
// present (Table 2: most OpenJ9 crashes are in the GC).
//
// It returns the number of bounds checks eliminated.
func boundsCheckElim(f *ir.Func, bugSet bugs.Set) int {
	f.ComputeLoops()
	offByOne := bugSet.Has("oj-bce-offbyone")
	eliminated := 0

	for _, l := range f.Loops {
		h := l.Header
		if h.Kind != ir.BlockIf || h.Ctrl == nil || h.Ctrl.Op != ir.OpCmp || h.Ctrl.Wide {
			continue
		}
		cmp := h.Ctrl
		// Our bytecode compiler negates loop conditions: the taken
		// edge exits the loop. Require exactly that shape.
		if l.Blocks[h.Succs[0].ID] || !l.Blocks[h.Succs[1].ID] {
			continue
		}
		// cmp must be (i GE len) for "i < len", or — accepted only by
		// the bug — (i GT len) for "i <= len".
		exclusive := cmp.Cond == bytecode.CondGE
		inclusive := cmp.Cond == bytecode.CondGT
		if !exclusive && !(offByOne && inclusive) {
			continue
		}
		iv := cmp.Args[0]
		bound := cmp.Args[1]
		if iv.Op != ir.OpPhi || iv.Block != h || len(iv.Args) != 2 {
			continue
		}
		if bound.Op != ir.OpArrLen {
			continue
		}
		ref := bound.Args[0]
		if l.Blocks[ref.Block.ID] {
			continue // array not loop-invariant
		}
		// Identify init (out-of-loop arg) and next (in-loop arg).
		var init, next *ir.Value
		for ai, a := range iv.Args {
			if l.Blocks[h.Preds[ai].ID] {
				next = a
			} else {
				init = a
			}
		}
		if init == nil || next == nil {
			continue
		}
		if init.Op != ir.OpConst || init.Aux < 0 {
			continue
		}
		if next.Op != ir.OpAdd || next.Wide || next.Args[0] != iv {
			continue
		}
		step := next.Args[1]
		if step.Op != ir.OpConst || step.Aux <= 0 {
			continue
		}
		// All checks passed: accesses a[i] inside the loop are
		// provably in range (or — with the bug — provably wrong).
		for _, b := range f.Blocks {
			if !l.Blocks[b.ID] {
				continue
			}
			for _, v := range b.Values {
				switch v.Op {
				case ir.OpALoad:
					if v.Args[0] == ref && v.Args[1] == iv {
						v.Op = ir.OpALoadNoCheck
						eliminated++
					}
				case ir.OpAStore:
					if v.Args[0] == ref && v.Args[1] == iv {
						if inclusive {
							v.Op = ir.OpAStoreRaw // heap corruption at i == length
						} else {
							v.Op = ir.OpAStoreNoCheck
						}
						eliminated++
					}
				}
			}
		}
	}
	return eliminated
}
