package jit

import (
	"artemis/internal/bugs"
	"artemis/internal/jit/ir"
)

// localValueProp forwards field values within basic blocks: a load
// after a store (or another load) of the same field reuses the known
// value. Calls clobber all fields — except under the injected
// oj-lvp-across-call defect, which forwards straight across calls and
// so resurrects stale values whenever the callee writes the field.
// It returns the number of loads forwarded (for pass statistics).
func localValueProp(f *ir.Func, bugSet bugs.Set) int {
	acrossCalls := bugSet.Has("oj-lvp-across-call")
	repl := map[*ir.Value]*ir.Value{}
	for _, b := range f.Blocks {
		avail := map[int64]*ir.Value{}
		for _, v := range b.Values {
			switch v.Op {
			case ir.OpGetField:
				if known := avail[v.Aux]; known != nil {
					repl[v] = known
				} else {
					avail[v.Aux] = v
				}
			case ir.OpPutField:
				avail[v.Aux] = v.Args[0]
			case ir.OpCall:
				if !acrossCalls {
					avail = map[int64]*ir.Value{}
				}
			}
		}
	}
	f.ReplaceAll(repl)
	f.RemoveDead()
	return len(repl)
}
