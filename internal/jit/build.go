// Package jit implements the VM's JIT compilers: a non-optimizing
// tier-1 ("quick") compiler and an optimizing tier-2 compiler built on
// an SSA IR with profile-guided speculation and uncommon traps. The
// package also hosts the injected-bug hooks used to simulate the
// production-JVM defects the paper's campaigns discover.
package jit

import (
	"fmt"

	"artemis/internal/bytecode"
	"artemis/internal/jit/ir"
	"artemis/internal/lang/ast"
	"artemis/internal/vm"
)

// buildConfig parameterizes SSA construction.
type buildConfig struct {
	// speculate enables profile-guided branch pruning with uncommon
	// traps.
	speculate bool
	// minSamples is the branch-profile confidence threshold.
	minSamples int64
	// bugStaleLocalFS injects the de-optimization bug: guard frame
	// states capture block-entry locals rather than current locals, so
	// resuming after a trap observes stale values.
	bugStaleLocalFS bool
	// bugGraphAssert injects an "ideal graph building" assertion
	// failure on large switch-heavy methods.
	bugGraphAssert bool
}

// compilerCrash is panicked by injected assert-style bugs and caught
// at the jit.Compiler boundary, where it becomes a VM crash.
type compilerCrash struct {
	component string
	msg       string
}

func crashf(component, format string, args ...any) {
	panic(compilerCrash{component: component, msg: fmt.Sprintf(format, args...)})
}

// buildSSA translates one bytecode method to SSA. For OSR requests
// (osrLoop >= 0) the function entry materializes every local slot as a
// parameter and control starts at the loop header.
func buildSSA(prog *bytecode.Program, mi, osrLoop int, prof *vm.MethodProfile, cfg buildConfig) *ir.Func {
	m := prog.Methods[mi]
	f := ir.NewFunc(m.Name, mi, m.NParams, len(m.Locals), m.Ret.Kind == ast.KindVoid, osrLoop)

	entryPC := 0
	if osrLoop >= 0 {
		entryPC = m.Loops[osrLoop].HeadPC
	}

	// --- Block discovery over the bytecode CFG -------------------------
	isLeader := make([]bool, len(m.Code))
	isLeader[entryPC] = true
	mark := func(pc int) {
		if pc >= 0 && pc < len(m.Code) {
			isLeader[pc] = true
		}
	}
	for pc, in := range m.Code {
		switch in.Op {
		case bytecode.OpGoto, bytecode.OpLoopBack:
			mark(int(in.A))
			mark(pc + 1)
		case bytecode.OpIfTrue, bytecode.OpIfFalse, bytecode.OpIfCmp:
			mark(int(in.A))
			mark(pc + 1)
		case bytecode.OpSwitch:
			t := m.Switches[in.A]
			mark(t.Default)
			for _, e := range t.Entries {
				mark(e.Target)
			}
			mark(pc + 1)
		case bytecode.OpRet, bytecode.OpRetV:
			mark(pc + 1)
		}
	}

	blockAt := map[int]*ir.Block{}
	entry := f.NewBlock()
	f.Entry = entry

	// bcSuccs returns the bytecode successors of the block starting at
	// leader pc, along with the pc range of the block.
	blockEnd := func(start int) int {
		pc := start
		for {
			in := m.Code[pc]
			switch in.Op {
			case bytecode.OpGoto, bytecode.OpLoopBack, bytecode.OpIfTrue,
				bytecode.OpIfFalse, bytecode.OpIfCmp, bytecode.OpSwitch,
				bytecode.OpRet, bytecode.OpRetV:
				return pc
			}
			if pc+1 < len(m.Code) && isLeader[pc+1] {
				return pc // falls through into the next leader
			}
			pc++
		}
	}

	bcSuccs := func(start int) []int {
		end := blockEnd(start)
		in := m.Code[end]
		switch in.Op {
		case bytecode.OpGoto, bytecode.OpLoopBack:
			return []int{int(in.A)}
		case bytecode.OpIfTrue, bytecode.OpIfFalse, bytecode.OpIfCmp:
			return []int{int(in.A), end + 1}
		case bytecode.OpSwitch:
			t := m.Switches[in.A]
			succs := []int{t.Default}
			for _, e := range t.Entries {
				succs = append(succs, e.Target)
			}
			return succs
		case bytecode.OpRet, bytecode.OpRetV:
			return nil
		default:
			return []int{end + 1}
		}
	}

	// Reachable leaders from entryPC, and predecessor counts.
	reached := map[int]bool{}
	var stack []int
	stack = append(stack, entryPC)
	reached[entryPC] = true
	predCount := map[int]int{}
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range bcSuccs(pc) {
			predCount[s]++
			if !reached[s] {
				reached[s] = true
				stack = append(stack, s)
			}
		}
	}
	// Iterate leaders in bytecode order so block and value IDs are
	// deterministic (map order would scramble diagnostics).
	var leaderPCs []int
	for pc := 0; pc < len(m.Code); pc++ {
		if reached[pc] {
			leaderPCs = append(leaderPCs, pc)
		}
	}
	for _, pc := range leaderPCs {
		blockAt[pc] = f.NewBlock()
	}

	depths := bytecode.StackDepths(prog, m)

	// --- Abstract interpretation state ---------------------------------
	type state struct {
		locals []*ir.Value
		stack  []*ir.Value
	}
	cloneState := func(s *state) *state {
		return &state{
			locals: append([]*ir.Value(nil), s.locals...),
			stack:  append([]*ir.Value(nil), s.stack...),
		}
	}

	// Entry block: parameters (or all slots for OSR), zeros elsewhere.
	entrySt := &state{locals: make([]*ir.Value, len(m.Locals))}
	var zero *ir.Value
	mkZero := func() *ir.Value {
		if zero == nil {
			zero = f.NewValue(entry, ir.OpConst)
			zero.Aux = 0
		}
		return zero
	}
	nParamVals := m.NParams
	if osrLoop >= 0 {
		nParamVals = len(m.Locals)
	}
	for i := range m.Locals {
		if i < nParamVals {
			p := f.NewValue(entry, ir.OpParam)
			p.Aux = int64(i)
			entrySt.locals[i] = p
		} else {
			entrySt.locals[i] = mkZero()
		}
	}
	entry.Kind = ir.BlockPlain
	entry.AddEdge(blockAt[entryPC])

	// Phi scaffolding for join blocks (including loop headers): every
	// local and stack slot gets a phi; unused ones die in DCE.
	phiLocals := map[int][]*ir.Value{}
	phiStack := map[int][]*ir.Value{}
	entryState := map[int]*state{}
	needPhis := func(pc int) bool {
		n := predCount[pc]
		if pc == entryPC {
			n++ // the synthetic entry edge
		}
		return n > 1
	}
	for _, pc := range leaderPCs {
		if !needPhis(pc) {
			continue
		}
		b := blockAt[pc]
		st := &state{locals: make([]*ir.Value, len(m.Locals))}
		var pls []*ir.Value
		for i := range m.Locals {
			phi := f.NewValue(b, ir.OpPhi)
			st.locals[i] = phi
			pls = append(pls, phi)
		}
		var pss []*ir.Value
		d := depths[pc]
		for i := 0; i < d; i++ {
			phi := f.NewValue(b, ir.OpPhi)
			st.stack = append(st.stack, phi)
			pss = append(pss, phi)
		}
		phiLocals[pc] = pls
		phiStack[pc] = pss
		entryState[pc] = st
	}
	if !needPhis(entryPC) {
		entryState[entryPC] = cloneState(entrySt)
	}

	// edgeStates[to] collects (fromBlock, state) in edge order.
	type edgeIn struct {
		from *ir.Block
		st   *state
	}
	edgeStates := map[int][]edgeIn{}
	addEdge := func(from *ir.Block, toPC int, st *state) {
		from.AddEdge(blockAt[toPC])
		edgeStates[toPC] = append(edgeStates[toPC], edgeIn{from, cloneState(st)})
		if entryState[toPC] == nil {
			entryState[toPC] = cloneState(st)
		}
	}
	// The synthetic entry edge into the first real block.
	edgeStates[entryPC] = append(edgeStates[entryPC], edgeIn{entry, cloneState(entrySt)})
	if entryState[entryPC] == nil {
		entryState[entryPC] = cloneState(entrySt)
	}

	// --- Translate each reachable block --------------------------------
	// Process in bytecode order (any order works: join states come from
	// pre-created phis, single-pred states are patched afterwards via
	// edgeStates — to keep it simple we do two passes: first translate
	// with placeholder states for single-pred blocks resolved on the
	// fly in RPO-ish order).
	var order []int
	for pc := 0; pc < len(m.Code); pc++ {
		if reached[pc] && blockAt[pc] != nil && isLeader[pc] {
			order = append(order, pc)
		}
	}

	// For single-pred blocks we must know the incoming state before
	// translating. Translate in a worklist order where a block is ready
	// when needPhis(pc) or its incoming edge state exists.
	translated := map[int]bool{}
	var translate func(startPC int)

	// captureFS snapshots the frame state at pc for deopt metadata.
	captureFS := func(pc int, st *state, blockEntry *state) *ir.FrameState {
		src := st
		if cfg.bugStaleLocalFS && blockEntry != nil {
			// Injected de-optimization bug: record the locals as they
			// were at block entry. Stack is still correct, which makes
			// the bug latent until a mutated local is observed after
			// the trap.
			src = &state{locals: blockEntry.locals, stack: st.stack}
		}
		return &ir.FrameState{
			PC:     pc,
			Locals: append([]*ir.Value(nil), src.locals...),
			Stack:  append([]*ir.Value(nil), st.stack...),
		}
	}

	translate = func(startPC int) {
		if translated[startPC] {
			return
		}
		translated[startPC] = true
		b := blockAt[startPC]
		st := cloneState(entryState[startPC])
		blockEntry := cloneState(st)
		end := blockEnd(startPC)

		push := func(v *ir.Value) { st.stack = append(st.stack, v) }
		pop := func() *ir.Value {
			v := st.stack[len(st.stack)-1]
			st.stack = st.stack[:len(st.stack)-1]
			return v
		}
		newVal := func(op ir.Op, args ...*ir.Value) *ir.Value {
			return f.NewValue(b, op, args...)
		}

		for pc := startPC; ; pc++ {
			in := m.Code[pc]
			switch in.Op {
			case bytecode.OpNop:
			case bytecode.OpConst:
				v := newVal(ir.OpConst)
				v.Aux = in.A
				push(v)
			case bytecode.OpLoad:
				push(st.locals[in.A])
			case bytecode.OpStore:
				st.locals[in.A] = pop()
			case bytecode.OpPop:
				pop()
			case bytecode.OpDup:
				push(st.stack[len(st.stack)-1])
			case bytecode.OpDup2:
				a, c := st.stack[len(st.stack)-2], st.stack[len(st.stack)-1]
				push(a)
				push(c)
			case bytecode.OpGetField:
				v := newVal(ir.OpGetField)
				v.Aux = in.A
				push(v)
			case bytecode.OpPutField:
				v := newVal(ir.OpPutField, pop())
				v.Aux = in.A
			case bytecode.OpNewArr:
				v := newVal(ir.OpNewArr, pop())
				v.Kind = in.Kind
				push(v)
			case bytecode.OpALoad:
				idx := pop()
				ref := pop()
				push(newVal(ir.OpALoad, ref, idx))
			case bytecode.OpAStore:
				val := pop()
				idx := pop()
				ref := pop()
				newVal(ir.OpAStore, ref, idx, val)
			case bytecode.OpArrLen:
				push(newVal(ir.OpArrLen, pop()))
			case bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul, bytecode.OpDiv,
				bytecode.OpRem, bytecode.OpAnd, bytecode.OpOr, bytecode.OpXor,
				bytecode.OpShl, bytecode.OpShr, bytecode.OpUshr:
				y := pop()
				x := pop()
				v := newVal(ir.BinOpFor(in.Op), x, y)
				v.Wide = in.Wide
				push(v)
			case bytecode.OpNeg:
				v := newVal(ir.OpNeg, pop())
				v.Wide = in.Wide
				push(v)
			case bytecode.OpBitNot:
				v := newVal(ir.OpBitNot, pop())
				v.Wide = in.Wide
				push(v)
			case bytecode.OpL2I:
				push(newVal(ir.OpL2I, pop()))
			case bytecode.OpCmpSet:
				y := pop()
				x := pop()
				v := newVal(ir.OpCmp, x, y)
				v.Cond = in.Cond
				push(v)
			case bytecode.OpCall:
				callee := prog.Methods[in.A]
				args := make([]*ir.Value, callee.NParams)
				for i := callee.NParams - 1; i >= 0; i-- {
					args[i] = pop()
				}
				v := newVal(ir.OpCall, args...)
				v.Aux = in.A
				if callee.Ret.Kind != ast.KindVoid {
					push(v)
				}
			case bytecode.OpPrint:
				v := newVal(ir.OpPrint, pop())
				v.Kind = in.Kind
			case bytecode.OpGoto, bytecode.OpLoopBack:
				b.Kind = ir.BlockPlain
				addEdge(b, int(in.A), st)
				return
			case bytecode.OpIfTrue, bytecode.OpIfFalse, bytecode.OpIfCmp:
				var cond *ir.Value
				// Frame state before consuming operands, so the
				// interpreter re-executes the branch on deopt.
				fs := captureFS(pc, st, blockEntry)
				if in.Op == bytecode.OpIfCmp {
					y := pop()
					x := pop()
					cond = newVal(ir.OpCmp, x, y)
					cond.Cond = in.Cond
				} else {
					cond = pop()
					if in.Op == bytecode.OpIfFalse {
						z := newVal(ir.OpConst)
						z.Aux = 0
						eq := newVal(ir.OpCmp, cond, z)
						eq.Cond = bytecode.CondEQ
						cond = eq
					}
				}
				// Speculation: prune a one-sided branch into a guard.
				if cfg.speculate && prof != nil {
					if bp := prof.Branches[pc]; bp != nil && bp.Taken+bp.NotTaken >= cfg.minSamples {
						if bp.NotTaken == 0 || bp.Taken == 0 {
							expect := int64(1)
							hot := int(in.A)
							if bp.Taken == 0 {
								expect = 0
								hot = pc + 1
							}
							g := newVal(ir.OpGuard, cond)
							g.Aux = expect
							g.FS = fs
							b.Kind = ir.BlockPlain
							addEdge(b, hot, st)
							return
						}
					}
				}
				b.Kind = ir.BlockIf
				b.Ctrl = cond
				addEdge(b, int(in.A), st)
				addEdge(b, pc+1, st)
				return
			case bytecode.OpSwitch:
				tag := pop()
				t := m.Switches[in.A]
				b.Kind = ir.BlockSwitch
				b.Ctrl = tag
				// Succ 0 = default, then one succ per entry (dedup not
				// needed: repeated targets get repeated edges and phi
				// inputs stay aligned per edge).
				addEdge(b, t.Default, st)
				b.DefaultSucc = 0
				for i, e := range t.Entries {
					addEdge(b, e.Target, st)
					b.Cases = append(b.Cases, ir.SwitchCase{Value: e.Value, Succ: i + 1})
				}
				return
			case bytecode.OpRet:
				b.Kind = ir.BlockRetVoid
				return
			case bytecode.OpRetV:
				b.Kind = ir.BlockRet
				b.Ctrl = pop()
				return
			default:
				panic(fmt.Sprintf("jit: unknown opcode %v", in.Op))
			}
			if pc == end {
				// Fallthrough into the next leader.
				b.Kind = ir.BlockPlain
				addEdge(b, pc+1, st)
				return
			}
		}
	}

	// Translate join blocks first (their entry states are phis, always
	// available), then iterate until everything reachable is done.
	for _, pc := range order {
		if needPhis(pc) {
			translate(pc)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, pc := range order {
			if !translated[pc] && entryState[pc] != nil {
				translate(pc)
				changed = true
			}
		}
	}

	// Fill phi arguments from edge states, in each block's pred order.
	for pc, pls := range phiLocals {
		b := blockAt[pc]
		ins := edgeStates[pc]
		// Align edge states with b.Preds: both were appended in the
		// same order (AddEdge appends to Preds as edges are created).
		if len(ins) != len(b.Preds) {
			panic(fmt.Sprintf("jit: edge state mismatch at pc %d: %d vs %d preds", pc, len(ins), len(b.Preds)))
		}
		for _, e := range ins {
			for i, phi := range pls {
				phi.Args = append(phi.Args, e.st.locals[i])
			}
			for i, phi := range phiStack[pc] {
				phi.Args = append(phi.Args, e.st.stack[i])
			}
		}
	}

	f.ComputeLoops()

	if cfg.bugGraphAssert {
		// Injected "Ideal Graph Building" assertion: large switch-heavy
		// methods overflow a fictitious region-node budget.
		nSwitch := 0
		for _, b := range f.Blocks {
			if b.Kind == ir.BlockSwitch && len(b.Succs) >= 8 {
				nSwitch++
			}
		}
		if nSwitch >= 1 && len(f.Blocks) > 48 {
			crashf("Ideal Graph Building", "region node budget exceeded (%d blocks)", len(f.Blocks))
		}
	}
	return f
}
