package jit

import (
	"fmt"
	"time"

	"artemis/internal/bugs"
	"artemis/internal/jit/ir"
	"artemis/internal/vm"
)

// Options configures a Compiler instance.
type Options struct {
	// MaxTier is the number of optimization levels (N of Definition
	// 3.1): 1 = quick tier only, 2 = quick + optimizing tier.
	MaxTier int
	// Bugs is the enabled seeded-defect set (nil = a correct compiler).
	Bugs bugs.Set
	// MinBranchSamples is the profile confidence needed before the
	// optimizing tier speculates on a one-sided branch.
	MinBranchSamples int64
	// DisablePasses names optimizing-tier passes this compiler skips
	// (see PassNames; "fold1"/"fold2" address the two constant-folding
	// runs individually). Per-instance state — two compilers with
	// different sets can run concurrently, which pass bisection needs.
	DisablePasses []string
	// ValidateIR checks SSA invariants after construction and after
	// every pass; a violation is a compiler crash whose message names
	// the pass that broke the IR.
	ValidateIR bool
}

// PassNames lists the optimizing-tier passes in pipeline order — the
// canonical unit set for DisablePasses and pass bisection. "fold"
// covers both constant-folding runs (fold1/fold2 select one).
var PassNames = []string{"valprop", "fold", "foldbr", "gvn", "licm", "bce", "gcm"}

// Compiler implements vm.JITCompiler with two tiers:
//
//	tier 1 — "quick": direct SSA construction, no optimization, no
//	         speculation; the analogue of HotSpot C1 / ART's
//	         OptimizingCompiler baseline configuration.
//	tier 2 — "opt": profile-guided speculation with uncommon traps,
//	         local/global value propagation, constant folding, GVN,
//	         loop optimization (LICM), bounds-check elimination, and
//	         global code motion; the analogue of HotSpot C2 / OpenJ9's
//	         warm-and-above optimizer.
type Compiler struct {
	opts    Options
	disable map[string]bool // Options.DisablePasses as a set (nil when empty)

	// Stats
	Compilations int64
	CrashCount   int64
	// CompileNanos is total wall-clock time spent in Compile.
	CompileNanos int64
}

// New creates a Compiler.
func New(opts Options) *Compiler {
	if opts.MaxTier <= 0 {
		opts.MaxTier = 2
	}
	if opts.MinBranchSamples <= 0 {
		opts.MinBranchSamples = 8
	}
	c := &Compiler{opts: opts}
	if len(opts.DisablePasses) > 0 {
		c.disable = make(map[string]bool, len(opts.DisablePasses))
		for _, p := range opts.DisablePasses {
			c.disable[p] = true
		}
	}
	return c
}

var _ vm.JITCompiler = (*Compiler)(nil)

// MaxTier implements vm.JITCompiler.
func (c *Compiler) MaxTier() int { return c.opts.MaxTier }

// Compile implements vm.JITCompiler.
func (c *Compiler) Compile(req vm.CompileRequest) (code vm.CompiledCode, cerr *vm.CompileError) {
	c.Compilations++
	start := time.Now()
	defer func() { c.CompileNanos += time.Since(start).Nanoseconds() }()
	defer func() {
		if r := recover(); r != nil {
			if cc, ok := r.(compilerCrash); ok {
				c.CrashCount++
				code = nil
				cerr = &vm.CompileError{
					Crash: true,
					Msg:   fmt.Sprintf("assertion failure in %s: %s", cc.component, cc.msg),
				}
				return
			}
			panic(r)
		}
	}()

	bugSet := c.opts.Bugs
	tier := req.Tier
	if tier > c.opts.MaxTier {
		tier = c.opts.MaxTier
	}
	m := req.Prog.Methods[req.MethodIndex]

	if bugSet.Has("oj-recomp-limit") && req.Recompiles >= 6 {
		crashf("Recompilation", "persistent method info: recompile #%d of %s", req.Recompiles+1, m.Name)
	}
	if tier == 1 && bugSet.Has("hs-c1-bigmethod") && len(m.Code) > 256 && m.NParams >= 4 {
		crashf("Inlining, C1", "inline buffer exhausted: %d bytecodes, %d params", len(m.Code), m.NParams)
	}

	cfg := buildConfig{
		speculate:       tier >= 2 && req.Speculate,
		minSamples:      c.opts.MinBranchSamples,
		bugStaleLocalFS: bugSet.Has("oj-deopt-stale"),
		bugGraphAssert:  tier >= 2 && bugSet.Has("hs-igb-region"),
	}
	f := buildSSA(req.Prog, req.MethodIndex, req.OSRLoopID, req.Profile, cfg)

	// A pass is disabled when either the compiler's own set or the
	// per-request set (threaded from vm.Config.DisablePasses) names it.
	disabled := func(name string) bool {
		return c.disable[name] || req.DisablePasses[name]
	}
	validate := c.opts.ValidateIR || req.ValidateIR
	checkIR := func(stage string) {
		if !validate {
			return
		}
		if err := ir.Validate(f); err != nil {
			crashf("IR Validator", "after %s in %s: %v", stage, f.Name, err)
		}
	}
	checkIR("build")

	// Per-pass optimization counts, keyed by the same pass names
	// DisablePasses accepts; surfaced through the compile result as
	// vm.CompileStats.
	passOpts := map[string]int64{}
	runPass := func(name string, pass func() int) {
		passOpts[name] += int64(pass())
		checkIR(name)
	}
	if tier >= 2 {
		if !disabled("valprop") {
			runPass("valprop", func() int { return localValueProp(f, bugSet) })
		}
		if !disabled("fold") && !disabled("fold1") {
			runPass("fold", func() int { return foldConstants(f, bugSet) })
		}
		if !disabled("fold") && !disabled("foldbr") {
			runPass("foldbr", func() int { return foldBranches(f) })
		}
		if !disabled("gvn") {
			runPass("gvn", func() int { return gvn(f, bugSet) })
		}
		if !disabled("licm") {
			runPass("licm", func() int { return loopOptimize(f, bugSet) })
		}
		if !disabled("bce") {
			runPass("bce", func() int { return boundsCheckElim(f, bugSet) })
		}
		if !disabled("gcm") {
			runPass("gcm", func() int { return globalCodeMotion(f, bugSet) })
		}
		if !disabled("fold") && !disabled("fold2") {
			runPass("fold", func() int { return foldConstants(f, bugSet) })
		}
		shapeChecks(f, bugSet)
	}

	out := lower(f, tier, bugSet)
	out.stats = &vm.CompileStats{
		Tier:       out.Tier(),
		OSR:        out.IsOSR(),
		OptsByPass: passOpts,
		Nanos:      time.Since(start).Nanoseconds(),
	}
	return out, nil
}
