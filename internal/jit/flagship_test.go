package jit

import (
	"fmt"
	"strings"
	"testing"

	"artemis/internal/bugs"
	"artemis/internal/vm"
)

// TestFlagshipGCMStoreSink reproduces the mechanism of JDK-8288975,
// the paper's flagship bug (Section 2.2): global code motion moves a
// field increment (load l; add; store l) from an outer loop into a
// directly nested inner loop "because the frequency estimates tie";
// the inner loop executes more iterations than the outer body, so the
// increment is applied too many times and the printed value changes.
func TestFlagshipGCMStoreSink(t *testing.T) {
	// Shaped after Figure 2: an outer loop whose body runs an inner
	// counting loop (the paper's `for (int w = -2967; w < 4342; w += 4);`)
	// and then increments the field T.l by 2.
	src := `class T {
        int l = 0;
        void g() {
            for (int i = 0; i < 10; i++) {
                for (int w = 0; w < 13; w += 4) { }
                l += 2;
            }
        }
        void main() { g(); print(l); }
    }`
	bp := compileSrc(t, src)

	interp := vm.Run(vm.Config{}, bp)
	if interp.Output.Term != vm.TermNormal || interp.Output.Lines[0] != "20" {
		t.Fatalf("interpreter: %v %v, want 20", interp.Output.Term, interp.Output.Lines)
	}

	force := func(set bugs.Set) *vm.Output {
		return vm.Run(vm.Config{
			JIT: New(Options{MaxTier: 2, Bugs: set}),
			Policy: &vm.ForcedPolicy{
				Tier:       2,
				Choice:     func(string, int64) vm.ForceChoice { return vm.ForceCompile },
				DisableOSR: true,
			},
		}, bp).Output
	}

	correct := force(nil)
	if !correct.Equivalent(interp.Output) {
		t.Fatalf("correct tier-2 differs from interpreter: %v", correct.Lines)
	}

	buggy := force(bugs.NewSet("hs-gcm-store-sink"))
	if buggy.Term != vm.TermNormal {
		t.Fatalf("buggy run: %v (%s)", buggy.Term, buggy.Detail)
	}
	if buggy.Lines[0] == "20" {
		t.Fatal("hs-gcm-store-sink did not fire: output still 20")
	}
	// The increment now runs once per inner iteration (4 per outer
	// round), so l = 10 * 4 * 2 = 80.
	if buggy.Lines[0] != "80" {
		t.Errorf("buggy output %s, want 80 (increment multiplied by inner trip count)", buggy.Lines[0])
	}
}

// TestBCEOffByOneCorruptsHeap checks the OpenJ9-style GC-crash story:
// the buggy bounds-check elimination accepts "i <= a.length", the
// compiled store smashes the heap canary at i == length, and the
// crash surfaces later inside the garbage collector.
func TestBCEOffByOneCorruptsHeap(t *testing.T) {
	src := `class T {
        int sink = 0;
        void fill(int[] a) {
            for (int i = 0; i <= a.length; i++) { a[i] = i; }
        }
        void main() {
            int[] a = new int[8];
            fill(a);
            print(sink);
        }
    }`
	bp := compileSrc(t, src)

	// Correct behaviour (any tier): ArrayIndexOutOfBoundsException.
	interp := vm.Run(vm.Config{}, bp)
	if interp.Output.Term != vm.TermException || !strings.Contains(interp.Output.Detail, "ArrayIndexOutOfBounds") {
		t.Fatalf("interpreter: %v %q", interp.Output.Term, interp.Output.Detail)
	}

	buggy := vm.Run(vm.Config{
		JIT:        New(Options{MaxTier: 2, Bugs: bugs.NewSet("oj-bce-offbyone")}),
		GCInterval: 64,
		Policy: &vm.ForcedPolicy{
			Tier:       2,
			Choice:     func(string, int64) vm.ForceChoice { return vm.ForceCompile },
			DisableOSR: true,
		},
	}, bp)
	if buggy.Output.Equivalent(interp.Output) {
		t.Fatal("oj-bce-offbyone did not change behaviour")
	}
	// The discrepancy must be observable; the strongest symptom is the
	// GC detecting the corrupted canary.
	if buggy.Output.Term == vm.TermCrash && !strings.Contains(buggy.Output.Detail, "heap corruption") {
		t.Errorf("crash but not in GC: %q", buggy.Output.Detail)
	}
	t.Logf("buggy behaviour: %v %q", buggy.Output.Term, buggy.Output.Detail)
}

// TestGCBarrierCorruption checks oj-gc-barrier: compiled stores to
// element 0 of aligned arrays silently smash the canary; the GC finds
// the corruption later and the VM dies inside the collector —
// Table 2's dominant OpenJ9 symptom.
func TestGCBarrierCorruption(t *testing.T) {
	src := `class T {
        long total = 0;
        void main() {
            int[] a = new int[8];
            for (int r = 0; r < 500; r++) {
                a[0] = r;
                long[] junk = new long[8];
                total += a[0] + (int)junk[0];
            }
            print(total);
        }
    }`
	bp := compileSrc(t, src)
	interp := vm.Run(vm.Config{GCInterval: 64}, bp)
	if interp.Output.Term != vm.TermNormal {
		t.Fatalf("interp: %v", interp.Output.Term)
	}
	buggy := vm.Run(vm.Config{
		JIT:        New(Options{MaxTier: 2, Bugs: bugs.NewSet("oj-gc-barrier")}),
		GCInterval: 64,
		Policy: &vm.ForcedPolicy{
			Tier:       2,
			Choice:     func(string, int64) vm.ForceChoice { return vm.ForceCompile },
			DisableOSR: true,
		},
	}, bp)
	if buggy.Output.Term != vm.TermCrash || !strings.Contains(buggy.Output.Detail, "heap corruption") {
		t.Fatalf("want GC heap-corruption crash, got %v %q", buggy.Output.Term, buggy.Output.Detail)
	}
}

// TestDeoptStaleLocal checks oj-deopt-stale: guard frame states built
// from block-entry locals resume the interpreter with stale values
// after a trap.
func TestDeoptStaleLocal(t *testing.T) {
	src := `class T {
        boolean z = true;
        int probe(int x) {
            int acc = x;
            acc += 5;          // current value differs from block entry
            if (z) { return acc; }
            return acc * 100;
        }
        void main() {
            // Heat probe with z == true so the branch is speculated.
            int s = 0;
            for (int i = 0; i < 3000; i++) { s += probe(i); }
            z = false;         // violate the speculation -> deopt
            print(probe(7));
            print(s);
        }
    }`
	bp := compileSrc(t, src)
	run := func(set bugs.Set) *vm.Output {
		return vm.Run(vm.Config{
			JIT:             New(Options{MaxTier: 2, Bugs: set}),
			EntryThresholds: []int64{200, 800},
			OSRThresholds:   []int64{300, 1000},
		}, bp).Output
	}
	good := run(nil)
	interp := vm.Run(vm.Config{}, bp).Output
	if !good.Equivalent(interp) {
		t.Fatalf("correct deopt path broken: %v vs %v", good.Lines, interp.Lines)
	}
	buggy := run(bugs.NewSet("oj-deopt-stale"))
	if buggy.Equivalent(interp) {
		t.Skip("stale-local deopt bug not triggered by this shape (needs a frame-state-live local)")
	}
	t.Logf("stale deopt produced %v (correct %v)", buggy.Lines, interp.Lines)
}

// TestRegisterAliasing checks hs-ra-highpressure: under pressure a
// long-lived register and a mid-function temporary share one slot,
// clobbering values.
func TestRegisterAliasing(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("class T { long f(long pa, long pb) { ")
	for i := 0; i < 90; i++ {
		name := fmt.Sprintf("v%d", i)
		fmt.Fprintf(&sb, "long %s = pa * %d + pb; pa += %s; ", name, 1+i%9, name)
	}
	sb.WriteString("return pa; } void main() { print(f(1L, 2L)); } }")
	bp := compileSrc(t, sb.String())

	interp := vm.Run(vm.Config{}, bp).Output
	buggy := vm.Run(vm.Config{
		JIT: New(Options{MaxTier: 2, Bugs: bugs.NewSet("hs-ra-highpressure")}),
		Policy: &vm.ForcedPolicy{
			Tier:       2,
			Choice:     func(string, int64) vm.ForceChoice { return vm.ForceCompile },
			DisableOSR: true,
		},
	}, bp).Output
	if buggy.Equivalent(interp) {
		t.Fatal("register aliasing did not change behaviour under high pressure")
	}
	t.Logf("aliasing produced %v/%v (correct %v)", buggy.Term, buggy.Lines, interp.Lines)
}
