package jit

import (
	"artemis/internal/bugs"
	"artemis/internal/jit/ir"
)

// globalCodeMotion schedules values into better blocks. The honest
// part sinks pure single-use-block values into later blocks when that
// does not increase loop depth (partial dead-code elimination).
//
// The injected defect hs-gcm-store-sink replicates JDK-8288975, the
// paper's flagship bug (Section 2.2): a field increment
// (load f; add; store f) sitting in an outer loop is moved into a
// directly nested inner loop when the pass's static frequency
// estimates tie. The inner loop executes more iterations than the
// outer loop body, so the increment is applied too many times and the
// program output changes — a silent mis-compilation.
//
// It returns the number of values moved.
func globalCodeMotion(f *ir.Func, bugSet bugs.Set) int {
	f.ComputeLoops()
	idom := f.Dominators()

	// useBlocks[v] = blocks containing a use of v (args, ctrl, frame
	// states).
	useBlocks := map[*ir.Value]map[*ir.Block]bool{}
	addUse := func(v *ir.Value, b *ir.Block) {
		m := useBlocks[v]
		if m == nil {
			m = map[*ir.Block]bool{}
			useBlocks[v] = m
		}
		m[b] = true
	}
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			for i, a := range v.Args {
				if v.Op == ir.OpPhi {
					// A phi use happens at the end of the i-th pred.
					addUse(a, b.Preds[i])
				} else {
					addUse(a, b)
				}
			}
			if v.FS != nil {
				for _, a := range v.FS.Locals {
					addUse(a, b)
				}
				for _, a := range v.FS.Stack {
					addUse(a, b)
				}
			}
		}
		if b.Ctrl != nil {
			addUse(b.Ctrl, b)
		}
	}

	// Honest sinking.
	moved := 0
	for _, b := range f.Blocks {
		for _, v := range append([]*ir.Value(nil), b.Values...) {
			if !v.Pure() || v.Trapping() || v.Op == ir.OpPhi || v.Op == ir.OpParam || v == b.Ctrl {
				continue
			}
			uses := useBlocks[v]
			if len(uses) != 1 {
				continue
			}
			var dst *ir.Block
			for u := range uses {
				dst = u
			}
			if dst == b || !ir.Dominates(idom, b, dst) || dst.LoopDepth > b.LoopDepth {
				continue
			}
			// Args must dominate the new position; they dominate b,
			// and b dominates dst, so this holds automatically.
			ir.MoveValueFront(v, dst)
			moved++
			// Note: moving after phis of dst; uses within dst are
			// always later because SSA uses in the same block follow
			// the def in our effect order only for effectful values.
			// Pure consumers are position-independent until lowering,
			// which schedules by dependency.
		}
	}

	if bugSet.Has("hs-gcm-store-sink") {
		moved += buggyStoreSink(f)
	}
	return moved
}

// buggyStoreSink implements the JDK-8288975 replica. It looks for
//
//	loop L:            ── outer
//	  loop M: ...      ── directly nested inner loop, no calls/stores
//	  x = GetField f   ── in a block of L outside M
//	  y = Add/Sub(x, k)
//	  PutField f, y
//
// and, "because the frequency estimates tie", moves the whole
// increment cluster into M's latch block, multiplying its executions.
func buggyStoreSink(f *ir.Func) int {
	f.ComputeUses()
	for _, l := range f.Loops {
		// Find a direct child loop of l.
		var inner *ir.Loop
		for _, m := range f.Loops {
			if m.Parent == l.ID {
				inner = m
				break
			}
		}
		if inner == nil {
			continue
		}
		// Inner loop must be free of calls and field stores (so the
		// motion looks "legal" to the buggy heuristic).
		if loopHasOp(f, inner, ir.OpCall) || loopHasOp(f, inner, ir.OpPutField) {
			continue
		}
		// The fictitious tie: both loops get the same static estimate
		// when the inner loop's header frequency is the standard 10x
		// of its preheader — always true here, which is the bug.
		latch := latchOf(f, inner)
		if latch == nil {
			continue
		}
		for _, b := range f.Blocks {
			if !l.Blocks[b.ID] || inner.Blocks[b.ID] {
				continue
			}
			for _, v := range append([]*ir.Value(nil), b.Values...) {
				if v.Op != ir.OpPutField {
					continue
				}
				add := v.Args[0]
				if (add.Op != ir.OpAdd && add.Op != ir.OpSub) || add.Block != b || add.Uses != 1 {
					continue
				}
				load := add.Args[0]
				if load.Op != ir.OpGetField || load.Aux != v.Aux || load.Block != b || load.Uses != 1 {
					continue
				}
				k := add.Args[1]
				if k.Op != ir.OpConst && inner.Blocks[k.Block.ID] {
					continue // operand not available in the inner loop
				}
				if l.Blocks[k.Block.ID] && k.Op != ir.OpConst {
					continue // keep it simple: constant increments only
				}
				// Move load+add+store to the inner loop's latch.
				ir.MoveValue(load, latch)
				ir.MoveValue(add, latch)
				ir.MoveValue(v, latch)
				return 3 // one miscompiled cluster is plenty
			}
		}
	}
	return 0
}

// latchOf returns a block inside l with a back edge to its header.
func latchOf(f *ir.Func, l *ir.Loop) *ir.Block {
	for _, b := range f.Blocks {
		if !l.Blocks[b.ID] {
			continue
		}
		for _, s := range b.Succs {
			if s == l.Header {
				return b
			}
		}
	}
	return nil
}
