package jit

import (
	"testing"

	"artemis/internal/vm"
)

// hotLoopSrc runs long enough to tier up under the tiny thresholds the
// tiered tests use, with array traffic so tier-2 passes have work.
const hotLoopSrc = `class T {
    long work(int[] a, int n) {
        long acc = 0;
        for (int i = 0; i < a.length; i++) { a[i] = i * 3; }
        for (int r = 0; r < n; r++) {
            for (int i = 0; i < a.length; i++) { acc += a[i] + r; }
        }
        return acc;
    }
    void main() {
        int[] a = new int[64];
        long t = 0;
        for (int k = 0; k < 300; k++) { t += work(a, 40); }
        print(t);
    }
}`

// TestExecStatsWithJIT drives a tiered run with stats on and checks
// the compilation machinery is fully accounted: the interp/compiled
// step split is exact, compilations land in per-tier buckets, and
// tier-2 pass counters surface through the compile result.
func TestExecStatsWithJIT(t *testing.T) {
	bp := compileSrc(t, hotLoopSrc)
	cfg := vm.Config{
		Name:            "tiered",
		JIT:             New(Options{MaxTier: 2}),
		EntryThresholds: []int64{20, 100},
		OSRThresholds:   []int64{30, 150},
		CollectStats:    true,
		RecordTrace:     true,
	}
	res := vm.Run(cfg, bp)
	if res.Output.Term != vm.TermNormal {
		t.Fatalf("run ended %v (%s)", res.Output.Term, res.Output.Detail)
	}
	s := res.Stats
	if s == nil {
		t.Fatal("nil Stats on a CollectStats run")
	}
	if s.InterpSteps+s.CompiledSteps != res.Steps {
		t.Errorf("step split %d + %d != total %d", s.InterpSteps, s.CompiledSteps, res.Steps)
	}
	if s.CompiledSteps == 0 {
		t.Error("tiered hot loop charged no compiled steps")
	}
	if s.TotalCompilations() != res.Compilations {
		t.Errorf("TotalCompilations=%d, VM counted %d", s.TotalCompilations(), res.Compilations)
	}
	if len(s.CompilationsByTier) != 2 || s.CompilationsByTier[1] == 0 {
		t.Errorf("CompilationsByTier = %v, want both tiers exercised", s.CompilationsByTier)
	}
	if s.OSRCompilations == 0 {
		t.Error("hot inner loops produced no OSR compilations")
	}
	if len(s.OptsByPass) == 0 {
		t.Error("tier-2 compilations reported no per-pass optimization counts")
	}
	// The counted loops over a[i] must feed bounds-check elimination.
	if s.OptsByPass["bce"] == 0 {
		t.Errorf("OptsByPass = %v, want bce > 0 for counted array loops", s.OptsByPass)
	}
	if s.CompileNanos <= 0 {
		t.Error("CompileNanos not accumulated")
	}
	if res.Trace.MaxTemp() != 2 {
		t.Errorf("trace MaxTemp = %d, want 2", res.Trace.MaxTemp())
	}
	if res.Trace.HottestMethod() == "" {
		t.Error("tiered run has no hottest method")
	}
}

// TestCompileStatsProvider: compiled code exposes its CompileStats via
// the optional interface, independent of any VM run.
func TestCompileStatsProvider(t *testing.T) {
	bp := compileSrc(t, hotLoopSrc)
	c := New(Options{MaxTier: 2})
	mi := -1
	for i, m := range bp.Methods {
		if m.Name == "work" {
			mi = i
		}
	}
	if mi < 0 {
		t.Fatal("method work not found")
	}
	code, cerr := c.Compile(vm.CompileRequest{Prog: bp, MethodIndex: mi, Tier: 2})
	if cerr != nil {
		t.Fatalf("compile failed: %v", cerr.Msg)
	}
	p, ok := code.(vm.CompileStatsProvider)
	if !ok {
		t.Fatal("compiled code does not implement CompileStatsProvider")
	}
	cs := p.CompileStats()
	if cs == nil || cs.Tier != 2 || cs.Nanos <= 0 {
		t.Fatalf("CompileStats = %+v, want tier 2 with positive Nanos", cs)
	}
	if len(cs.OptsByPass) == 0 {
		t.Error("tier-2 compile reported no pass counts")
	}
}
