package jit

import (
	"fmt"
	"sync"
	"testing"

	"artemis/internal/bugs"
	"artemis/internal/vm"
)

// TestConcurrentDisablePasses pins the refactor that replaced the
// mutable package global DebugDisablePass with per-compiler
// Options.DisablePasses threaded through vm.Config: two VMs running
// concurrently each disable a different pass, and each pipeline must
// skip only its own. Under the old global, one goroutine's bisection
// probe would silently change what the other compiled — exactly the
// interference `go test -race ./internal/jit` exists to catch here.
func TestConcurrentDisablePasses(t *testing.T) {
	// The flagship GCM store-sink shape: correct output 20, buggy 80.
	bp := compileSrc(t, `class T {
        int l = 0;
        void g() {
            for (int i = 0; i < 10; i++) {
                for (int w = 0; w < 13; w += 4) { }
                l += 2;
            }
        }
        void main() { g(); print(l); }
    }`)
	set := bugs.NewSet("hs-gcm-store-sink")
	forced := func() vm.Policy {
		return &vm.ForcedPolicy{
			Tier:       2,
			Choice:     func(string, int64) vm.ForceChoice { return vm.ForceCompile },
			DisableOSR: true,
		}
	}

	const rounds = 20
	var wg sync.WaitGroup
	wg.Add(2)
	errs := make(chan error, 2*rounds)

	// Goroutine A disables gcm: the store sink cannot happen, output
	// stays correct, and "gcm" must be absent from its pass stats.
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			res := vm.Run(vm.Config{
				JIT:           New(Options{MaxTier: 2, Bugs: set}),
				Policy:        forced(),
				DisablePasses: []string{"gcm"},
				CollectStats:  true,
			}, bp)
			if res.Output.Term != vm.TermNormal || res.Output.Lines[0] != "20" {
				errs <- errf("disable gcm: got %v %v, want 20 (gcm ran despite being disabled)", res.Output.Term, res.Output.Lines)
				return
			}
			if _, ran := res.Stats.OptsByPass["gcm"]; ran {
				errs <- errf("disable gcm: OptsByPass records gcm rewrites: %v", res.Stats.OptsByPass)
				return
			}
		}
	}()

	// Goroutine B disables gvn: gcm still runs, the seeded bug still
	// sinks the increment, and "gcm" must appear in its pass stats
	// (the buggy sink applies at least one move, so the n==0 skip in
	// ExecStats folding cannot hide it).
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			res := vm.Run(vm.Config{
				JIT:           New(Options{MaxTier: 2, Bugs: set}),
				Policy:        forced(),
				DisablePasses: []string{"gvn"},
				CollectStats:  true,
			}, bp)
			if res.Output.Term != vm.TermNormal || res.Output.Lines[0] != "80" {
				errs <- errf("disable gvn: got %v %v, want 80 (another goroutine's disable set leaked in)", res.Output.Term, res.Output.Lines)
				return
			}
			if _, ran := res.Stats.OptsByPass["gcm"]; !ran {
				errs <- errf("disable gvn: gcm missing from OptsByPass: %v", res.Stats.OptsByPass)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }
