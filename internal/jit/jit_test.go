package jit

import (
	"strings"
	"testing"

	"artemis/internal/bugs"
	"artemis/internal/bytecode"
	"artemis/internal/lang/parser"
	"artemis/internal/lang/sem"
	"artemis/internal/vm"
)

func compileSrc(t *testing.T, src string) *bytecode.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	bp, err := bytecode.Compile(info)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return bp
}

// runModes executes src under (a) pure interpretation, (b) everything
// forced through tier 1, (c) everything forced through tier 2, and
// (d) counter-driven tiered execution with tiny thresholds, asserting
// all four observable outputs agree. This is the compilation-space
// consistency oracle applied to our own VM.
func runModes(t *testing.T, src string) *vm.Output {
	t.Helper()
	bp := compileSrc(t, src)

	interp := vm.Run(vm.Config{Name: "interp"}, bp)

	for _, tier := range []int{1, 2} {
		comp := New(Options{MaxTier: tier})
		cfg := vm.Config{
			Name: "forced",
			JIT:  comp,
			Policy: &vm.ForcedPolicy{
				Tier:       tier,
				Choice:     func(string, int64) vm.ForceChoice { return vm.ForceCompile },
				DisableOSR: true,
			},
		}
		res := vm.Run(cfg, bp)
		if !res.Output.Equivalent(interp.Output) {
			t.Errorf("tier %d disagrees with interpreter:\n interp: %v %q %v\n tier%d: %v %q %v",
				tier, interp.Output.Term, interp.Output.Detail, interp.Output.Lines,
				tier, res.Output.Term, res.Output.Detail, res.Output.Lines)
		}
	}

	tiered := vm.Run(vm.Config{
		Name:            "tiered",
		JIT:             New(Options{MaxTier: 2}),
		EntryThresholds: []int64{20, 100},
		OSRThresholds:   []int64{30, 150},
	}, bp)
	if !tiered.Output.Equivalent(interp.Output) {
		t.Errorf("tiered run disagrees with interpreter:\n interp: %v %q %v\n tiered: %v %q %v",
			interp.Output.Term, interp.Output.Detail, interp.Output.Lines,
			tiered.Output.Term, tiered.Output.Detail, tiered.Output.Lines)
	}
	return interp.Output
}

func TestCompiledArithmetic(t *testing.T) {
	runModes(t, `class T {
        long work(int n) {
            long acc = 7L;
            for (int i = 1; i < n; i++) {
                acc += i * 3;
                acc ^= acc << 13;
                acc -= acc >>> 7;
                acc *= 31;
                acc %= 1000000007L;
                if (acc < 0L) { acc = -acc; }
            }
            return acc;
        }
        void main() {
            print(work(1000));
            print(work(1));
        }
    }`)
}

func TestCompiledIntWrapping(t *testing.T) {
	runModes(t, `class T {
        int f(int x) {
            int y = x * 2147483647;
            y += 2147483647;
            y <<= 3;
            y = y >>> 2;
            y /= 3;
            return y - 2147483648 / (x | 1);
        }
        void main() {
            int s = 0;
            for (int i = -50; i < 50; i++) { s ^= f(i); }
            print(s);
        }
    }`)
}

func TestCompiledArraysAndFields(t *testing.T) {
	runModes(t, `class T {
        int[] data = new int[]{9, 4, 7, 1, 0, 3};
        long sum = 0L;
        void accumulate() {
            for (int i = 0; i < data.length; i++) {
                sum += data[i];
                data[i] = data[i] * 2 + 1;
            }
        }
        void main() {
            for (int r = 0; r < 200; r++) { accumulate(); }
            print(sum);
            for (int i = 0; i < data.length; i++) { print(data[i]); }
        }
    }`)
}

func TestCompiledCallsAndRecursion(t *testing.T) {
	runModes(t, `class T {
        int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
        int dispatch(int k, int v) {
            switch (k % 5) {
            case 0: return v + 1;
            case 1: return v * 2;
            case 2: return v - 3;
            case 3: return v ^ 21;
            default: return -v;
            }
            return 0; // unreachable; the checker treats switch conservatively
        }
        void main() {
            print(fib(18));
            int acc = 0;
            for (int i = 0; i < 500; i++) { acc = dispatch(i, acc); }
            print(acc);
        }
    }`)
}

func TestCompiledExceptionBehaviour(t *testing.T) {
	out := runModes(t, `class T {
        int z = 0;
        int risky(int i) {
            if (i == 777) { return i / z; }
            return i;
        }
        void main() {
            long acc = 0;
            for (int i = 0; i < 1000; i++) { acc += risky(i); }
            print(acc);
        }
    }`)
	if out.Term != vm.TermException || !strings.Contains(out.Detail, "ArithmeticException") {
		t.Fatalf("want ArithmeticException, got %v %q", out.Term, out.Detail)
	}
}

func TestCompiledBoundsCheck(t *testing.T) {
	out := runModes(t, `class T {
        void main() {
            int[] a = new int[10];
            long acc = 0;
            for (int i = 0; i < 2000; i++) { a[i % 10] = i; acc += a[(i * 7) % 10]; }
            print(acc);
            // Now go out of bounds deliberately.
            for (int i = 0; i <= a.length; i++) { acc += a[i]; }
            print(acc);
        }
    }`)
	if out.Term != vm.TermException || !strings.Contains(out.Detail, "ArrayIndexOutOfBounds") {
		t.Fatalf("want AIOOBE, got %v %q", out.Term, out.Detail)
	}
}

func TestOSRLongLoop(t *testing.T) {
	bp := compileSrc(t, `class T {
        void main() {
            long acc = 1;
            for (int i = 0; i < 100000; i++) {
                acc = acc * 31 + i;
                acc %= 94906249L;
            }
            print(acc);
        }
    }`)
	interp := vm.Run(vm.Config{Name: "interp"}, bp)
	jitted := vm.Run(vm.Config{
		Name:            "tiered",
		JIT:             New(Options{MaxTier: 2}),
		EntryThresholds: []int64{100, 1000},
		OSRThresholds:   []int64{100, 1000},
		RecordTrace:     true,
	}, bp)
	if !jitted.Output.Equivalent(interp.Output) {
		t.Fatalf("OSR run differs: %q vs %q (%s)", interp.Output.Lines, jitted.Output.Lines, jitted.Output.Detail)
	}
	if jitted.OSREntries == 0 {
		t.Error("expected an OSR entry for the hot loop")
	}
	if jitted.Trace.MaxTemp() == 0 {
		t.Error("trace should show compiled execution")
	}
}

func TestSpeculationAndDeopt(t *testing.T) {
	// The paper's Figure 2 mechanism in miniature: o() is pre-invoked
	// thousands of times with z == true, so the optimizing tier
	// speculates on the early return; the final call with z == false
	// must deoptimize, not misbehave.
	bp := compileSrc(t, `class T {
        boolean z = false;
        int l = 0;
        void g() { l += 2; }
        void o() { if (z) { return; } g(); }
        void p() {
            z = true;
            for (int u = 0; u < 9676; u++) { o(); }
            z = false;
            o();
            print(l);
        }
        void main() { p(); p(); }
    }`)
	interp := vm.Run(vm.Config{Name: "interp"}, bp)
	jitted := vm.Run(vm.Config{
		Name:            "tiered",
		JIT:             New(Options{MaxTier: 2}),
		EntryThresholds: []int64{500, 2000},
		OSRThresholds:   []int64{500, 2000},
		RecordTrace:     true,
	}, bp)
	if !jitted.Output.Equivalent(interp.Output) {
		t.Fatalf("deopt run differs: interp=%v jit=%v (%s)", interp.Output.Lines, jitted.Output.Lines, jitted.Output.Detail)
	}
	if jitted.Deopts == 0 {
		t.Error("expected at least one deoptimization from the violated speculation")
	}
	if jitted.Output.Lines[0] != "2" || jitted.Output.Lines[1] != "4" {
		t.Errorf("unexpected output %v", jitted.Output.Lines)
	}
}

func TestForcedPolicyChoicesChangeTrace(t *testing.T) {
	bp := compileSrc(t, `class T {
        int f(int x) { return x * 2 + 1; }
        void main() {
            int acc = 0;
            for (int i = 0; i < 10; i++) { acc = f(acc); }
            print(acc);
        }
    }`)
	comp := New(Options{MaxTier: 1})
	run := func(choice func(string, int64) vm.ForceChoice) *vm.Result {
		return vm.Run(vm.Config{
			Name:        "forced",
			JIT:         comp,
			RecordTrace: true,
			Policy:      &vm.ForcedPolicy{Choice: choice, DisableOSR: true},
		}, bp)
	}
	allInterp := run(func(string, int64) vm.ForceChoice { return vm.ForceInterpret })
	mixed := run(func(m string, call int64) vm.ForceChoice {
		if m == "f" && call%2 == 0 {
			return vm.ForceCompile
		}
		return vm.ForceInterpret
	})
	if !allInterp.Output.Equivalent(mixed.Output) {
		t.Fatal("different compilation choices must not change output")
	}
	if allInterp.Trace.Key() == mixed.Trace.Key() {
		t.Error("different compilation choices should yield different JIT traces")
	}
}

// TestBuggyTiersDetectable sanity-checks a few injected defects: each
// must leave interpretation untouched and corrupt only compiled runs.
func TestBuggyTiersDetectable(t *testing.T) {
	cases := []struct {
		bug string
		src string
	}{
		{"hs-gvn-across-store", `class T {
            int f = 1;
            int g(boolean c) {
                int a = f;         // load in the entry block
                if (c) { f = a + 5; }
                int b = f;         // load in the join block, after a store
                return a + b;
            }
            void main() { int s = 0; for (int i = 0; i < 10; i++) { f = i; s += g(i % 2 == 0); } print(s); }
        }`},
		{"oj-lvp-across-call", `class T {
            int f = 1;
            void bump() { f += 3; }
            int g() { int a = f; bump(); return a + f; }
            void main() { int s = 0; for (int i = 0; i < 10; i++) { s += g(); } print(s); }
        }`},
		{"oj-cg-l2i-skip", `class T {
            int g(long x, int s) { return (int)(x << s); }
            void main() {
                long v = 123456789L;
                int sh = 31;
                // Comparisons observe the full untruncated slot, so the
                // missing l2i shows up as the wrong sign here.
                print(g(v, sh) < 0);
            }
        }`},
		{"hs-cg-ushr-wide", `class T {
            long g(long x, int s) { return x >>> s; }
            void main() { print(g(-1L, 40)); }
        }`},
	}
	for _, tc := range cases {
		t.Run(tc.bug, func(t *testing.T) {
			bp := compileSrc(t, tc.src)
			good := vm.Run(vm.Config{Name: "interp"}, bp)
			if good.Output.Term != vm.TermNormal {
				t.Fatalf("interp run failed: %v %s", good.Output.Term, good.Output.Detail)
			}
			buggy := vm.Run(vm.Config{
				Name: "buggy",
				JIT:  New(Options{MaxTier: 2, Bugs: bugs.NewSet(tc.bug)}),
				Policy: &vm.ForcedPolicy{
					Tier:       2,
					Choice:     func(string, int64) vm.ForceChoice { return vm.ForceCompile },
					DisableOSR: true,
				},
			}, bp)
			if buggy.Output.Equivalent(good.Output) {
				t.Errorf("bug %s not observable: output %v", tc.bug, buggy.Output.Lines)
			}
		})
	}
}

func TestCompilerCrashBugsCrashOnlyWhenCompiling(t *testing.T) {
	src := `class T {
        int go(int a, int b, int c, int d) {
            int acc = 0;
            for (int i = 0; i < 3; i++) {
                for (int j = 0; j < 3; j++) {
                    for (int k = 0; k < 3; k++) { acc += helper(a + i, b + j); }
                }
            }
            return acc + c + d;
        }
        int helper(int x, int y) { return x * y + 1; }
        void main() { print(go(1, 2, 3, 4)); }
    }`
	bp := compileSrc(t, src)
	good := vm.Run(vm.Config{Name: "interp"}, bp)
	if good.Output.Term != vm.TermNormal {
		t.Fatalf("interp run failed: %v", good.Output.Term)
	}
	buggy := vm.Run(vm.Config{
		Name: "buggy",
		JIT:  New(Options{MaxTier: 2, Bugs: bugs.NewSet("hs-loopopt-nest")}),
		Policy: &vm.ForcedPolicy{
			Tier:       2,
			Choice:     func(string, int64) vm.ForceChoice { return vm.ForceCompile },
			DisableOSR: true,
		},
	}, bp)
	if buggy.Output.Term != vm.TermCrash {
		t.Fatalf("want compiler crash, got %v %q", buggy.Output.Term, buggy.Output.Detail)
	}
	if !strings.Contains(buggy.Output.Detail, "Ideal Loop Optimization") {
		t.Errorf("crash should name the component: %q", buggy.Output.Detail)
	}
}
