package jit

import (
	"artemis/internal/bugs"
	"artemis/internal/jit/ir"
)

// loopOptimize is the "ideal loop optimization" stage: loop-invariant
// code motion of pure values plus field-load hoisting when the loop
// provably contains no interfering store. Injected defects:
//
//   - hs-loopopt-nest (crash): assertion on deep nests containing
//     calls — the exact shape JoNM's MI mutator manufactures.
//   - oj-vector-legality (crash): the vectorizer legality check (run
//     here, where loop structure is known) asserts on loops with many
//     array stores.
//
// It returns the number of values hoisted out of loops.
func loopOptimize(f *ir.Func, bugSet bugs.Set) int {
	f.ComputeLoops()

	for _, l := range f.Loops {
		if bugSet.Has("hs-loopopt-nest") && l.Depth >= 3 && loopHasOp(f, l, ir.OpCall) {
			crashf("Ideal Loop Optimization, C2",
				"loop tree assert: depth-%d nest contains calls", l.Depth)
		}
		if bugSet.Has("oj-vector-legality") {
			stores := 0
			for _, b := range f.Blocks {
				if !l.Blocks[b.ID] {
					continue
				}
				for _, v := range b.Values {
					if v.Op == ir.OpAStore || v.Op == ir.OpAStoreNoCheck {
						stores++
					}
				}
			}
			if stores >= 7 {
				crashf("Loop Vectorization", "legality check: %d candidate stores", stores)
			}
		}
	}

	// Hoist from innermost loops outward so values can bubble up
	// through multiple levels.
	loops := append([]*ir.Loop(nil), f.Loops...)
	for i := range loops {
		for j := i + 1; j < len(loops); j++ {
			if loops[j].Depth > loops[i].Depth {
				loops[i], loops[j] = loops[j], loops[i]
			}
		}
	}
	hoists := 0
	for _, l := range loops {
		hoists += hoistLoop(f, l)
	}
	f.RemoveDead()
	return hoists
}

func loopHasOp(f *ir.Func, l *ir.Loop, op ir.Op) bool {
	for _, b := range f.Blocks {
		if !l.Blocks[b.ID] {
			continue
		}
		for _, v := range b.Values {
			if v.Op == op {
				return true
			}
		}
	}
	return false
}

// preheaderOf returns the unique out-of-loop predecessor of the loop
// header when it is an unconditional block (our bytecode compiler's
// canonical loop shape), or nil when hoisting is not safely possible.
func preheaderOf(f *ir.Func, l *ir.Loop) *ir.Block {
	var pre *ir.Block
	for _, p := range l.Header.Preds {
		if l.Blocks[p.ID] {
			continue // back edge
		}
		if pre != nil {
			return nil // multiple entries
		}
		pre = p
	}
	if pre == nil || len(pre.Succs) != 1 {
		return nil
	}
	return pre
}

func hoistLoop(f *ir.Func, l *ir.Loop) int {
	pre := preheaderOf(f, l)
	if pre == nil {
		return 0
	}

	// Interference summary for field-load hoisting.
	hasCall := false
	storedFields := map[int64]bool{}
	for _, b := range f.Blocks {
		if !l.Blocks[b.ID] {
			continue
		}
		for _, v := range b.Values {
			switch v.Op {
			case ir.OpCall:
				hasCall = true
			case ir.OpPutField:
				storedFields[v.Aux] = true
			}
		}
	}

	inLoop := func(v *ir.Value) bool { return l.Blocks[v.Block.ID] }
	hoisted := map[*ir.Value]bool{}
	invariantArg := func(a *ir.Value) bool { return !inLoop(a) || hoisted[a] }

	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			if !l.Blocks[b.ID] {
				continue
			}
			for _, v := range append([]*ir.Value(nil), b.Values...) {
				if hoisted[v] || v.Op == ir.OpPhi || v == b.Ctrl {
					continue
				}
				movable := false
				switch {
				case v.Pure() && !v.Trapping():
					movable = true
				case v.Op == ir.OpGetField && !hasCall && !storedFields[v.Aux]:
					// Loads are hoistable when nothing in the loop can
					// store the field (calls conservatively might).
					movable = true
				}
				if !movable {
					continue
				}
				ok := true
				for _, a := range v.Args {
					if !invariantArg(a) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				ir.MoveValue(v, pre)
				hoisted[v] = true
				changed = true
			}
		}
	}
	return len(hoisted)
}

// shapeChecks hosts compile-time assertion bugs that are pure shape
// detectors on the final-ish IR: escape analysis and the
// JIT-interpreter transition check.
func shapeChecks(f *ir.Func, bugSet bugs.Set) {
	if bugSet.Has("hs-ea-phi") {
		for _, b := range f.Blocks {
			for _, v := range b.Values {
				if v.Op != ir.OpPhi {
					continue
				}
				for _, a := range v.Args {
					if a.Op == ir.OpNewArr {
						crashf("Escape Analysis, C2",
							"allocation v%d merges into phi v%d", a.ID, v.ID)
					}
				}
			}
		}
	}
	if bugSet.Has("oj-jitint-guard") {
		guards, calls := 0, 0
		for _, b := range f.Blocks {
			for _, v := range b.Values {
				switch v.Op {
				case ir.OpGuard:
					guards++
				case ir.OpCall:
					calls++
				}
			}
		}
		if guards >= 2 && calls >= 1 {
			crashf("Other JIT Components",
				"JIT-INT transition map: %d guards with live calls", guards)
		}
	}
	if bugSet.Has("oj-gvp-join") {
		for _, b := range f.Blocks {
			for _, v := range b.Values {
				if v.Op != ir.OpPhi || len(v.Args) < 3 {
					continue
				}
				fieldLoads := map[int64]int{}
				for _, a := range v.Args {
					if a.Op == ir.OpGetField {
						fieldLoads[a.Aux]++
					}
				}
				for _, n := range fieldLoads {
					if n >= 2 {
						crashf("Global Value Propagation",
							"constraint merge on phi v%d with repeated field loads", v.ID)
					}
				}
			}
		}
	}
}
