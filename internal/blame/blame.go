// Package blame automates the paper's manual triage step (§4.2): given
// a reproducer program and a symptom predicate, it localizes a finding
// to (a) the minimal set of optimizing-tier passes whose disabling
// makes the symptom disappear, and (b) a minimal compilation-space
// point — the smallest forced-compilation method set that still
// triggers the divergence (delta debugging over
// vm.ForcedPolicy.Methods). An extra probe runs the compiler with SSA
// invariant validation on, so a "pass mis-compiled" report can be told
// apart from "pass broke the IR and a later stage mis-lowered it".
//
// Everything here is a pure function of (program, symptom, config):
// probes run fresh single-use VMs, consume a deterministic run budget,
// and visit candidates in canonical order, so blame results are
// byte-identical across campaign worker counts and across resumes.
package blame

import (
	"sort"
	"strings"

	"artemis/internal/bugs"
	"artemis/internal/bytecode"
	"artemis/internal/jit"
	"artemis/internal/lang/ast"
	"artemis/internal/lang/sem"
	"artemis/internal/profiles"
	"artemis/internal/vm"
)

// DefaultBudget caps probe VM runs per localization when
// Config.Budget is 0. Pass bisection needs at most 2+len(jit.PassNames)
// runs and the space shrink 1+len(methods); the cap exists so a
// pathological reproducer (many methods, slow runs) cannot stall a
// campaign's reducer goroutine indefinitely.
const DefaultBudget = 96

// Config parameterizes one localization.
type Config struct {
	// Profile supplies the VM configuration the finding manifested
	// under.
	Profile *profiles.Profile
	// Bugs is the seeded-defect set active when the finding was made.
	Bugs bugs.Set
	// StepLimit bounds each probe run (0 = the VM default).
	StepLimit int64
	// Budget caps total probe VM runs (0 = DefaultBudget).
	Budget int
}

// Symptom decides whether one probe run still exhibits the finding
// being localized. The harness builds it from the finding's dedup
// signature (crashes) or from an interpreted reference (miscompiles).
type Symptom func(out *vm.Output) bool

// Pass-localization verdicts.
const (
	// VerdictLocalized: GuiltyPasses is a 1-minimal set whose
	// disabling makes the symptom disappear.
	VerdictLocalized = "localized"
	// VerdictOutsidePipeline: the symptom survives with every
	// optimizing pass disabled — the defect lives in SSA construction,
	// lowering/codegen, the runtime, or a non-pass compiler stage.
	VerdictOutsidePipeline = "outside-pass-pipeline"
	// VerdictNotReproduced: the reproducer no longer triggers the
	// symptom under the default policy (nothing to bisect).
	VerdictNotReproduced = "not-reproduced"
	// VerdictBudget: the probe budget ran out mid-bisection.
	VerdictBudget = "budget-exhausted"
	// VerdictNoOptTier: the profile has no optimizing tier, so there
	// is no pass pipeline to bisect (e.g. artlike, MaxTier 1).
	VerdictNoOptTier = "no-optimizing-tier"
)

// Space-localization verdicts.
const (
	// VerdictMinimal: MinimalMethods is a 1-minimal forced-compilation
	// set still triggering the symptom.
	VerdictMinimal = "minimal"
	// VerdictNotInForcedSpace: force-compiling every method does not
	// trigger the symptom — it needs counters, OSR, or deoptimization
	// behaviour the forced point does not produce.
	VerdictNotInForcedSpace = "not-in-forced-space"
)

// Result is one finding's localization, serialized as blame.json in
// corpus entries.
type Result struct {
	// GuiltyPasses is the minimal pass set (canonical pipeline order)
	// whose disabling makes the symptom disappear; nil unless
	// PassVerdict is VerdictLocalized.
	GuiltyPasses []string `json:"guilty_passes,omitempty"`
	PassVerdict  string   `json:"pass_verdict"`

	// MinimalMethods is the minimal forced-compilation method set that
	// still triggers the symptom; nil unless SpaceVerdict is
	// VerdictMinimal.
	MinimalMethods []string `json:"minimal_methods,omitempty"`
	SpaceVerdict   string   `json:"space_verdict"`

	// IRInvariant holds the SSA-validator crash detail when compiling
	// the reproducer with invariant checks breaks — i.e. some pass
	// corrupts the IR itself rather than emitting wrong-but-valid code.
	IRInvariant string `json:"ir_invariant,omitempty"`

	// Runs is the number of probe VM runs spent.
	Runs int `json:"runs"`
}

// PassLabel renders the guilty set for tables: "gcm", "gvn+licm", or
// a parenthesized verdict when no pass was localized.
func (r *Result) PassLabel() string {
	if r == nil {
		return "(not localized)"
	}
	if r.PassVerdict == VerdictLocalized && len(r.GuiltyPasses) > 0 {
		return strings.Join(r.GuiltyPasses, "+")
	}
	return "(" + r.PassVerdict + ")"
}

// engine carries one localization's shared state.
type engine struct {
	cfg     Config
	bp      *bytecode.Program
	symptom Symptom
	budget  int
	runs    int
}

// Localize bisects prog's finding, spending at most cfg.Budget probe
// runs. It never mutates shared state and is safe to call from any
// single goroutine (probes build fresh VMs).
func Localize(prog *ast.Program, symptom Symptom, cfg Config) *Result {
	budget := cfg.Budget
	if budget <= 0 {
		budget = DefaultBudget
	}
	e := &engine{
		cfg:     cfg,
		bp:      bytecode.MustCompile(sem.MustAnalyze(prog)),
		symptom: symptom,
		budget:  budget,
	}
	res := &Result{}
	e.bisectPasses(res)
	e.shrinkSpace(res)
	res.Runs = e.runs
	return res
}

// run executes one probe: the profile VM with the configured defect
// set, optionally with passes disabled, IR validation, or a policy
// override. Returns nil once the budget is exhausted.
func (e *engine) run(disable []string, policy vm.Policy, validateIR bool) *vm.Output {
	if e.runs >= e.budget {
		return nil
	}
	e.runs++
	cfg := e.cfg.Profile.VMConfigWithBugs(e.cfg.Bugs)
	cfg.StepLimit = e.cfg.StepLimit
	cfg.DisablePasses = disable
	cfg.ValidateIR = validateIR
	if policy != nil {
		cfg.Policy = policy
	}
	return vm.Run(cfg, e.bp).Output
}

// bisectPasses finds the minimal guilty pass set: verify the symptom
// reproduces, check it disappears with the whole pipeline off, then
// greedily re-enable passes one at a time (canonical order), keeping a
// pass out of the guilty set whenever re-enabling it leaves the
// symptom gone. The result is 1-minimal: removing any single guilty
// pass from the disable set brings the symptom back.
func (e *engine) bisectPasses(res *Result) {
	if e.cfg.Profile.MaxTier < 2 {
		res.PassVerdict = VerdictNoOptTier
		return
	}
	base := e.run(nil, nil, false)
	if base == nil {
		res.PassVerdict = VerdictBudget
		return
	}
	if !e.symptom(base) {
		res.PassVerdict = VerdictNotReproduced
		return
	}

	// One probe with SSA invariant validation: does some pass break
	// the IR itself on this reproducer?
	if v := e.run(nil, nil, true); v != nil && v.Term == vm.TermCrash &&
		strings.Contains(v.Detail, "assertion failure in IR Validator") {
		res.IRInvariant = v.Detail
	}

	allOff := e.run(jit.PassNames, nil, false)
	if allOff == nil {
		res.PassVerdict = VerdictBudget
		return
	}
	if e.symptom(allOff) {
		res.PassVerdict = VerdictOutsidePipeline
		return
	}

	guilty := append([]string(nil), jit.PassNames...)
	for _, p := range jit.PassNames {
		trial := without(guilty, p)
		if len(trial) == len(guilty) {
			continue // already dropped
		}
		out := e.run(trial, nil, false)
		if out == nil {
			res.PassVerdict = VerdictBudget
			return
		}
		if !e.symptom(out) {
			guilty = trial // p is innocent: symptom stays gone without it
		}
	}
	res.GuiltyPasses = guilty
	res.PassVerdict = VerdictLocalized
}

// shrinkSpace delta-debugs the forced-compilation method set: start
// from the "compile everything" point of the compilation space; if it
// triggers the symptom, greedily flip methods back to interpretation,
// keeping each flip that preserves the symptom. The surviving set is a
// 1-minimal compilation-space point for the finding.
func (e *engine) shrinkSpace(res *Result) {
	methods := make([]string, 0, len(e.bp.Methods))
	for i, m := range e.bp.Methods {
		if i == e.bp.ClinitIndex {
			continue // <clinit> runs outside policy dispatch
		}
		methods = append(methods, m.Name)
	}
	sort.Strings(methods)

	forced := func(compiled map[string]bool) vm.Policy {
		choices := make(map[string]vm.ForceChoice, len(methods))
		for _, m := range methods {
			if compiled[m] {
				choices[m] = vm.ForceCompile
			} else {
				choices[m] = vm.ForceInterpret
			}
		}
		return &vm.ForcedPolicy{Tier: e.cfg.Profile.MaxTier, Methods: choices, DisableOSR: true}
	}

	compiled := make(map[string]bool, len(methods))
	for _, m := range methods {
		compiled[m] = true
	}
	out := e.run(nil, forced(compiled), false)
	if out == nil {
		res.SpaceVerdict = VerdictBudget
		return
	}
	if !e.symptom(out) {
		res.SpaceVerdict = VerdictNotInForcedSpace
		return
	}
	for _, m := range methods {
		compiled[m] = false
		out := e.run(nil, forced(compiled), false)
		if out == nil {
			res.SpaceVerdict = VerdictBudget
			return
		}
		if !e.symptom(out) {
			compiled[m] = true // needed: flipping it loses the symptom
		}
	}
	for _, m := range methods {
		if compiled[m] {
			res.MinimalMethods = append(res.MinimalMethods, m)
		}
	}
	res.SpaceVerdict = VerdictMinimal
}

// without returns s minus one occurrence of x (s unchanged when x is
// absent).
func without(s []string, x string) []string {
	out := make([]string, 0, len(s))
	for _, v := range s {
		if v != x {
			out = append(out, v)
		}
	}
	return out
}
