package blame

import (
	"reflect"
	"testing"

	"artemis/internal/bugs"
	"artemis/internal/bytecode"
	"artemis/internal/lang/ast"
	"artemis/internal/lang/parser"
	"artemis/internal/lang/sem"
	"artemis/internal/profiles"
	"artemis/internal/vm"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

// divergesFrom builds the miscompile symptom the harness uses: the
// probe output differs from an interpreted reference.
func divergesFrom(t *testing.T, prog *ast.Program) Symptom {
	t.Helper()
	bp := bytecode.MustCompile(sem.MustAnalyze(prog))
	ref := vm.Run(vm.Config{}, bp).Output
	if ref.Term != vm.TermNormal {
		t.Fatalf("reference run did not finish normally: %v %q", ref.Term, ref.Detail)
	}
	return func(out *vm.Output) bool { return !out.Equivalent(ref) }
}

func mustGet(t *testing.T, name string) *profiles.Profile {
	t.Helper()
	p, err := profiles.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// gcmSrc is the flagship JDK-8288975 shape (outer loop + counting
// inner loop + field increment). The harness's findings come from
// invocation-hot mutants, so g is pre-invoked past the tier-2 entry
// threshold; the final calls run the buggy tier-2 code and the printed
// value changes (20 -> 80: the increment multiplies by the inner trip
// count).
const gcmSrc = `class T {
	int l = 0;
	void g() {
		for (int i = 0; i < 10; i++) {
			for (int w = 0; w < 13; w += 4) { }
			l += 2;
		}
	}
	void main() {
		for (int r = 0; r < 2000; r++) { l = 0; g(); }
		print(l);
	}
}`

func TestBlameGCMStoreSink(t *testing.T) {
	prog := parse(t, gcmSrc)
	res := Localize(prog, divergesFrom(t, prog), Config{
		Profile: mustGet(t, "hotspotlike"),
		Bugs:    bugs.NewSet("hs-gcm-store-sink"),
	})
	if res.PassVerdict != VerdictLocalized {
		t.Fatalf("pass verdict %q, want localized (runs %d)", res.PassVerdict, res.Runs)
	}
	if !reflect.DeepEqual(res.GuiltyPasses, []string{"gcm"}) {
		t.Errorf("guilty passes %v, want [gcm]", res.GuiltyPasses)
	}
	if res.SpaceVerdict != VerdictMinimal {
		t.Fatalf("space verdict %q, want minimal", res.SpaceVerdict)
	}
	if !reflect.DeepEqual(res.MinimalMethods, []string{"g"}) {
		t.Errorf("minimal methods %v, want [g]", res.MinimalMethods)
	}
	if res.IRInvariant != "" {
		t.Errorf("store sink preserves IR invariants, got %q", res.IRInvariant)
	}
}

func TestBlameGVNAcrossStore(t *testing.T) {
	// Load f, store f in a branch, load f again at the merge: local
	// value propagation cannot forward across blocks, so the second
	// load survives to GVN, which (buggily) numbers it equal to the
	// first load despite the intervening store.
	src := `class T {
		int f = 0;
		int step(int b) {
			int a = f;
			if (b == 1) { f = a + 1; }
			return f;
		}
		void main() {
			int s = 0;
			for (int i = 0; i < 3000; i++) { s += step(1); }
			print(s);
			print(f);
		}
	}`
	prog := parse(t, src)
	res := Localize(prog, divergesFrom(t, prog), Config{
		Profile: mustGet(t, "hotspotlike"),
		Bugs:    bugs.NewSet("hs-gvn-across-store"),
	})
	if res.PassVerdict != VerdictLocalized {
		t.Fatalf("pass verdict %q, want localized", res.PassVerdict)
	}
	if !reflect.DeepEqual(res.GuiltyPasses, []string{"gvn"}) {
		t.Errorf("guilty passes %v, want [gvn]", res.GuiltyPasses)
	}
	if res.SpaceVerdict != VerdictMinimal {
		t.Fatalf("space verdict %q, want minimal", res.SpaceVerdict)
	}
}

func TestBlameCodegenOutsidePipeline(t *testing.T) {
	// hs-cg-ushr-wide lives in codegen, not in any disableable pass:
	// long >>> with a non-constant count gets a 32-bit shift mask.
	src := `class T {
		void main() {
			long s = 0L;
			long x = 123456789123L;
			for (int i = 0; i < 3000; i++) {
				s += x >>> (i & 63);
			}
			print(s);
		}
	}`
	prog := parse(t, src)
	res := Localize(prog, divergesFrom(t, prog), Config{
		Profile: mustGet(t, "hotspotlike"),
		Bugs:    bugs.NewSet("hs-cg-ushr-wide"),
	})
	if res.PassVerdict != VerdictOutsidePipeline {
		t.Fatalf("pass verdict %q, want outside-pass-pipeline (guilty %v)", res.PassVerdict, res.GuiltyPasses)
	}
	if res.SpaceVerdict != VerdictMinimal {
		t.Fatalf("space verdict %q, want minimal", res.SpaceVerdict)
	}
}

func TestBlameNoOptimizingTier(t *testing.T) {
	// artlike has MaxTier 1: no optimizing pipeline exists to bisect,
	// but the space shrink still works against the tier-1 JIT.
	src := `class T {
		int f(int x, int c) { return x >>> c; }
		void main() { print(f(0 - 8, 1)); }
	}`
	prog := parse(t, src)
	res := Localize(prog, divergesFrom(t, prog), Config{
		Profile: mustGet(t, "artlike"),
		Bugs:    bugs.NewSet("art-t1-ushr-int"),
	})
	if res.PassVerdict != VerdictNoOptTier {
		t.Fatalf("pass verdict %q, want no-optimizing-tier", res.PassVerdict)
	}
	if res.SpaceVerdict != VerdictMinimal {
		t.Fatalf("space verdict %q, want minimal", res.SpaceVerdict)
	}
	if !reflect.DeepEqual(res.MinimalMethods, []string{"f"}) {
		t.Errorf("minimal methods %v, want [f]", res.MinimalMethods)
	}
}

func TestBlameNotReproduced(t *testing.T) {
	// Correct VM: the symptom never fires, so there is nothing to
	// bisect and the forced point does not trigger either.
	prog := parse(t, gcmSrc)
	res := Localize(prog, divergesFrom(t, prog), Config{
		Profile: mustGet(t, "hotspotlike"),
		Bugs:    nil,
	})
	if res.PassVerdict != VerdictNotReproduced {
		t.Fatalf("pass verdict %q, want not-reproduced", res.PassVerdict)
	}
	if res.SpaceVerdict != VerdictNotInForcedSpace {
		t.Fatalf("space verdict %q, want not-in-forced-space", res.SpaceVerdict)
	}
}

func TestBlameBudgetExhausted(t *testing.T) {
	prog := parse(t, gcmSrc)
	res := Localize(prog, divergesFrom(t, prog), Config{
		Profile: mustGet(t, "hotspotlike"),
		Bugs:    bugs.NewSet("hs-gcm-store-sink"),
		Budget:  1,
	})
	if res.PassVerdict != VerdictBudget || res.SpaceVerdict != VerdictBudget {
		t.Fatalf("verdicts %q/%q, want budget-exhausted/budget-exhausted", res.PassVerdict, res.SpaceVerdict)
	}
	if res.Runs != 1 {
		t.Errorf("runs %d, want exactly the budget (1)", res.Runs)
	}
}

// TestBlameDeterministic pins that localization is a pure function of
// its inputs: repeated runs agree byte-for-byte, which is what makes
// campaign blame output worker-count-independent.
func TestBlameDeterministic(t *testing.T) {
	prog := parse(t, gcmSrc)
	cfg := Config{Profile: mustGet(t, "hotspotlike"), Bugs: bugs.NewSet("hs-gcm-store-sink")}
	a := Localize(prog, divergesFrom(t, prog), cfg)
	b := Localize(prog, divergesFrom(t, prog), cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("localization not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}
