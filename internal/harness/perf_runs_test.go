package harness

import (
	"testing"

	"artemis/internal/lang/parser"
	"artemis/internal/vm"
)

// TestPerfFindingRunAccounting pins the run accounting of the
// performance-finding path: when CollectMetrics already captured the
// compiled run's JIT trace, attribution must reuse it — no extra
// tracing rerun, no extra Runs increment. Only the metrics-off path
// is allowed exactly one attribution rerun.
func TestPerfFindingRunAccounting(t *testing.T) {
	prof := profile(t, "hotspotlike")
	o := Options{Profile: prof}.withDefaults()

	progAST, err := parser.Parse(`class T {
        int work() {
            int a = 0;
            for (int i = 0; i < 30000; i++) { a += i; }
            return a;
        }
        void main() { print(work()); }
    }`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	bp := Compile(progAST)

	// Pretend the compiled run timed out while the interpreted one
	// finished — the Performance symptom.
	out := &vm.Output{Term: vm.TermTimeout, Steps: 1 << 22}
	intOut := &vm.Output{Term: vm.TermNormal, Steps: 1 << 16}

	// Capture a real trace the way a metered campaign run would.
	cfg := prof.VMConfig(false)
	cfg.RecordTrace = true
	trace := vm.Run(cfg, bp).Trace
	if trace == nil {
		t.Fatal("traced run returned no JIT trace")
	}

	res := &Result{Runs: 3}
	f := perfFinding(o, nil, bp, 1, 0, out, intOut, trace, res)
	if res.Runs != 3 {
		t.Errorf("with a captured trace, perfFinding performed %d extra runs, want 0", res.Runs-3)
	}
	if f.Kind != Performance {
		t.Errorf("finding kind = %v, want Performance", f.Kind)
	}
	if f.Component == "unknown" || f.Component == "" {
		t.Errorf("finding not attributed to a hot method: component = %q", f.Component)
	}

	// Metrics off: the trace is absent and attribution needs exactly
	// one rerun.
	res = &Result{Runs: 3}
	perfFinding(o, nil, bp, 1, 0, out, intOut, nil, res)
	if res.Runs != 4 {
		t.Errorf("without a trace, perfFinding performed %d extra runs, want exactly 1", res.Runs-3)
	}
}
