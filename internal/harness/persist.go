// Campaign persistence: the seed-outcome journal that makes
// RunCampaign crash-safe and resumable. Every merged seed is framed
// as one JSON record (see internal/journal for the on-disk framing)
// carrying exactly what the deterministic merger consumes — the
// Result, the comparative-baseline verdict, and the per-seed metrics
// delta — so replaying journaled records through the same seed-order
// merger reproduces CampaignStats and the -metrics JSON byte for
// byte, at any worker count.
//
// The journal's first record is a header fingerprinting the campaign
// configuration; resuming under a different configuration would
// silently splice two incompatible campaigns, so a mismatch is an
// error instead.

package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"artemis/internal/journal"
)

// journalVersion guards the record schema; bump on incompatible
// changes so a stale journal fails loudly instead of mis-merging.
const journalVersion = 1

// journalHeader fingerprints the campaign configuration a journal
// belongs to. Every field that changes per-seed outcomes is included;
// Workers and Progress are not (they cannot change outcomes — that is
// the deterministic-merge invariant).
type journalHeader struct {
	Kind           string `json:"kind"` // "header"
	Version        int    `json:"version"`
	Profile        string `json:"profile"`
	SeedBase       int64  `json:"seed_base"`
	MaxIter        int    `json:"max_iter"`
	StepLimit      int64  `json:"step_limit"`
	Buggy          bool   `json:"buggy"`
	Comparative    bool   `json:"comparative"`
	ConfirmAndFix  bool   `json:"confirm_and_fix"`
	CollectMetrics bool   `json:"collect_metrics"`
}

// seedRecord is one journaled seed outcome.
type seedRecord struct {
	Kind     string  `json:"kind"` // "seed"
	Idx      int     `json:"idx"`
	SeedID   int64   `json:"seed_id"`
	Res      *Result `json:"res"`
	TradHit  bool    `json:"trad_hit,omitempty"`
	TradRuns int     `json:"trad_runs,omitempty"`
}

// headerFor builds the configuration fingerprint (opts.Options must
// already have defaults applied, so equivalent explicit and defaulted
// configurations fingerprint identically).
func headerFor(opts CampaignOptions) journalHeader {
	return journalHeader{
		Kind:           "header",
		Version:        journalVersion,
		Profile:        opts.Options.Profile.Name,
		SeedBase:       opts.SeedBase,
		MaxIter:        opts.Options.MaxIter,
		StepLimit:      opts.Options.StepLimit,
		Buggy:          opts.Options.Buggy,
		Comparative:    opts.Comparative,
		ConfirmAndFix:  opts.Options.ConfirmAndFix,
		CollectMetrics: opts.Options.CollectMetrics,
	}
}

func appendJSON(w *journal.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return w.Append(payload)
}

// appendSeedRecord journals one freshly computed seed outcome.
func appendSeedRecord(w *journal.Writer, opts CampaignOptions, out seedOutcome) error {
	return appendJSON(w, seedRecord{
		Kind:     "seed",
		Idx:      out.idx,
		SeedID:   opts.SeedBase + int64(out.idx),
		Res:      out.res,
		TradHit:  out.tradHit,
		TradRuns: out.tradRuns,
	})
}

// openCampaignJournal opens (or resumes) the campaign journal and
// returns the outcomes cached from a previous run, keyed by seed
// index. On a fresh journal the header is written immediately so even
// a campaign killed on seed 0 leaves a resumable file.
func openCampaignJournal(opts CampaignOptions) (map[int]seedOutcome, *journal.Writer, error) {
	hdr := headerFor(opts)
	if !opts.Resume {
		w, err := journal.Create(opts.JournalPath)
		if err != nil {
			return nil, nil, err
		}
		if err := appendJSON(w, hdr); err != nil {
			w.Close()
			return nil, nil, err
		}
		return nil, w, nil
	}

	if _, err := os.Stat(opts.JournalPath); errors.Is(err, os.ErrNotExist) {
		// Resuming a journal that never got written is a fresh start:
		// the previous attempt died before creating the file (or never
		// ran). This makes "-resume" safe to pass unconditionally.
		opts.Resume = false
		return openCampaignJournal(opts)
	}
	rec, w, err := journal.Resume(opts.JournalPath)
	if err != nil {
		return nil, nil, err
	}
	if len(rec.Records) == 0 {
		// The file exists but not even the header survived (torn on
		// the very first write). Start over within the same file.
		if err := appendJSON(w, hdr); err != nil {
			w.Close()
			return nil, nil, err
		}
		return nil, w, nil
	}

	var prev journalHeader
	if err := json.Unmarshal(rec.Records[0], &prev); err != nil || prev.Kind != "header" {
		w.Close()
		return nil, nil, fmt.Errorf("journal %s: first record is not a campaign header", opts.JournalPath)
	}
	if prev != hdr {
		w.Close()
		return nil, nil, fmt.Errorf("journal %s: campaign configuration mismatch: journal was written by %+v, resume requested %+v",
			opts.JournalPath, prev, hdr)
	}

	cached := make(map[int]seedOutcome, len(rec.Records)-1)
	for i, payload := range rec.Records[1:] {
		var sr seedRecord
		if err := json.Unmarshal(payload, &sr); err != nil {
			w.Close()
			return nil, nil, fmt.Errorf("journal %s: seed record %d: %w", opts.JournalPath, i, err)
		}
		if sr.Kind != "seed" || sr.Res == nil {
			w.Close()
			return nil, nil, fmt.Errorf("journal %s: seed record %d is malformed (kind=%q)", opts.JournalPath, i, sr.Kind)
		}
		cached[sr.Idx] = seedOutcome{
			idx:      sr.Idx,
			res:      sr.Res,
			tradHit:  sr.TradHit,
			tradRuns: sr.TradRuns,
			cached:   true,
		}
	}
	return cached, w, nil
}
