// Package harness implements the paper's validation loop (Algorithm
// 1), the discrepancy classification of Section 4.2, the comparative
// "traditional approach" baseline of Section 4.3, and the campaign
// machinery that regenerates Tables 1, 2 and 4.
package harness

import (
	"fmt"
	"math/bits"
	"math/rand"
	"regexp"
	"strings"

	"artemis/internal/bugs"
	"artemis/internal/bytecode"
	"artemis/internal/jonm"
	"artemis/internal/lang/ast"
	"artemis/internal/lang/sem"
	"artemis/internal/profiles"
	"artemis/internal/vm"
)

// Compile lowers an AST program to bytecode (panicking on internal
// errors: harness inputs are always generator/mutator outputs, which
// are valid by construction).
func Compile(p *ast.Program) *bytecode.Program {
	return bytecode.MustCompile(sem.MustAnalyze(p))
}

// FindingKind classifies a discrepancy per Section 4.2.
type FindingKind int

const (
	Miscompilation FindingKind = iota
	CrashFinding
	Performance
)

func (k FindingKind) String() string {
	switch k {
	case Miscompilation:
		return "mis-compilation"
	case CrashFinding:
		return "crash"
	case Performance:
		return "performance"
	}
	return "unknown"
}

// Finding is one detected JIT-compiler bug manifestation.
type Finding struct {
	Kind    FindingKind
	Profile string
	// Component is the crash component for crashes, the hottest
	// (offending) method for performance findings, and "" for
	// mis-compilations.
	Component string
	Signature string // dedup key
	Detail    string
	SeedID    int64
	MutantID  int

	// Confirmed: the discrepancy reproduces on an independent rerun
	// (the analogue of developers reproducing the report).
	Confirmed bool
	// FixedBy names the single catalog defect whose removal makes the
	// symptom disappear (the analogue of a bug fix landing), or "".
	FixedBy string
}

var digitRun = regexp.MustCompile(`0x[0-9a-fA-F]+|\d+`)

// signatureOf builds a dedup signature: crashes are keyed by component
// plus a digit-normalized message, like dedup by stack trace;
// mis-compilations and performance bugs are keyed by their coarse
// symptom (the paper likewise cannot attribute unfixed mis-compilations
// to components — Table 2 covers crashes only).
func signatureOf(kind FindingKind, profile, component, detail string) string {
	switch kind {
	case CrashFinding:
		norm := digitRun.ReplaceAllString(detail, "#")
		if strings.Contains(detail, "badbeef") {
			// Heap corruption with the store-barrier marker word is a
			// different root cause than other corrupting writes; keep
			// the two apart like differing crash signatures would.
			norm += "|barrier"
		}
		return fmt.Sprintf("crash|%s|%s|%s", profile, component, norm)
	case Performance:
		// Keyed by the offending method and the slowdown-magnitude
		// bucket so two different performance pathologies in one
		// profile occupy distinct slots instead of deduping together.
		return fmt.Sprintf("perf|%s|%s|%s", profile, component, detail)
	default:
		return fmt.Sprintf("miscompile|%s|%s", profile, detail)
	}
}

// componentOf extracts the JIT component from a crash detail string.
//
// A single detail can carry several markers — a compiler assertion
// whose message mentions the SIGSEGV it averted, a GC corruption
// report quoting the faulting assertion — so classification follows
// an explicit most-specific-first precedence rather than whichever
// substring check happens to run first:
//
//  1. "assertion failure in <component>:" — names the exact component
//     whose invariant fired; always the most precise attribution.
//  2. "GC: heap corruption" — the collector's own integrity check,
//     pinpointing Garbage Collection even if the message embeds other
//     markers.
//  3. "SIGSEGV" / "uncommon trap stub" — a fault while executing
//     generated code, attributable only to Code Execution at large.
//  4. Anything else — "Other JIT Components".
//
// This order is part of the signature contract (signatures embed the
// component), so changing it re-keys every crash corpus: don't,
// without bumping journalVersion.
func componentOf(detail string) string {
	if i := strings.Index(detail, "assertion failure in "); i >= 0 {
		rest := detail[i+len("assertion failure in "):]
		if j := strings.Index(rest, ":"); j >= 0 {
			return rest[:j]
		}
		return rest
	}
	if strings.Contains(detail, "GC: heap corruption") {
		return "Garbage Collection"
	}
	if strings.Contains(detail, "SIGSEGV") || strings.Contains(detail, "uncommon trap stub") {
		return "Code Execution"
	}
	return "Other JIT Components"
}

// Options configures Validate and campaigns.
type Options struct {
	Profile *profiles.Profile
	// MaxIter is the number of mutants per seed (Algorithm 1; the
	// paper uses 8).
	MaxIter int
	// StepLimit is the per-run step budget (the 2-minute analogue).
	StepLimit int64
	// Buggy selects the seeded-defect VM (true for campaigns; false
	// to validate the validator).
	Buggy bool
	// BugSet overrides the profile bug set when non-nil (used by
	// fix-verification and ablations).
	BugSet bugs.Set
	// Rand seeds mutation randomness.
	Rand *rand.Rand
	// Mutators / DisableSkeletons / MethodProb forward to jonm for
	// ablation studies.
	Mutators         []jonm.MutatorName
	DisableSkeletons bool
	// ConfirmAndFix enables the reproduce + fix-bisection analysis on
	// findings (slower).
	ConfirmAndFix bool
	// CollectMetrics enables per-run ExecStats and JIT-trace
	// collection, aggregated into Result.Metrics (and, by campaigns,
	// into CampaignStats.Metrics).
	CollectMetrics bool
	// TraceLimit overrides the VM's retained-trace cap for metered
	// runs (0 = VM default). Truncation affects memory only, never
	// metric values.
	TraceLimit int

	// scratch, when non-nil, is the reusable per-worker VM memory
	// threaded into every run this Options performs. Purely a
	// performance knob: results are byte-identical with or without it.
	// Must not be shared between concurrently executing Validate calls
	// (see vm.Scratch).
	scratch *vm.Scratch
}

func (o Options) withDefaults() Options {
	if o.MaxIter == 0 {
		o.MaxIter = 8
	}
	if o.StepLimit == 0 {
		// ~0.5 s of interpretation: the stand-in for the paper's
		// 2-minute wall-clock cutoff, scaled to simulator speed.
		o.StepLimit = 120_000_000
	}
	if o.Rand == nil {
		o.Rand = rand.New(rand.NewSource(1))
	}
	return o
}

func (o Options) bugSet() bugs.Set {
	if o.BugSet != nil {
		return o.BugSet
	}
	if o.Buggy {
		return o.Profile.BugSet()
	}
	return nil
}

func (o Options) mutationConfig() *jonm.Config {
	return &jonm.Config{
		Min:              o.Profile.SynMin,
		Max:              o.Profile.SynMax,
		StepMax:          o.Profile.SynStepMax,
		Rand:             o.Rand,
		Mutators:         o.Mutators,
		DisableSkeletons: o.DisableSkeletons,
	}
}

// runProgram executes bp on the profile VM with the given bug set.
func runProgram(o Options, set bugs.Set, bp *bytecode.Program) *vm.Result {
	cfg := o.Profile.VMConfigWithBugs(set)
	cfg.StepLimit = o.StepLimit
	cfg.Scratch = o.scratch
	if o.CollectMetrics {
		cfg.CollectStats = true
		cfg.RecordTrace = true
		cfg.TraceLimit = o.TraceLimit
	}
	return vm.Run(cfg, bp)
}

// Result is one seed's validation outcome.
type Result struct {
	SeedDiscarded bool // seed timed out; nothing comparable
	Findings      []Finding
	Runs          int // VM invocations performed
	Mutants       int // mutants generated
	// MutantSources pairs 1:1 with Findings: MutantSources[i] is the
	// source of the mutant that triggered Findings[i], or "" when the
	// finding has no mutant (the seed's own default run crashed).
	MutantSources []string
	// Metrics aggregates execution metrics and exploration coverage
	// over this seed's runs; nil unless Options.CollectMetrics.
	Metrics *SeedMetrics

	// seedBP is the seed's compiled program, kept so downstream stages
	// (the comparative baseline in runSeed) reuse it instead of
	// compiling the seed a second time. Nil when Validate bailed before
	// compiling (worker panic).
	seedBP *bytecode.Program
}

// Validate implements Algorithm 1 for one seed program: run the seed
// with its default JIT-trace, then MAX_ITER JoNM mutants with theirs,
// and report every output discrepancy as a JIT-compiler bug.
func Validate(seedProg *ast.Program, seedID int64, o Options) *Result {
	o = o.withDefaults()
	set := o.bugSet()
	res := &Result{}
	var meter *seedMeter
	if o.CollectMetrics {
		meter = newSeedMeter()
		defer func() { res.Metrics = meter.finish() }()
	}
	record := func(r *vm.Result) *vm.Result {
		if meter != nil {
			meter.record(r)
		}
		res.Runs++
		return r
	}

	// The seed is analyzed and compiled exactly once; every mutant
	// below reuses this work (AnalyzeDelta re-checks only mutated
	// methods, CompileDelta re-emits only mutated bytecode).
	seedInfo := sem.MustAnalyze(seedProg)
	seedBP := bytecode.MustCompile(seedInfo)
	res.seedBP = seedBP
	ref := record(runProgram(o, set, seedBP)).Output
	if ref.Term == vm.TermTimeout {
		res.SeedDiscarded = true
		return res
	}
	// A seed whose *default* run already crashes the VM is a finding
	// on its own (it exercised the JIT by itself).
	if ref.Term == vm.TermCrash {
		res.Findings = append(res.Findings, newFinding(o, set, seedBP, seedID, -1, ref, ref))
		res.MutantSources = append(res.MutantSources, "") // no mutant: the seed itself crashed
		return res
	}

	mcfg := o.mutationConfig()
	mcfg.SeedInfo = seedInfo
	for i := 0; i < o.MaxIter; i++ {
		mutant, rep, err := jonm.Mutate(seedProg, mcfg)
		if err != nil {
			// Mutator defect; surface loudly in tests, skip in runs.
			panic(err)
		}
		res.Mutants++
		mbp := bytecode.MustCompileDelta(rep.Info, seedBP, rep.Mutated)
		outRes := record(runProgram(o, set, mbp))
		out := outRes.Output
		if out.Term == vm.TermTimeout {
			// Distinguish "mutant is just hot" from a JIT-induced
			// performance collapse: rerun without JIT.
			intCfg := o.Profile.InterpreterConfig()
			intCfg.StepLimit = o.StepLimit
			intCfg.Scratch = o.scratch
			if o.CollectMetrics {
				intCfg.CollectStats = true
				intCfg.RecordTrace = true
				intCfg.TraceLimit = o.TraceLimit
			}
			intOut := record(vm.Run(intCfg, mbp)).Output
			if intOut.Term != vm.TermTimeout {
				f := perfFinding(o, set, mbp, seedID, i, out, intOut, outRes.Trace, res)
				res.Findings = append(res.Findings, f)
				res.MutantSources = append(res.MutantSources, ast.Print(mutant))
			}
			continue
		}
		if out.Equivalent(ref) {
			continue
		}
		f := newFinding(o, set, mbp, seedID, i, ref, out)
		res.Findings = append(res.Findings, f)
		res.MutantSources = append(res.MutantSources, ast.Print(mutant))
	}
	return res
}

// perfFinding builds a Performance finding for a mutant whose compiled
// run exceeded the step budget while its interpreted run finished. The
// dedup signature carries the offending (hottest) method and the
// slowdown-magnitude bucket, so two distinct performance bugs — say an
// OSR recompile storm in one method and a code-motion pessimization in
// another — no longer collapse into a single per-profile slot.
func perfFinding(o Options, set bugs.Set, mbp *bytecode.Program, seedID int64, mutantID int, out, intOut *vm.Output, trace *vm.JITTrace, res *Result) Finding {
	if trace == nil {
		// Metrics were off, so the compiled run kept no trace; rerun
		// once with tracing to attribute the slowdown.
		cfg := o.Profile.VMConfigWithBugs(set)
		cfg.StepLimit = o.StepLimit
		cfg.Scratch = o.scratch
		cfg.RecordTrace = true
		trace = vm.Run(cfg, mbp).Trace
		res.Runs++
	}
	hot := "unknown"
	if trace != nil && trace.HottestMethod() != "" {
		hot = trace.HottestMethod()
	}
	bucket := stepRatioBucket(out.Steps, intOut.Steps)
	return Finding{
		Kind:      Performance,
		Profile:   o.Profile.Name,
		Component: hot,
		Detail: fmt.Sprintf("compiled run exceeds step budget; interpreted run finishes (hot method %s, slowdown >= 2^%d)",
			hot, bucket),
		SeedID:    seedID,
		MutantID:  mutantID,
		Signature: signatureOf(Performance, o.Profile.Name, hot, fmt.Sprintf("ratio2^%d", bucket)),
	}
}

// stepRatioBucket buckets compiled/interp step ratios at powers of two
// so jitter in either step count cannot split one bug across
// signatures.
func stepRatioBucket(compiled, interp int64) int {
	if interp <= 0 {
		interp = 1
	}
	r := compiled / interp
	if r < 1 {
		return 0
	}
	return bits.Len64(uint64(r)) - 1
}

// newFinding classifies a discrepancy and optionally confirms it and
// bisects the responsible defect. bp is the already-compiled program
// that produced out; confirmation and bisection rerun it directly.
func newFinding(o Options, set bugs.Set, bp *bytecode.Program, seedID int64, mutantID int, ref, out *vm.Output) Finding {
	f := Finding{
		Profile:  o.Profile.Name,
		SeedID:   seedID,
		MutantID: mutantID,
		Detail:   out.Detail,
	}
	if out.Term == vm.TermCrash {
		f.Kind = CrashFinding
		f.Component = componentOf(out.Detail)
	} else {
		f.Kind = Miscompilation
		f.Detail = fmt.Sprintf("%s-vs-%s", ref.Term, out.Term)
	}
	f.Signature = signatureOf(f.Kind, o.Profile.Name, f.Component, f.Detail)

	if o.ConfirmAndFix {
		// Confirm: rerun and compare the normalized symptom (exact
		// keys would be needlessly brittle for crash diagnostics).
		again := runProgram(o, set, bp).Output
		if f.Kind == CrashFinding {
			f.Confirmed = again.Term == vm.TermCrash &&
				signatureOf(CrashFinding, o.Profile.Name, componentOf(again.Detail), again.Detail) == f.Signature
		} else {
			f.Confirmed = again.Key() == out.Key()
		}
		// Fix bisection: disable one catalog defect at a time; if the
		// symptom disappears, that defect is "fixed" by the report.
		for id := range set {
			reduced := bugs.Set{}
			for other := range set {
				if other != id {
					reduced[other] = true
				}
			}
			fixed := runProgram(o, reduced, bp).Output
			symptomGone := false
			if f.Kind == CrashFinding {
				symptomGone = fixed.Term != vm.TermCrash
			} else {
				symptomGone = fixed.Equivalent(ref)
			}
			if symptomGone {
				f.FixedBy = id
				break
			}
		}
	}
	return f
}

// TraditionalDiscrepancy implements the baseline of Section 4.3: run
// the seed with its default JIT-trace, then again with every method
// force-compiled before its first call (the -Xjit:count=0 analogue),
// and compare. No mutants, no compilation-space exploration.
func TraditionalDiscrepancy(seedBP *bytecode.Program, o Options) (bool, int) {
	o = o.withDefaults()
	set := o.bugSet()
	ref := runProgram(o, set, seedBP).Output
	runs := 1
	if ref.Term == vm.TermTimeout {
		return false, runs
	}
	cfg := o.Profile.VMConfigWithBugs(set)
	cfg.StepLimit = o.StepLimit
	cfg.Scratch = o.scratch
	cfg.Policy = &vm.ForcedPolicy{
		Tier:   o.Profile.MaxTier,
		Choice: func(string, int64) vm.ForceChoice { return vm.ForceCompile },
	}
	full := vm.Run(cfg, seedBP).Output
	runs++
	if full.Term == vm.TermTimeout {
		return false, runs
	}
	return !full.Equivalent(ref), runs
}
