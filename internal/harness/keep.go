// Reduction predicates. Reducing a bug-triggering program only makes
// sense under a predicate that re-validates the finding on every
// candidate; this file is the single place such predicates are built,
// shared by cmd/mjreduce (interactive reduction) and the campaign
// auto-reducer (corpus.go), so the two can never drift apart on what
// "still triggers the bug" means.

package harness

import (
	"fmt"

	"artemis/internal/bugs"
	"artemis/internal/lang/ast"
	"artemis/internal/profiles"
	"artemis/internal/reduce"
	"artemis/internal/vm"
)

// KeepConfig builds re-validation predicates for reduction. Each
// predicate evaluation costs two VM runs (the seeded-defect VM with
// its default JIT policy, and pure interpretation as the reference),
// each bounded by StepLimit.
type KeepConfig struct {
	Profile *profiles.Profile
	// Bugs is the defect set the predicate hunts in; nil reduces
	// against the correct VM (only useful for harness self-tests).
	Bugs bugs.Set
	// StepLimit bounds each predicate run (0 = the Options default).
	StepLimit int64
}

func (kc KeepConfig) limit() int64 {
	if kc.StepLimit != 0 {
		return kc.StepLimit
	}
	return Options{}.withDefaults().StepLimit
}

// runJIT executes p on the seeded-defect VM with its default policy.
func (kc KeepConfig) runJIT(p *ast.Program) *vm.Output {
	cfg := kc.Profile.VMConfigWithBugs(kc.Bugs)
	cfg.StepLimit = kc.limit()
	return vm.Run(cfg, Compile(p)).Output
}

// runBoth executes p on the seeded-defect VM and the interpreter.
func (kc KeepConfig) runBoth(p *ast.Program) (jit, interp *vm.Output) {
	bp := Compile(p)
	jitCfg := kc.Profile.VMConfigWithBugs(kc.Bugs)
	jitCfg.StepLimit = kc.limit()
	jit = vm.Run(jitCfg, bp).Output
	intCfg := kc.Profile.InterpreterConfig()
	intCfg.StepLimit = kc.limit()
	interp = vm.Run(intCfg, bp).Output
	return jit, interp
}

// Crash keeps programs that crash the seeded-defect VM (any crash).
func (kc KeepConfig) Crash() reduce.Predicate {
	return func(p *ast.Program) bool {
		return kc.runJIT(p).Term == vm.TermCrash
	}
}

// Diff keeps programs whose seeded-defect output differs from the
// interpreted reference (timeouts are inconclusive and never kept).
func (kc KeepConfig) Diff() reduce.Predicate {
	return func(p *ast.Program) bool {
		jit, interp := kc.runBoth(p)
		if jit.Term == vm.TermTimeout || interp.Term == vm.TermTimeout {
			return false
		}
		return !jit.Equivalent(interp)
	}
}

// CrashSignature keeps programs that crash with exactly the given
// dedup signature — the predicate the campaign auto-reducer uses so a
// reduced reproducer provably still triggers the same finding.
func (kc KeepConfig) CrashSignature(sig string) reduce.Predicate {
	return func(p *ast.Program) bool {
		out := kc.runJIT(p)
		if out.Term != vm.TermCrash {
			return false
		}
		return signatureOf(CrashFinding, kc.Profile.Name, componentOf(out.Detail), out.Detail) == sig
	}
}

// MiscompileSignature keeps programs whose seeded-defect run diverges
// from interpretation with exactly the given mis-compilation
// signature. The interpreted run stands in for the original seed
// reference: JoNM mutants are semantics-preserving, so for a genuine
// mis-compilation the two references agree.
func (kc KeepConfig) MiscompileSignature(sig string) reduce.Predicate {
	return func(p *ast.Program) bool {
		jit, interp := kc.runBoth(p)
		if jit.Term == vm.TermTimeout || interp.Term == vm.TermTimeout {
			return false
		}
		if jit.Equivalent(interp) {
			return false
		}
		detail := fmt.Sprintf("%s-vs-%s", interp.Term, jit.Term)
		return signatureOf(Miscompilation, kc.Profile.Name, "", detail) == sig
	}
}

// ForMode maps a cmd/mjreduce -mode value to its predicate.
func (kc KeepConfig) ForMode(mode string) (reduce.Predicate, error) {
	switch mode {
	case "crash":
		return kc.Crash(), nil
	case "diff":
		return kc.Diff(), nil
	default:
		return nil, fmt.Errorf("unknown mode %q (want diff or crash)", mode)
	}
}

// keepForFinding returns the signature-preserving predicate for an
// auto-reduced finding, or nil when the finding kind has no cheap
// re-validation predicate (performance findings need timeout-priced
// runs per candidate, far too slow for an in-campaign stage).
func keepForFinding(kc KeepConfig, f Finding) reduce.Predicate {
	switch f.Kind {
	case CrashFinding:
		return kc.CrashSignature(f.Signature)
	case Miscompilation:
		return kc.MiscompileSignature(f.Signature)
	default:
		return nil
	}
}

// budgetedPredicate caps how many times keep may be evaluated; once
// the budget is spent every candidate is rejected, so an in-flight
// reduction winds down in O(current candidate list) instead of
// stalling campaign throughput. Count-based (not wall-clock), so a
// resumed campaign reduces identically to an uninterrupted one.
func budgetedPredicate(keep reduce.Predicate, evals int) reduce.Predicate {
	remaining := evals
	return func(p *ast.Program) bool {
		if remaining <= 0 {
			return false
		}
		remaining--
		return keep(p)
	}
}
