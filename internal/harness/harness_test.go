package harness

import (
	"strings"
	"testing"

	"artemis/internal/lang/parser"
	"artemis/internal/profiles"
	"artemis/internal/vm"
)

func profile(t *testing.T, name string) *profiles.Profile {
	t.Helper()
	p, err := profiles.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestNoFalsePositives: on a correct VM, a campaign must report
// nothing — JoNM neutrality plus VM correctness imply zero
// discrepancies. This is the validator validating itself.
func TestNoFalsePositives(t *testing.T) {
	for _, name := range []string{"hotspotlike", "artlike"} {
		prof := profile(t, name)
		stats := RunCampaign(CampaignOptions{
			Options: Options{Profile: prof, MaxIter: 3, Buggy: false},
			Seeds:   10,
		})
		if len(stats.Distinct) != 0 {
			t.Errorf("%s: correct VM produced %d findings: %+v", name, len(stats.Distinct), stats.Distinct[0].Finding)
			for _, ex := range stats.Examples {
				t.Logf("example mutant:\n%s", ex)
			}
		}
	}
}

// TestCampaignFindsSeededBugs: each buggy profile must yield findings,
// all attributable to JIT compilation.
func TestCampaignFindsSeededBugs(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test is slow")
	}
	for _, name := range []string{"hotspotlike", "openj9like", "artlike"} {
		name := name
		t.Run(name, func(t *testing.T) {
			prof := profile(t, name)
			stats := RunCampaign(CampaignOptions{
				Options: Options{Profile: prof, MaxIter: 5, Buggy: true},
				Seeds:   25,
			})
			if len(stats.Distinct) == 0 {
				t.Fatalf("%s: campaign over %d seeds found nothing", name, stats.Seeds)
			}
			t.Logf("%s: %d distinct findings, %d duplicates, %d CSE seeds",
				name, len(stats.Distinct), stats.Duplicates, stats.CSESeeds)
			for _, f := range stats.Distinct {
				t.Logf("  [%s] %s %s", f.Kind, f.Component, f.Detail)
			}
		})
	}
}

// TestInterpreterNeverAffected: every seeded defect must vanish when
// the JIT is off — the paper's "all reported bugs concern JIT
// compilers" property.
func TestInterpreterNeverAffected(t *testing.T) {
	prof := profile(t, "openj9like")
	stats := RunCampaign(CampaignOptions{
		Options: Options{Profile: prof, MaxIter: 4, Buggy: true},
		Seeds:   15,
	})
	if len(stats.Examples) == 0 {
		t.Skip("no finding examples collected in this window")
	}
	for i, src := range stats.Examples {
		p, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("example %d does not parse: %v", i, err)
		}
		bp := Compile(p)
		cfg := prof.InterpreterConfig()
		cfg.StepLimit = 400_000_000
		out := vm.Run(cfg, bp).Output
		if out.Term == vm.TermCrash {
			t.Errorf("example %d crashes even under pure interpretation", i)
		}
	}
}

// TestConfirmAndFix: findings must reproduce and be attributable to a
// single seeded defect.
func TestConfirmAndFix(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	prof := profile(t, "hotspotlike")
	stats := RunCampaign(CampaignOptions{
		Options: Options{Profile: prof, MaxIter: 5, Buggy: true, ConfirmAndFix: true},
		Seeds:   20,
	})
	if len(stats.Distinct) == 0 {
		t.Skip("no findings in this window")
	}
	if stats.Confirmed() == 0 {
		t.Error("no finding reproduced; the VM should be deterministic")
	}
	if stats.Fixed() == 0 {
		t.Error("no finding could be attributed to a seeded defect")
	}
	for _, f := range stats.Distinct {
		t.Logf("[%s] %s fixed-by=%s confirmed=%v", f.Kind, f.Component, f.FixedBy, f.Confirmed)
	}
}

// TestEnumerateSpaceFigure1 reproduces Figure 1: the paper's 4-call
// program has 16 compilation choices, every one of which must return
// the same output (3) on a correct VM, while yielding 16 distinct
// JIT traces.
func TestEnumerateSpaceFigure1(t *testing.T) {
	src := `class T {
        int baz() { return 1; }
        int bar() { return 2; }
        int foo() { return bar() + baz(); }
        void main() { print(foo()); }
    }`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prof := profile(t, "hotspotlike")
	methods := []string{"main", "foo", "bar", "baz"}
	choices := EnumerateSpace(prof, prog, methods, false)
	if len(choices) != 16 {
		t.Fatalf("expected 16 choices, got %d", len(choices))
	}
	traces := map[string]bool{}
	for _, c := range choices {
		if c.Output.Term != vm.TermNormal || c.Output.Lines[0] != "3" {
			t.Errorf("choice %s: output %v %v, want 3", c.Label(methods), c.Output.Term, c.Output.Lines)
		}
		traces[c.Trace.Key()] = true
	}
	if len(traces) < 8 {
		t.Errorf("only %d distinct JIT traces across 16 choices", len(traces))
	}
}

func TestTableFormatting(t *testing.T) {
	prof := profile(t, "hotspotlike")
	stats := &CampaignStats{Profile: prof.Name, Seeds: 10, Mutants: 80, Runs: 90,
		CSESeeds: 3, TradSeeds: 1, BothSeeds: 1}
	stats.Distinct = []DedupFinding{
		{Finding: Finding{Kind: CrashFinding, Component: "Global Value Numbering, C2", Confirmed: true, FixedBy: "hs-gvn-table"}, Count: 2},
		{Finding: Finding{Kind: Miscompilation, Detail: "normal-vs-normal"}, Count: 1},
	}
	t1 := FormatTable1([]*CampaignStats{stats})
	if !strings.Contains(t1, "Reported (distinct)") || !strings.Contains(t1, "2") {
		t.Errorf("table 1 malformed:\n%s", t1)
	}
	t2 := FormatTable2([]*CampaignStats{stats})
	if !strings.Contains(t2, "Global Value Numbering") {
		t.Errorf("table 2 malformed:\n%s", t2)
	}
	t4 := FormatTable4(stats)
	if !strings.Contains(t4, "CSE") {
		t.Errorf("table 4 malformed:\n%s", t4)
	}
}

func TestTraditionalOracle(t *testing.T) {
	// A seed whose bug only shows under full compilation is caught by
	// the traditional oracle too; most seeded defects need JoNM heat.
	prof := profile(t, "hotspotlike")
	seedProg, err := parser.Parse(`class T {
        int f(int x) { return x * 2; }
        void main() { print(f(21)); }
    }`)
	if err != nil {
		t.Fatal(err)
	}
	bp := Compile(seedProg)
	hit, runs := TraditionalDiscrepancy(bp, Options{Profile: prof, Buggy: false})
	if hit {
		t.Error("correct VM flagged by traditional oracle")
	}
	if runs != 2 {
		t.Errorf("expected 2 runs, got %d", runs)
	}
}
