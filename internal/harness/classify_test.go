package harness

import "testing"

func TestComponentOf(t *testing.T) {
	cases := []struct{ detail, want string }{
		{"JIT compiler crash (tier 2, method m5): assertion failure in Escape Analysis, C2: allocation v1 merges into phi v2",
			"Escape Analysis, C2"},
		{"assertion failure in Loop Vectorization: legality check: 9 candidate stores",
			"Loop Vectorization"},
		{"fatal error: GC: heap corruption detected on object 12: canary 0x1 != 0x5ca1ab1d",
			"Garbage Collection"},
		{"fatal error: SIGSEGV: uncommon trap stub, method f, deopt pc 3",
			"Code Execution"},
		{"something entirely else", "Other JIT Components"},
	}
	for _, tc := range cases {
		if got := componentOf(tc.detail); got != tc.want {
			t.Errorf("componentOf(%q) = %q, want %q", tc.detail, got, tc.want)
		}
	}
}

func TestSignatureNormalization(t *testing.T) {
	a := signatureOf(CrashFinding, "p", "Garbage Collection",
		"GC: heap corruption detected on object 12: canary 0xbadbeef != 0x5ca1ab1d")
	b := signatureOf(CrashFinding, "p", "Garbage Collection",
		"GC: heap corruption detected on object 99: canary 0xbadbeef != 0x5ca1ffff")
	if a != b {
		t.Errorf("object ids / canary values must normalize away:\n%s\n%s", a, b)
	}
	c := signatureOf(CrashFinding, "p", "Garbage Collection",
		"GC: heap corruption detected on object 7: canary 0x1 != 0x5ca1ab1d")
	if a == c {
		t.Error("barrier-marker corruption must stay distinct from other corrupting writes")
	}
	d := signatureOf(CrashFinding, "other", "Garbage Collection",
		"GC: heap corruption detected on object 12: canary 0xbadbeef != 0x5ca1ab1d")
	if a == d {
		t.Error("profiles must separate signatures")
	}
	m1 := signatureOf(Miscompilation, "p", "", "normal-vs-normal")
	m2 := signatureOf(Miscompilation, "p", "", "normal-vs-exception")
	if m1 == m2 {
		t.Error("mis-compilation symptoms must separate")
	}
}

func TestFindingKindStrings(t *testing.T) {
	if Miscompilation.String() != "mis-compilation" ||
		CrashFinding.String() != "crash" ||
		Performance.String() != "performance" {
		t.Error("FindingKind strings wrong")
	}
}
