package harness

import "testing"

func TestComponentOf(t *testing.T) {
	cases := []struct{ detail, want string }{
		{"JIT compiler crash (tier 2, method m5): assertion failure in Escape Analysis, C2: allocation v1 merges into phi v2",
			"Escape Analysis, C2"},
		{"assertion failure in Loop Vectorization: legality check: 9 candidate stores",
			"Loop Vectorization"},
		{"fatal error: GC: heap corruption detected on object 12: canary 0x1 != 0x5ca1ab1d",
			"Garbage Collection"},
		{"fatal error: SIGSEGV: uncommon trap stub, method f, deopt pc 3",
			"Code Execution"},
		{"something entirely else", "Other JIT Components"},
	}
	for _, tc := range cases {
		if got := componentOf(tc.detail); got != tc.want {
			t.Errorf("componentOf(%q) = %q, want %q", tc.detail, got, tc.want)
		}
	}
}

// TestComponentOfPrecedence locks in the documented most-specific-
// first classification for crash details carrying several markers.
// The order is part of the signature contract: re-ordering it would
// re-key every crash signature in existing journals and corpora.
func TestComponentOfPrecedence(t *testing.T) {
	cases := []struct{ name, detail, want string }{
		{"assertion beats SIGSEGV",
			"assertion failure in Register Allocation: spill slot clash averted SIGSEGV at pc 12",
			"Register Allocation"},
		{"assertion beats GC corruption",
			"fatal error: GC: heap corruption detected; root cause assertion failure in Escape Analysis: field store escaped",
			"Escape Analysis"},
		{"assertion beats both",
			"assertion failure in Loop Peeling: SIGSEGV would follow, GC: heap corruption imminent",
			"Loop Peeling"},
		{"GC corruption beats SIGSEGV",
			"fatal error: GC: heap corruption detected on object 3 while handling SIGSEGV",
			"Garbage Collection"},
		{"GC corruption beats uncommon trap",
			"GC: heap corruption detected in uncommon trap stub frame",
			"Garbage Collection"},
		{"SIGSEGV alone",
			"fatal error: SIGSEGV executing compiled code",
			"Code Execution"},
		{"assertion without colon consumes rest",
			"assertion failure in Value Numbering",
			"Value Numbering"},
	}
	for _, tc := range cases {
		if got := componentOf(tc.detail); got != tc.want {
			t.Errorf("%s: componentOf(%q) = %q, want %q", tc.name, tc.detail, got, tc.want)
		}
	}
}

func TestSignatureNormalization(t *testing.T) {
	a := signatureOf(CrashFinding, "p", "Garbage Collection",
		"GC: heap corruption detected on object 12: canary 0xbadbeef != 0x5ca1ab1d")
	b := signatureOf(CrashFinding, "p", "Garbage Collection",
		"GC: heap corruption detected on object 99: canary 0xbadbeef != 0x5ca1ffff")
	if a != b {
		t.Errorf("object ids / canary values must normalize away:\n%s\n%s", a, b)
	}
	c := signatureOf(CrashFinding, "p", "Garbage Collection",
		"GC: heap corruption detected on object 7: canary 0x1 != 0x5ca1ab1d")
	if a == c {
		t.Error("barrier-marker corruption must stay distinct from other corrupting writes")
	}
	d := signatureOf(CrashFinding, "other", "Garbage Collection",
		"GC: heap corruption detected on object 12: canary 0xbadbeef != 0x5ca1ab1d")
	if a == d {
		t.Error("profiles must separate signatures")
	}
	m1 := signatureOf(Miscompilation, "p", "", "normal-vs-normal")
	m2 := signatureOf(Miscompilation, "p", "", "normal-vs-exception")
	if m1 == m2 {
		t.Error("mis-compilation symptoms must separate")
	}
}

func TestFindingKindStrings(t *testing.T) {
	if Miscompilation.String() != "mis-compilation" ||
		CrashFinding.String() != "crash" ||
		Performance.String() != "performance" {
		t.Error("FindingKind strings wrong")
	}
}
