// Campaign observability: deterministic aggregation of per-run
// vm.ExecStats and JIT-trace coverage into campaign-level metrics.
//
// The paper's argument depends on campaigns *actually* exploring the
// compilation space (Section 5.4 reports how often mutants drive
// methods through different temperature vectors). These metrics make
// that measurable: a campaign whose runs never leave the interpreter,
// or whose seeds all take a single JIT trace, has silently degraded
// into the plain differential testing baseline of Section 4.3.
//
// Everything exported here is deterministic: per-seed metrics are
// merged in seed order by the PR-1 reducer, every counter is a pure
// function of the seeded run, and wall-clock quantities are excluded,
// so the -metrics JSON is byte-identical for any -workers value.

package harness

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"artemis/internal/vm"
)

// SeedMetrics is one seed's contribution to campaign metrics: the
// merged ExecStats of its metered validation runs plus
// exploration-coverage accounting over their JIT traces.
type SeedMetrics struct {
	// Runs counts metered VM invocations (the seed's reference run,
	// mutant runs, and timeout-disambiguation reruns — the same runs
	// Result.Runs counts; ConfirmAndFix reruns are not metered).
	Runs int64 `json:"runs"`
	// Exec is the merged execution metrics of those runs.
	Exec vm.ExecStats `json:"exec"`
	// RunsByMaxTier[t] counts runs whose hottest observed temperature
	// was t; index 0 is "never left the interpreter" (Definition 3.2).
	RunsByMaxTier []int64 `json:"runs_by_max_tier"`
	// DistinctTraces is the number of distinct JIT-trace keys
	// (Definition 3.3) among the seed's runs. Mutants are
	// JoNM-neutral, so >= 2 means the seed genuinely explored more
	// than one point of its compilation space.
	DistinctTraces int64 `json:"distinct_traces"`
}

// seedMeter accumulates SeedMetrics during one Validate call.
type seedMeter struct {
	m         SeedMetrics
	traceKeys map[string]bool
}

func newSeedMeter() *seedMeter {
	return &seedMeter{traceKeys: map[string]bool{}}
}

// record folds one run's result into the meter.
func (sm *seedMeter) record(r *vm.Result) {
	sm.m.Runs++
	sm.m.Exec.Merge(r.Stats)
	tier := 0
	if r.Trace != nil {
		tier = r.Trace.MaxTemp()
		sm.traceKeys[r.Trace.Key()] = true
	}
	for len(sm.m.RunsByMaxTier) <= tier {
		sm.m.RunsByMaxTier = append(sm.m.RunsByMaxTier, 0)
	}
	sm.m.RunsByMaxTier[tier]++
}

func (sm *seedMeter) finish() *SeedMetrics {
	sm.m.DistinctTraces = int64(len(sm.traceKeys))
	return &sm.m
}

// CampaignMetrics aggregates SeedMetrics across a whole campaign.
type CampaignMetrics struct {
	// MeteredSeeds / MeteredRuns count the seeds and VM invocations
	// that contributed metrics. Seeds discarded for exceeding
	// StepLimit still contribute their timed-out runs; seeds cut off
	// by the wall-clock SeedTimeout contribute nothing.
	MeteredSeeds int64 `json:"metered_seeds"`
	MeteredRuns  int64 `json:"metered_runs"`

	// Exec is the campaign-wide merge of per-run ExecStats
	// (PeakHeapWords is the max over runs, everything else sums).
	Exec vm.ExecStats `json:"exec"`

	// RunsByMaxTier[t] counts runs whose hottest temperature was t;
	// TierReachFractions derives the Section 5.4-style coverage view.
	RunsByMaxTier []int64 `json:"runs_by_max_tier"`

	// DistinctTracesTotal sums each seed's distinct JIT-trace keys;
	// MultiTraceSeeds counts seeds that took >= 2 distinct traces —
	// the seeds for which compilation space exploration actually
	// happened (a campaign where this is 0 is doing plain
	// differential testing).
	DistinctTracesTotal int64 `json:"distinct_traces_total"`
	MultiTraceSeeds     int64 `json:"multi_trace_seeds"`
}

// merge folds one seed's metrics in (called by the campaign reducer in
// seed order; every operation is order-independent regardless).
func (m *CampaignMetrics) merge(sm *SeedMetrics) {
	if sm == nil {
		return
	}
	m.MeteredSeeds++
	m.MeteredRuns += sm.Runs
	m.Exec.Merge(&sm.Exec)
	for len(m.RunsByMaxTier) < len(sm.RunsByMaxTier) {
		m.RunsByMaxTier = append(m.RunsByMaxTier, 0)
	}
	for i, n := range sm.RunsByMaxTier {
		m.RunsByMaxTier[i] += n
	}
	m.DistinctTracesTotal += sm.DistinctTraces
	if sm.DistinctTraces >= 2 {
		m.MultiTraceSeeds++
	}
}

// TierReachFractions returns, per temperature t, the fraction of
// metered runs whose hottest temperature was exactly t (index 0 =
// interpreter-only runs).
func (m *CampaignMetrics) TierReachFractions() []float64 {
	if m.MeteredRuns == 0 {
		return nil
	}
	out := make([]float64, len(m.RunsByMaxTier))
	for i, n := range m.RunsByMaxTier {
		out[i] = float64(n) / float64(m.MeteredRuns)
	}
	return out
}

// AvgDistinctTraces returns the mean number of distinct JIT traces per
// metered seed.
func (m *CampaignMetrics) AvgDistinctTraces() float64 {
	if m.MeteredSeeds == 0 {
		return 0
	}
	return float64(m.DistinctTracesTotal) / float64(m.MeteredSeeds)
}

// metricsEntry is the JSON shape of one campaign in a metrics report.
type metricsEntry struct {
	Profile            string           `json:"profile"`
	Seeds              int              `json:"seeds"`
	Mutants            int              `json:"mutants"`
	VMRuns             int              `json:"vm_runs"`
	DiscardedSeeds     int              `json:"discarded_seeds"`
	DistinctFindings   int              `json:"distinct_findings"`
	Duplicates         int              `json:"duplicate_manifestations"`
	Metrics            *CampaignMetrics `json:"metrics"`
	TierReachFractions []float64        `json:"tier_reach_fractions,omitempty"`
}

// MetricsReport renders the campaigns' metrics as deterministic,
// indented JSON: map keys are sorted by encoding/json, every number is
// a pure function of the seeded campaign, and wall-clock fields are
// excluded — so the bytes are identical for any worker count.
func MetricsReport(stats []*CampaignStats) ([]byte, error) {
	entries := make([]metricsEntry, 0, len(stats))
	for _, s := range stats {
		e := metricsEntry{
			Profile:          s.Profile,
			Seeds:            s.Seeds,
			Mutants:          s.Mutants,
			VMRuns:           s.Runs,
			DiscardedSeeds:   s.DiscardedSeeds,
			DistinctFindings: len(s.Distinct),
			Duplicates:       s.Duplicates,
			Metrics:          s.Metrics,
		}
		if s.Metrics != nil {
			e.TierReachFractions = s.Metrics.TierReachFractions()
		}
		entries = append(entries, e)
	}
	if len(entries) == 1 {
		return json.MarshalIndent(entries[0], "", "  ")
	}
	return json.MarshalIndent(entries, "", "  ")
}

// FormatMetrics renders a human-readable exploration-coverage summary
// for one or more campaigns (the Section 5.4 analogue: how thoroughly
// did runs leave the interpreter, and how many compilation-space
// points did each seed visit).
func FormatMetrics(stats []*CampaignStats) string {
	var b strings.Builder
	b.WriteString("Exploration-coverage metrics\n")
	for _, s := range stats {
		m := s.Metrics
		fmt.Fprintf(&b, "\n%s:\n", s.Profile)
		if m == nil {
			b.WriteString("  (metrics collection disabled)\n")
			continue
		}
		fmt.Fprintf(&b, "  metered: %d seeds, %d runs\n", m.MeteredSeeds, m.MeteredRuns)
		steps := m.Exec.InterpSteps + m.Exec.CompiledSteps
		if steps > 0 {
			fmt.Fprintf(&b, "  steps: %d interpreted (%.1f%%), %d compiled (%.1f%%)\n",
				m.Exec.InterpSteps, 100*float64(m.Exec.InterpSteps)/float64(steps),
				m.Exec.CompiledSteps, 100*float64(m.Exec.CompiledSteps)/float64(steps))
		}
		for i, f := range m.TierReachFractions() {
			label := "interpreter only"
			if i > 0 {
				label = fmt.Sprintf("reached tier %d", i)
			}
			fmt.Fprintf(&b, "  runs %-18s %6.1f%% (%d)\n", label+":", 100*f, m.RunsByMaxTier[i])
		}
		fmt.Fprintf(&b, "  compilations by tier: %v (OSR %d, failed %d)\n",
			m.Exec.CompilationsByTier, m.Exec.OSRCompilations, m.Exec.FailedCompilations)
		fmt.Fprintf(&b, "  uncommon traps: %d, deopts: %d%s\n",
			m.Exec.UncommonTraps, m.Exec.Deopts, formatReasons(m.Exec.DeoptsByReason))
		fmt.Fprintf(&b, "  GC cycles: %d, peak heap: %d words\n", m.Exec.GCCycles, m.Exec.PeakHeapWords)
		fmt.Fprintf(&b, "  distinct JIT traces: %d total, %.2f avg/seed, %d seeds with >= 2 traces\n",
			m.DistinctTracesTotal, m.AvgDistinctTraces(), m.MultiTraceSeeds)
		if len(m.Exec.OptsByPass) > 0 {
			keys := make([]string, 0, len(m.Exec.OptsByPass))
			for k := range m.Exec.OptsByPass {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, 0, len(keys))
			for _, k := range keys {
				parts = append(parts, fmt.Sprintf("%s=%d", k, m.Exec.OptsByPass[k]))
			}
			fmt.Fprintf(&b, "  JIT opts by pass: %s\n", strings.Join(parts, " "))
		}
	}
	return b.String()
}

func formatReasons(m map[string]int64) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s: %d", k, m[k]))
	}
	return " (" + strings.Join(parts, ", ") + ")"
}
