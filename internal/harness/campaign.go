package harness

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"artemis/internal/blame"
	"artemis/internal/lang/ast"
	"artemis/internal/profiles"
	"artemis/internal/vm"
)

// CampaignOptions configures a fuzzing campaign (the Section 4
// evaluation loop): generate seeds, validate each via Algorithm 1,
// and optionally also apply the traditional baseline for the
// comparative study (Table 4).
type CampaignOptions struct {
	Options
	// Seeds is the number of seed programs to generate.
	Seeds int
	// SeedBase offsets the fuzzer seeds (campaigns are deterministic
	// given SeedBase).
	SeedBase int64
	// Comparative also runs the traditional (-Xjit:count=0 analogue)
	// oracle per seed.
	Comparative bool

	// Workers is the number of parallel seed workers (0 = NumCPU).
	// Stats are byte-identical for every worker count: per-seed work
	// is independent (RNG derived from the seed ID, fresh VM and JIT
	// per run) and outcomes are merged in seed order.
	Workers int
	// SeedTimeout, when positive, discards any seed whose whole
	// chain exceeds this wall-clock budget (counted in
	// DiscardedSeeds). Wall-clock cutoffs are timing-dependent;
	// leave at 0 for bit-exact reproducibility (StepLimit already
	// bounds runs deterministically).
	SeedTimeout time.Duration
	// Progress, when non-nil, is called after each merged seed, in
	// seed order, from a single goroutine. See StderrProgress.
	Progress func(Progress)

	// JournalPath, when non-empty, streams every merged seed outcome
	// to an append-only, checksummed journal (internal/journal), making
	// the campaign crash-safe: work merged before a crash, OOM, or
	// SIGKILL is never lost. Persistence requires the error-returning
	// RunResumableCampaign entry point.
	JournalPath string
	// Resume continues an interrupted campaign from JournalPath:
	// already-journaled seeds are not re-run — their cached outcomes
	// replay through the deterministic seed-order merger — so the
	// final CampaignStats and -metrics JSON are byte-identical to an
	// uninterrupted run at any worker count. The journal's header must
	// fingerprint the same campaign configuration. Resuming a
	// non-existent journal starts fresh, so Resume is safe to set
	// unconditionally.
	Resume bool
	// CorpusDir, when non-empty, persists a corpus entry (seed source,
	// mutant source, auto-reduced reproducer, finding detail) for each
	// novel finding signature, as it is first seen. Entries are
	// idempotent across resumes. See corpus.go for the layout.
	CorpusDir string
	// ReduceBudget caps keep-predicate evaluations per finding during
	// in-campaign auto-reduction (0 = DefaultReduceBudget; negative
	// disables reduction, corpus entries then hold only the originals).
	ReduceBudget int
	// Blame enables automatic fault localization (internal/blame) for
	// every first-seen crash/mis-compilation finding: the guilty-pass
	// bisection and minimal compilation-space shrink run on the
	// reducer, attach to DedupFinding.Blame, and (with a CorpusDir)
	// persist as blame.json per entry.
	Blame bool
	// BlameBudget caps probe VM runs per localization
	// (0 = blame.DefaultBudget).
	BlameBudget int

	// seedHook runs at the start of each seed (test-only: panic and
	// timeout injection).
	seedHook func(idx int, seedID int64)
}

// DedupFinding is a distinct finding with its duplicate count.
type DedupFinding struct {
	Finding
	Count int
	// Blame is the automatic fault localization for this finding; nil
	// unless the campaign ran with CampaignOptions.Blame (or the
	// finding kind has no symptom predicate, e.g. performance).
	Blame *blame.Result
}

// CampaignStats aggregates one campaign.
type CampaignStats struct {
	Profile string
	Seeds   int
	Mutants int
	Runs    int
	Elapsed time.Duration

	// Distinct findings in discovery order and duplicate counts.
	Distinct []DedupFinding
	// Reported = len(Distinct) + Duplicates (every manifestation).
	Duplicates int
	// DiscardedSeeds counts seeds dropped for timing out (Section
	// 4.3 discards programs over the budget).
	DiscardedSeeds int

	// CSESeeds / TradSeeds / BothSeeds: seeds flagged by compilation
	// space exploration, by the traditional baseline, and by both
	// (Table 4's columns).
	CSESeeds  int
	TradSeeds int
	BothSeeds int

	// Example mutant sources (up to 5) for reports / reduction demos.
	Examples []string

	// Metrics aggregates per-run execution metrics and
	// exploration-coverage accounting over all metered seeds; nil
	// unless Options.CollectMetrics. See MetricsReport/FormatMetrics.
	Metrics *CampaignMetrics
}

// ByKind returns distinct-finding counts per kind.
func (cs *CampaignStats) ByKind() map[FindingKind]int {
	m := map[FindingKind]int{}
	for _, f := range cs.Distinct {
		m[f.Kind]++
	}
	return m
}

// ByComponent returns crash counts per JIT component over distinct
// findings (Table 2's view).
func (cs *CampaignStats) ByComponent() map[string]int {
	m := map[string]int{}
	for _, f := range cs.Distinct {
		if f.Kind == CrashFinding {
			m[f.Component]++
		}
	}
	return m
}

// ManifestationsByComponent returns total crash manifestations
// (including duplicates) per component — how often each component is
// hit, complementing the distinct view.
func (cs *CampaignStats) ManifestationsByComponent() map[string]int {
	m := map[string]int{}
	for _, f := range cs.Distinct {
		if f.Kind == CrashFinding {
			m[f.Component] += f.Count
		}
	}
	return m
}

// BlameByPass returns distinct-finding counts keyed by localized
// guilty-pass label ("gcm", "gvn+licm", or a parenthesized verdict
// like "(outside-pass-pipeline)") over findings that were localized.
// This is the behavior-derived Table 2 view: unlike ByComponent it
// uses no injected metadata, only bisection outcomes.
func (cs *CampaignStats) BlameByPass() map[string]int {
	m := map[string]int{}
	for _, f := range cs.Distinct {
		if f.Blame != nil {
			m[f.Blame.PassLabel()]++
		}
	}
	return m
}

// Confirmed counts distinct findings that reproduced.
func (cs *CampaignStats) Confirmed() int {
	n := 0
	for _, f := range cs.Distinct {
		if f.Confirmed {
			n++
		}
	}
	return n
}

// Fixed counts distinct findings attributed to (and removable by) a
// single catalog defect.
func (cs *CampaignStats) Fixed() int {
	n := 0
	for _, f := range cs.Distinct {
		if f.FixedBy != "" {
			n++
		}
	}
	return n
}

// Throughput returns VM invocations per second.
func (cs *CampaignStats) Throughput() float64 {
	if cs.Elapsed <= 0 {
		return 0
	}
	return float64(cs.Runs) / cs.Elapsed.Seconds()
}

// RunCampaign drives a full campaign over a pool of Workers
// goroutines (see parallel.go). Per-seed work runs concurrently;
// outcomes are merged in seed order, so the returned stats are
// byte-identical for any worker count. Campaigns that persist state
// (JournalPath/CorpusDir) should call RunResumableCampaign instead;
// here a persistence failure panics.
func RunCampaign(opts CampaignOptions) *CampaignStats {
	stats, err := RunResumableCampaign(opts)
	if err != nil {
		panic(fmt.Sprintf("harness: campaign persistence failed: %v (use RunResumableCampaign to handle this)", err))
	}
	return stats
}

// RunResumableCampaign is RunCampaign plus campaign persistence: it
// opens (or resumes) the seed-outcome journal and the findings corpus
// when configured, replays cached outcomes, and reports persistence
// failures as an error alongside the stats. A mid-campaign journal or
// corpus write failure does not abort the campaign — the in-memory
// stats still complete — but the first such failure is returned so
// callers know crash-safety was lost.
func RunResumableCampaign(opts CampaignOptions) (*CampaignStats, error) {
	opts.Options = opts.Options.withDefaults()
	workers := opts.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	start := time.Now()
	m := newMerger(opts, start)
	var cached map[int]seedOutcome
	if opts.JournalPath != "" {
		var err error
		cached, m.journal, err = openCampaignJournal(opts)
		if err != nil {
			return nil, err
		}
	}
	if opts.CorpusDir != "" {
		c, err := newCorpusWriter(opts)
		if err != nil {
			if m.journal != nil {
				m.journal.Close()
			}
			return nil, err
		}
		m.corpus = c
	}
	if opts.Blame {
		m.blamer = newBlamer(opts)
	}
	runCampaignParallel(opts, workers, m, cached)
	m.stats.Elapsed = time.Since(start)
	if m.journal != nil {
		if err := m.journal.Close(); err != nil && m.persistErr == nil {
			m.persistErr = err
		}
	}
	return m.stats, m.persistErr
}

// ---------------------------------------------------------------------------
// Compilation-space enumeration (Figure 1)
// ---------------------------------------------------------------------------

// SpaceChoice labels one point of a compilation space: which of the
// program's methods execute compiled.
type SpaceChoice struct {
	Compiled map[string]bool
	Output   *vm.Output
	Trace    *vm.JITTrace
	Stats    *vm.ExecStats
}

// Label renders the choice like "main:int foo:jit ...".
func (c *SpaceChoice) Label(methods []string) string {
	parts := make([]string, len(methods))
	for i, m := range methods {
		mode := "int"
		if c.Compiled[m] {
			mode = "jit"
		}
		parts[i] = m + ":" + mode
	}
	return strings.Join(parts, " ")
}

// EnumerateSpace explores the 2^n compilation choices obtained by
// independently interpreting or compiling each listed method — the
// idealized compilation space of Figure 1, realizable here because we
// own the VM (Section 3.2's "straightforward and ideal realization").
// All outputs must agree on a correct VM; set buggy to hunt in the
// seeded-defect VM instead. Choices are evaluated on NumCPU workers;
// use EnumerateSpaceParallel to pick the worker count.
func EnumerateSpace(prof *profiles.Profile, prog *ast.Program, methods []string, buggy bool) []SpaceChoice {
	return EnumerateSpaceParallel(prof, prog, methods, buggy, DefaultWorkers())
}

// EnumerateSpaceParallel is EnumerateSpace over an explicit worker
// count. Each mask gets a fresh VM and JIT; the shared compiled
// program is read-only, and results land at their mask index, so the
// returned slice is identical for any worker count.
func EnumerateSpaceParallel(prof *profiles.Profile, prog *ast.Program, methods []string, buggy bool, workers int) []SpaceChoice {
	bp := Compile(prog)
	n := len(methods)
	total := 1 << n
	choices := make([]SpaceChoice, total)
	runMask := func(mask int, scratch *vm.Scratch) {
		compiled := map[string]bool{}
		forced := map[string]vm.ForceChoice{}
		for i, m := range methods {
			if mask&(1<<i) != 0 {
				compiled[m] = true
				forced[m] = vm.ForceCompile
			} else {
				forced[m] = vm.ForceInterpret
			}
		}
		cfg := prof.VMConfig(buggy)
		cfg.Policy = &vm.ForcedPolicy{Tier: prof.MaxTier, Methods: forced, DisableOSR: true}
		cfg.Scratch = scratch
		cfg.RecordTrace = true
		cfg.CollectStats = true
		res := vm.Run(cfg, bp)
		choices[mask] = SpaceChoice{Compiled: compiled, Output: res.Output, Trace: res.Trace, Stats: res.Stats}
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		scratch := &vm.Scratch{}
		for mask := 0; mask < total; mask++ {
			runMask(mask, scratch)
		}
		return choices
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := &vm.Scratch{} // per-worker, never shared
			for {
				mask := int(next.Add(1)) - 1
				if mask >= total {
					return
				}
				runMask(mask, scratch)
			}
		}()
	}
	wg.Wait()
	return choices
}

// ---------------------------------------------------------------------------
// Table rendering
// ---------------------------------------------------------------------------

// FormatTable1 renders the Table 1 analogue from per-profile stats.
func FormatTable1(stats []*CampaignStats) string {
	var b strings.Builder
	b.WriteString("Table 1: statistics of detected JIT-compiler bugs\n")
	fmt.Fprintf(&b, "%-28s", "")
	for _, s := range stats {
		fmt.Fprintf(&b, "%14s", s.Profile)
	}
	fmt.Fprintf(&b, "%10s\n", "Total")
	row := func(label string, get func(*CampaignStats) int) {
		fmt.Fprintf(&b, "%-28s", label)
		total := 0
		for _, s := range stats {
			v := get(s)
			total += v
			fmt.Fprintf(&b, "%14d", v)
		}
		fmt.Fprintf(&b, "%10d\n", total)
	}
	row("Reported (distinct)", func(s *CampaignStats) int { return len(s.Distinct) })
	row("Duplicate manifestations", func(s *CampaignStats) int { return s.Duplicates })
	row("Confirmed (reproduced)", func(s *CampaignStats) int { return s.Confirmed() })
	row("Fixed (defect isolated)", func(s *CampaignStats) int { return s.Fixed() })
	row("Mis-compilations", func(s *CampaignStats) int { return s.ByKind()[Miscompilation] })
	row("Crashes", func(s *CampaignStats) int { return s.ByKind()[CrashFinding] })
	row("Performance", func(s *CampaignStats) int { return s.ByKind()[Performance] })
	return b.String()
}

// FormatTable2 renders the Table 2 analogue: crash counts per JIT
// component for the given profiles.
func FormatTable2(stats []*CampaignStats) string {
	var b strings.Builder
	b.WriteString("Table 2: JIT components affected by reported crashes\n")
	for _, s := range stats {
		fmt.Fprintf(&b, "\n%s:\n", s.Profile)
		comps := s.ByComponent()
		keys := make([]string, 0, len(comps))
		for k := range comps {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if comps[keys[i]] != comps[keys[j]] {
				return comps[keys[i]] > comps[keys[j]]
			}
			return keys[i] < keys[j]
		})
		manif := s.ManifestationsByComponent()
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-36s %d distinct (%d manifestations)\n", k, comps[k], manif[k])
		}
		if len(keys) == 0 {
			b.WriteString("  (no crashes)\n")
		}
	}
	return b.String()
}

// FormatBlameTable renders the behavior-derived Table 2 analogue:
// distinct findings grouped by the guilty pass set that automatic
// bisection localized them to, plus one detail line per localized
// finding (corpus entry name, guilty passes, minimal forced-compilation
// set). Where ByComponent/FormatTable2 reads the injected defect tags,
// this table is computed purely from observed behaviour — on the
// seeded-bug corpus the two views are expected to agree.
func FormatBlameTable(stats []*CampaignStats) string {
	var b strings.Builder
	b.WriteString("Table 2 (behavior-derived): guilty passes localized by bisection\n")
	for _, s := range stats {
		fmt.Fprintf(&b, "\n%s:\n", s.Profile)
		byPass := s.BlameByPass()
		keys := make([]string, 0, len(byPass))
		for k := range byPass {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if byPass[keys[i]] != byPass[keys[j]] {
				return byPass[keys[i]] > byPass[keys[j]]
			}
			return keys[i] < keys[j]
		})
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-36s %d distinct\n", k, byPass[k])
		}
		if len(keys) == 0 {
			b.WriteString("  (no localized findings)\n")
			continue
		}
		b.WriteString("  localizations:\n")
		for _, f := range s.Distinct {
			if f.Blame == nil {
				continue
			}
			space := "(" + f.Blame.SpaceVerdict + ")"
			if f.Blame.SpaceVerdict == blame.VerdictMinimal {
				space = "{" + strings.Join(f.Blame.MinimalMethods, ",") + "}"
			}
			fmt.Fprintf(&b, "    %-52s %-24s space %s\n", EntryName(f.Signature), f.Blame.PassLabel(), space)
			if f.Blame.IRInvariant != "" {
				fmt.Fprintf(&b, "      IR invariant broken: %s\n", f.Blame.IRInvariant)
			}
		}
	}
	return b.String()
}

// FormatTable4 renders the comparative study (Table 4).
func FormatTable4(s *CampaignStats) string {
	var b strings.Builder
	b.WriteString("Table 4: comparative study, CSE vs. traditional approach\n")
	fmt.Fprintf(&b, "  %-10s %-10s %-8s %-8s %-8s\n", "#Seeds", "#Mutants", "CSE", "Tra.", "Both")
	fmt.Fprintf(&b, "  %-10d %-10d %-8d %-8d %-8d\n", s.Seeds, s.Mutants, s.CSESeeds, s.TradSeeds, s.BothSeeds)
	fmt.Fprintf(&b, "  throughput: %.2f VM invocations/s (%d runs in %s)\n",
		s.Throughput(), s.Runs, s.Elapsed.Round(time.Millisecond))
	if s.CSESeeds > 0 {
		onlyCSE := s.CSESeeds - s.BothSeeds
		fmt.Fprintf(&b, "  %.1f%% of CSE-flagged seeds cannot be caught by the traditional oracle\n",
			100*float64(onlyCSE)/float64(s.CSESeeds))
	}
	return b.String()
}
