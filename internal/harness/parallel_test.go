package harness

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"artemis/internal/lang/ast"
	"artemis/internal/lang/parser"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// statsKey serializes every deterministic field of CampaignStats
// (everything except wall-clock Elapsed) for byte-exact comparison
// across worker counts.
func statsKey(s *CampaignStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile=%s seeds=%d mutants=%d runs=%d\n", s.Profile, s.Seeds, s.Mutants, s.Runs)
	fmt.Fprintf(&b, "dup=%d discarded=%d cse=%d trad=%d both=%d\n",
		s.Duplicates, s.DiscardedSeeds, s.CSESeeds, s.TradSeeds, s.BothSeeds)
	for i, f := range s.Distinct {
		fmt.Fprintf(&b, "distinct[%d] sig=%q detail=%q seed=%d mutant=%d count=%d\n",
			i, f.Signature, f.Detail, f.SeedID, f.MutantID, f.Count)
	}
	for i, ex := range s.Examples {
		fmt.Fprintf(&b, "example[%d] %d bytes: %s\n", i, len(ex), ex)
	}
	return b.String()
}

// TestCampaignParallelDeterminism: the deterministic-merge invariant.
// The same campaign run with 1, 2, 4, and 8 workers must produce
// identical CampaignStats — Distinct signatures in discovery order,
// duplicate counts, Table 4 columns, and Examples selection.
func TestCampaignParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker determinism sweep is slow")
	}
	prof := profile(t, "openj9like")
	run := func(workers int) *CampaignStats {
		return RunCampaign(CampaignOptions{
			Options:     Options{Profile: prof, MaxIter: 4, Buggy: true},
			Seeds:       14,
			SeedBase:    7,
			Comparative: true,
			Workers:     workers,
		})
	}
	ref := run(1)
	if len(ref.Distinct) == 0 {
		t.Fatal("reference campaign found nothing; determinism comparison would be vacuous")
	}
	want := statsKey(ref)
	for _, workers := range []int{2, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got := statsKey(run(workers))
			if got != want {
				t.Errorf("stats diverge from workers=1 run:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
					want, workers, got)
			}
		})
	}
}

// TestCampaignPanicIsolation: a seed whose worker panics must not take
// the campaign down. The panic becomes an internal-error finding and
// every other seed's findings are unaffected.
func TestCampaignPanicIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("panic-isolation sweep is slow")
	}
	prof := profile(t, "openj9like")
	const panicIdx = 5
	const seeds = 12
	base := func(workers, n int, hook func(idx int, seedID int64)) *CampaignStats {
		return RunCampaign(CampaignOptions{
			Options:  Options{Profile: prof, MaxIter: 4, Buggy: true},
			Seeds:    n,
			Workers:  workers,
			seedHook: hook,
		})
	}
	// References shared by both worker counts: a campaign over just
	// the seeds preceding the panic, and a clean full-length one.
	prefix := base(1, panicIdx, nil)
	clean := base(1, seeds, nil)
	cleanSigs := map[string]bool{}
	for _, f := range clean.Distinct {
		cleanSigs[f.Signature] = true
	}
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			injected := base(workers, seeds, func(idx int, seedID int64) {
				if idx == panicIdx {
					panic("injected test panic")
				}
			})
			if injected.Seeds != seeds {
				t.Fatalf("campaign did not complete: %d/%d seeds", injected.Seeds, seeds)
			}
			// The panic is recorded as a harness-internal crash finding.
			var panicFinding *DedupFinding
			for i := range injected.Distinct {
				if injected.Distinct[i].Component == "Harness Internal Error" {
					panicFinding = &injected.Distinct[i]
				}
			}
			if panicFinding == nil {
				t.Fatal("panic was not recorded as a finding")
			}
			if panicFinding.SeedID != int64(panicIdx) {
				t.Errorf("panic finding attributed to seed %d, want %d", panicFinding.SeedID, panicIdx)
			}
			if !strings.Contains(panicFinding.Detail, "injected test panic") {
				t.Errorf("panic detail lost: %q", panicFinding.Detail)
			}

			// Seeds merged before the panicking one are untouched: their
			// Distinct prefix matches a campaign over just those seeds.
			if len(injected.Distinct) < len(prefix.Distinct) {
				t.Fatalf("injected campaign lost findings: %d < %d", len(injected.Distinct), len(prefix.Distinct))
			}
			for i, f := range prefix.Distinct {
				if injected.Distinct[i].Signature != f.Signature {
					t.Errorf("distinct[%d] diverges before the panic: %q vs %q",
						i, injected.Distinct[i].Signature, f.Signature)
				}
			}

			// Seeds after the panicking one still contribute: apart from
			// the injected finding, every signature also appears in a
			// clean full-length campaign.
			for _, f := range injected.Distinct {
				if f.Component == "Harness Internal Error" {
					continue
				}
				if !cleanSigs[f.Signature] {
					t.Errorf("injected campaign invented finding %q", f.Signature)
				}
			}
		})
	}
}

// TestCampaignSeedTimeout: a seed exceeding SeedTimeout is discarded
// (DiscardedSeeds) while the rest of the campaign proceeds.
func TestCampaignSeedTimeout(t *testing.T) {
	prof := profile(t, "openj9like")
	// Two calibrations keep this stable on slow or loaded boxes (the
	// race detector alone is a ~10x slowdown): the wall-clock budget
	// is derived from the measured per-seed cost of a baseline
	// campaign (10x margin for healthy seeds), and the stuck seed
	// sleeps several budgets past it. Some seeds are also discarded
	// intrinsically (deterministic StepLimit), so assert the
	// wall-clock discard as a delta over the baseline.
	const slowIdx = 2
	opts := CampaignOptions{
		Options: Options{Profile: prof, MaxIter: 2, Buggy: true},
		Seeds:   4,
		Workers: 2,
	}
	baseline := RunCampaign(opts)
	budget := 10 * (baseline.Elapsed / time.Duration(opts.Seeds))
	if budget < 2*time.Second {
		budget = 2 * time.Second
	}
	opts.SeedTimeout = budget
	opts.seedHook = func(idx int, seedID int64) {
		if idx == slowIdx {
			time.Sleep(5 * budget)
		}
	}
	stats := RunCampaign(opts)
	if stats.DiscardedSeeds != baseline.DiscardedSeeds+1 {
		t.Errorf("DiscardedSeeds = %d, want %d (baseline %d + the slow seed)",
			stats.DiscardedSeeds, baseline.DiscardedSeeds+1, baseline.DiscardedSeeds)
	}
	if stats.Seeds != 4 {
		t.Errorf("campaign did not complete: %d/4 seeds", stats.Seeds)
	}
	// The other seeds still ran: they account for runs and mutants.
	if stats.Runs == 0 || stats.Mutants == 0 {
		t.Errorf("non-slow seeds produced no work: runs=%d mutants=%d", stats.Runs, stats.Mutants)
	}
}

// TestExamplePairingRegression: Examples must pair each finding with
// its own mutant source. A finding without a source (a seed whose
// default run crashed) must not steal the next finding's source, and
// a malformed Result (lengths out of sync) must yield no example at
// all rather than a mispaired one.
func TestExamplePairingRegression(t *testing.T) {
	prof := profile(t, "openj9like")
	opts := CampaignOptions{Options: Options{Profile: prof}, Seeds: 2}

	mkFinding := func(sig string) Finding {
		return Finding{Kind: CrashFinding, Profile: prof.Name, Signature: sig, Detail: sig}
	}

	t.Run("sourceless finding does not shift pairing", func(t *testing.T) {
		m := newMerger(opts, time.Now())
		// Seed 0: default-run crash — finding with no mutant source.
		m.add(seedOutcome{idx: 0, res: &Result{
			Findings:      []Finding{mkFinding("crash|seed-itself")},
			MutantSources: []string{""},
		}})
		// Seed 1: mutant-triggered finding with its source.
		m.add(seedOutcome{idx: 1, res: &Result{
			Findings:      []Finding{mkFinding("crash|mutant")},
			MutantSources: []string{"class Good { void main() {} }"},
		}})
		if len(m.stats.Distinct) != 2 {
			t.Fatalf("got %d distinct findings, want 2", len(m.stats.Distinct))
		}
		if len(m.stats.Examples) != 1 || m.stats.Examples[0] != "class Good { void main() {} }" {
			t.Errorf("examples mispaired: %q", m.stats.Examples)
		}
	})

	t.Run("malformed result collects no examples", func(t *testing.T) {
		m := newMerger(opts, time.Now())
		// Two findings but only one recorded source: alignment unknown,
		// so no source may be paired with either finding.
		m.add(seedOutcome{idx: 0, res: &Result{
			Findings:      []Finding{mkFinding("a"), mkFinding("b")},
			MutantSources: []string{"class Ambiguous {}"},
		}})
		if len(m.stats.Examples) != 0 {
			t.Errorf("mispaired example from malformed result: %q", m.stats.Examples)
		}
	})
}

// TestValidateSourceInvariant: Validate must uphold the 1:1
// Findings/MutantSources invariant the merger relies on, across many
// seeds (including seeds whose default run crashes).
func TestValidateSourceInvariant(t *testing.T) {
	prof := profile(t, "hotspotlike")
	checked := 0
	for i := 0; i < 15; i++ {
		out := runSeed(CampaignOptions{
			Options:  Options{Profile: prof, MaxIter: 3, Buggy: true},
			SeedBase: 100,
		}, i, nil)
		if out.res.SeedDiscarded {
			continue
		}
		checked++
		if len(out.res.Findings) != len(out.res.MutantSources) {
			t.Fatalf("seed %d: %d findings but %d sources",
				i, len(out.res.Findings), len(out.res.MutantSources))
		}
	}
	if checked == 0 {
		t.Skip("every seed discarded; invariant unexercised")
	}
}

// TestCampaignParallelRaceStress is a small parallel campaign plus a
// parallel space enumeration meant to run under `go test -race`: it
// exists to give the race detector real concurrent load (oversubscribed
// workers, comparative oracle, trace recording).
func TestCampaignParallelRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	prof := profile(t, "hotspotlike")
	stats := RunCampaign(CampaignOptions{
		Options:     Options{Profile: prof, MaxIter: 3, Buggy: true},
		Seeds:       16,
		Workers:     8, // oversubscribed on purpose
		Comparative: true,
		Progress:    func(Progress) {},
	})
	if stats.Seeds != 16 {
		t.Fatalf("campaign incomplete: %d/16 seeds", stats.Seeds)
	}

	// Parallel space enumeration shares one compiled program across
	// workers; outputs must agree with the sequential enumeration.
	src := mustParse(t, `class T {
        int baz() { return 1; }
        int bar() { return 2; }
        int foo() { return bar() + baz(); }
        void main() { print(foo()); }
    }`)
	methods := []string{"main", "foo", "bar", "baz"}
	seq := EnumerateSpaceParallel(prof, src, methods, false, 1)
	par := EnumerateSpaceParallel(prof, src, methods, false, 8)
	if len(seq) != len(par) {
		t.Fatalf("choice counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Output.Key() != par[i].Output.Key() {
			t.Errorf("choice %d diverges: %q vs %q", i, seq[i].Output.Key(), par[i].Output.Key())
		}
		if seq[i].Trace.Key() != par[i].Trace.Key() {
			t.Errorf("choice %d trace diverges", i)
		}
	}
}

// TestProgressHook: the hook fires once per seed, in seed order, with
// monotonically increasing counters and a sane final snapshot.
func TestProgressHook(t *testing.T) {
	prof := profile(t, "openj9like")
	var snaps []Progress
	stats := RunCampaign(CampaignOptions{
		Options:  Options{Profile: prof, MaxIter: 2, Buggy: true},
		Seeds:    6,
		Workers:  3,
		Progress: func(p Progress) { snaps = append(snaps, p) },
	})
	if len(snaps) != 6 {
		t.Fatalf("progress fired %d times, want 6", len(snaps))
	}
	for i, p := range snaps {
		if p.SeedsDone != i+1 {
			t.Errorf("snapshot %d: SeedsDone=%d, want %d", i, p.SeedsDone, i+1)
		}
		if p.Seeds != 6 {
			t.Errorf("snapshot %d: Seeds=%d, want 6", i, p.Seeds)
		}
		if i > 0 && p.Runs < snaps[i-1].Runs {
			t.Errorf("snapshot %d: Runs decreased %d -> %d", i, snaps[i-1].Runs, p.Runs)
		}
	}
	final := snaps[len(snaps)-1]
	if final.Runs != stats.Runs {
		t.Errorf("final snapshot Runs=%d, stats.Runs=%d", final.Runs, stats.Runs)
	}
	if final.ETA() != 0 {
		t.Errorf("final ETA = %v, want 0", final.ETA())
	}
}

// TestProgressETAClamped: ETA must never go negative — SeedsDone can
// exceed Seeds when a resumed campaign replays a journal recorded
// past the currently requested seed count.
func TestProgressETAClamped(t *testing.T) {
	cases := []struct {
		name string
		p    Progress
	}{
		{"overshoot", Progress{SeedsDone: 7, Seeds: 5, Elapsed: 10 * time.Second}},
		{"exactly done", Progress{SeedsDone: 5, Seeds: 5, Elapsed: 10 * time.Second}},
		{"nothing done", Progress{SeedsDone: 0, Seeds: 5, Elapsed: 10 * time.Second}},
		{"zero seeds", Progress{SeedsDone: 0, Seeds: 0}},
	}
	for _, tc := range cases {
		if eta := tc.p.ETA(); eta < 0 {
			t.Errorf("%s: ETA = %v, want >= 0", tc.name, eta)
		} else if tc.p.SeedsDone >= tc.p.Seeds && eta != 0 {
			t.Errorf("%s: ETA = %v, want 0 once done", tc.name, eta)
		}
	}
	// Sanity: a half-done campaign still projects forward.
	half := Progress{SeedsDone: 5, Seeds: 10, Elapsed: 10 * time.Second}
	if eta := half.ETA(); eta != 10*time.Second {
		t.Errorf("half-done ETA = %v, want 10s", eta)
	}
}
