package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"artemis/internal/journal"
	"artemis/internal/lang/ast"
	"artemis/internal/lang/parser"
	"artemis/internal/vm"
)

// resumeOpts is the shared campaign configuration for the resume
// suite: metrics on and comparative on, so every deterministic output
// surface (CampaignStats, Table 4 columns, -metrics JSON) is
// exercised across the interrupt+resume boundary.
func resumeOpts(t *testing.T, seeds int) CampaignOptions {
	t.Helper()
	return CampaignOptions{
		Options: Options{
			Profile: profile(t, "openj9like"), MaxIter: 3, Buggy: true,
			CollectMetrics: true,
		},
		Seeds:       seeds,
		SeedBase:    3,
		Comparative: true,
	}
}

func metricsJSON(t *testing.T, s *CampaignStats) string {
	t.Helper()
	data, err := MetricsReport([]*CampaignStats{s})
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestResumeDeterminism is the tentpole acceptance test: a campaign
// killed after k seeds and resumed from its journal must produce
// CampaignStats and -metrics JSON byte-identical to an uninterrupted
// run — at worker counts 1, 2, and 4 — and the resumed journal file
// itself must be byte-identical to the uninterrupted run's journal.
func TestResumeDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("resume determinism sweep is slow")
	}
	const total, interrupt = 10, 4

	// Reference: no journal at all (the legacy in-memory path).
	plain := RunCampaign(resumeOpts(t, total))
	wantStats := statsKey(plain)
	wantMetrics := metricsJSON(t, plain)

	for _, workers := range []int{1, 2, 4} {
		t.Run(map[int]string{1: "workers=1", 2: "workers=2", 4: "workers=4"}[workers], func(t *testing.T) {
			dir := t.TempDir()

			// Uninterrupted journaled run.
			straightPath := filepath.Join(dir, "straight.journal")
			straightOpts := resumeOpts(t, total)
			straightOpts.Workers = workers
			straightOpts.JournalPath = straightPath
			straight, err := RunResumableCampaign(straightOpts)
			if err != nil {
				t.Fatal(err)
			}
			if got := statsKey(straight); got != wantStats {
				t.Errorf("journaling changed campaign stats:\n--- plain ---\n%s\n--- journaled ---\n%s", wantStats, got)
			}

			// Interrupted run: the same campaign stopped after
			// `interrupt` seeds (a crash after seed k leaves exactly
			// this journal prefix — the merger journals in seed order).
			resumePath := filepath.Join(dir, "resume.journal")
			partOpts := resumeOpts(t, interrupt)
			partOpts.Workers = workers
			partOpts.JournalPath = resumePath
			if _, err := RunResumableCampaign(partOpts); err != nil {
				t.Fatal(err)
			}

			// Resume to the full seed count.
			resOpts := resumeOpts(t, total)
			resOpts.Workers = workers
			resOpts.JournalPath = resumePath
			resOpts.Resume = true
			resumed, err := RunResumableCampaign(resOpts)
			if err != nil {
				t.Fatal(err)
			}
			if got := statsKey(resumed); got != wantStats {
				t.Errorf("resumed stats diverge from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", wantStats, got)
			}
			if got := metricsJSON(t, resumed); got != wantMetrics {
				t.Errorf("resumed -metrics JSON diverges:\n--- want ---\n%s\n--- got ---\n%s", wantMetrics, got)
			}

			// The journals themselves converge byte for byte.
			sb, err := os.ReadFile(straightPath)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := os.ReadFile(resumePath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sb, rb) {
				t.Errorf("resumed journal differs from straight-through journal (%d vs %d bytes)", len(sb), len(rb))
			}
		})
	}
}

// TestResumeAfterTornRecord simulates the real crash shape: the
// process dies mid-append, leaving a torn final record. Resume must
// drop the torn record, re-run that seed, and still converge on the
// uninterrupted campaign byte for byte.
func TestResumeAfterTornRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("torn-record resume is slow")
	}
	const total, interrupt = 8, 3
	plain := RunCampaign(resumeOpts(t, total))

	dir := t.TempDir()
	path := filepath.Join(dir, "torn.journal")
	partOpts := resumeOpts(t, interrupt)
	partOpts.JournalPath = path
	if _, err := RunResumableCampaign(partOpts); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-9], 0o644); err != nil { // tear the last record
		t.Fatal(err)
	}

	resOpts := resumeOpts(t, total)
	resOpts.JournalPath = path
	resOpts.Resume = true
	resOpts.Workers = 2
	resumed, err := RunResumableCampaign(resOpts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := statsKey(resumed), statsKey(plain); got != want {
		t.Errorf("torn-tail resume diverges:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

// TestResumeConfigMismatch: a journal written under one campaign
// configuration must refuse to resume under another — splicing
// incompatible campaigns would corrupt results silently.
func TestResumeConfigMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mismatch.journal")
	opts := resumeOpts(t, 2)
	opts.JournalPath = path
	if _, err := RunResumableCampaign(opts); err != nil {
		t.Fatal(err)
	}
	bad := resumeOpts(t, 4)
	bad.JournalPath = path
	bad.Resume = true
	bad.Options.MaxIter = 5 // changes per-seed outcomes
	if _, err := RunResumableCampaign(bad); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Errorf("config-mismatch resume: got %v, want mismatch error", err)
	}
}

// TestJournalRefusesClobber: without Resume, an existing journal is
// prior work and must not be overwritten.
func TestJournalRefusesClobber(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "precious.journal")
	opts := resumeOpts(t, 2)
	opts.JournalPath = path
	if _, err := RunResumableCampaign(opts); err != nil {
		t.Fatal(err)
	}
	again := resumeOpts(t, 2)
	again.JournalPath = path
	if _, err := RunResumableCampaign(again); err == nil {
		t.Error("second campaign clobbered an existing journal without -resume")
	}
}

// TestResumeFreshJournal: Resume against a journal that does not
// exist yet starts a fresh campaign (so -resume is safe to pass
// unconditionally in crontab-style campaign loops).
func TestResumeFreshJournal(t *testing.T) {
	dir := t.TempDir()
	opts := resumeOpts(t, 2)
	opts.JournalPath = filepath.Join(dir, "new.journal")
	opts.Resume = true
	stats, err := RunResumableCampaign(opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Seeds != 2 {
		t.Errorf("fresh resume ran %d seeds, want 2", stats.Seeds)
	}
	rec, err := journal.Recover(opts.JournalPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 3 { // header + 2 seeds
		t.Errorf("fresh resume journal has %d records, want 3", len(rec.Records))
	}
}

// TestCorpusEntries drives the corpus acceptance criterion: every
// novel finding signature yields an entry holding the original
// reproducer, and every auto-reduced reproducer still triggers the
// exact signature it was filed under.
func TestCorpusEntries(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus campaign is slow")
	}
	dir := t.TempDir()
	opts := resumeOpts(t, 10)
	opts.Comparative = false
	opts.CorpusDir = filepath.Join(dir, "corpus")
	opts.ReduceBudget = 24 // keep the test fast; determinism doesn't depend on it
	stats, err := RunResumableCampaign(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Distinct) == 0 {
		t.Fatal("campaign found nothing; corpus assertions would be vacuous")
	}

	kc := KeepConfig{
		Profile:   opts.Options.Profile,
		Bugs:      opts.Options.bugSet(),
		StepLimit: opts.Options.StepLimit,
	}
	reducedSeen := false
	for _, f := range stats.Distinct {
		entry := filepath.Join(opts.CorpusDir, EntryName(f.Signature))
		detail, err := os.ReadFile(filepath.Join(entry, "finding.json"))
		if err != nil {
			t.Errorf("signature %q: no corpus entry: %v", f.Signature, err)
			continue
		}
		var cf struct {
			Signature string `json:"signature"`
			Reduced   bool   `json:"reduced"`
		}
		if err := json.Unmarshal(detail, &cf); err != nil {
			t.Errorf("entry %s: bad finding.json: %v", entry, err)
			continue
		}
		if cf.Signature != f.Signature {
			t.Errorf("entry %s: signature %q, want %q", entry, cf.Signature, f.Signature)
		}
		if _, err := os.Stat(filepath.Join(entry, "seed.mj")); err != nil {
			t.Errorf("entry %s: missing seed.mj", entry)
		}
		if f.MutantID >= 0 {
			if _, err := os.Stat(filepath.Join(entry, "mutant.mj")); err != nil {
				t.Errorf("entry %s: missing mutant.mj for mutant-triggered finding", entry)
			}
		}
		if !cf.Reduced {
			continue
		}
		reducedSeen = true
		src, err := os.ReadFile(filepath.Join(entry, "reduced.mj"))
		if err != nil {
			t.Errorf("entry %s: finding.json claims a reduced reproducer but reduced.mj is missing", entry)
			continue
		}
		prog, err := parser.Parse(string(src))
		if err != nil {
			t.Errorf("entry %s: reduced.mj does not parse: %v", entry, err)
			continue
		}
		keep := keepForFinding(kc, f.Finding)
		if keep == nil {
			t.Errorf("entry %s: reduced entry for kind %s which has no predicate", entry, f.Kind)
			continue
		}
		if !keep(prog) {
			t.Errorf("entry %s: reduced reproducer no longer triggers signature %q", entry, f.Signature)
		}
	}
	if !reducedSeen {
		t.Error("no corpus entry was auto-reduced; the reduction stage never fired")
	}
}

// TestCorpusIdempotentAcrossResume: replayed findings (cached seed
// outcomes) must not re-reduce or rewrite completed corpus entries.
func TestCorpusIdempotentAcrossResume(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus resume campaign is slow")
	}
	dir := t.TempDir()
	corpusDir := filepath.Join(dir, "corpus")
	path := filepath.Join(dir, "c.journal")

	// Seed index 7 is the first finder in this configuration, so the
	// 8-seed prefix deterministically populates the corpus before the
	// interrupt.
	part := resumeOpts(t, 8)
	part.Comparative = false
	part.JournalPath = path
	part.CorpusDir = corpusDir
	part.ReduceBudget = 24
	if _, err := RunResumableCampaign(part); err != nil {
		t.Fatal(err)
	}
	before := corpusSnapshot(t, corpusDir)
	if len(before) == 0 {
		t.Fatal("interrupted campaign produced no corpus entries to replay")
	}

	full := resumeOpts(t, 10)
	full.Comparative = false
	full.JournalPath = path
	full.CorpusDir = corpusDir
	full.ReduceBudget = 24
	full.Resume = true
	if _, err := RunResumableCampaign(full); err != nil {
		t.Fatal(err)
	}
	after := corpusSnapshot(t, corpusDir)
	for name, sum := range before {
		if after[name] != sum {
			t.Errorf("corpus file %s changed across resume", name)
		}
	}
}

// corpusSnapshot maps every corpus file to its content for
// modification checks.
func corpusSnapshot(t *testing.T, dir string) map[string]string {
	t.Helper()
	snap := map[string]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return snap
		}
		t.Fatal(err)
	}
	for _, e := range entries {
		files, err := os.ReadDir(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			p := filepath.Join(dir, e.Name(), f.Name())
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			snap[filepath.Join(e.Name(), f.Name())] = string(data)
		}
	}
	return snap
}

// TestKeepPredicateModes covers the shared predicate builder at the
// unit level with hand-built programs (no campaign needed).
func TestKeepPredicateModes(t *testing.T) {
	prof := profile(t, "openj9like")
	kc := KeepConfig{Profile: prof, Bugs: prof.BugSet(), StepLimit: 1_000_000}
	benign := mustParse(t, `class T { void main() { print(1); } }`)
	if kc.Crash()(benign) {
		t.Error("crash predicate kept a benign program")
	}
	if kc.Diff()(benign) {
		t.Error("diff predicate kept a benign program")
	}
	if _, err := kc.ForMode("diff"); err != nil {
		t.Error(err)
	}
	if _, err := kc.ForMode("nope"); err == nil {
		t.Error("ForMode accepted an unknown mode")
	}
	// Signature predicates must reject programs whose behaviour is
	// fine even when the signature string is arbitrary.
	if kc.CrashSignature("crash|openj9like|X|y")(benign) {
		t.Error("crash-signature predicate kept a non-crashing program")
	}
	if kc.MiscompileSignature("miscompile|openj9like|normal-vs-normal")(benign) {
		t.Error("miscompile-signature predicate kept a clean program")
	}
	if out := kc.runJIT(benign); out.Term != vm.TermNormal {
		t.Errorf("benign program terminated %v", out.Term)
	}
}

// TestBudgetedPredicate: once the budget is spent every candidate is
// rejected and the underlying predicate is never consulted again —
// the property that makes in-campaign reduction unable to stall.
func TestBudgetedPredicate(t *testing.T) {
	calls := 0
	p := budgetedPredicate(func(*ast.Program) bool { calls++; return true }, 3)
	prog := mustParse(t, `class T { void main() { print(1); } }`)
	for i := 0; i < 10; i++ {
		want := i < 3
		if got := p(prog); got != want {
			t.Errorf("evaluation %d: got %v, want %v", i, got, want)
		}
	}
	if calls != 3 {
		t.Errorf("underlying predicate consulted %d times, want 3", calls)
	}
}
