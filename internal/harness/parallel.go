// Parallel campaign engine. Seeds are embarrassingly parallel — each
// seed's generate → mutate → validate → comparative-baseline chain is
// keyed only by SeedBase+i and touches no shared mutable state (every
// run builds a fresh VM and JIT; package-level tables are read-only).
// A pool of workers fans seeds out to goroutines and a single reducer
// merges per-seed outcomes **in seed order**, buffering out-of-order
// arrivals, so CampaignStats — dedup order of Distinct, Examples
// selection, Table 1/2/4 output — is byte-identical to a sequential
// run for any worker count.

package harness

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"artemis/internal/fuzz"
	"artemis/internal/journal"
	"artemis/internal/vm"
)

// ---------------------------------------------------------------------------
// Per-seed execution
// ---------------------------------------------------------------------------

// seedOutcome carries everything one seed contributes to the campaign:
// its validation result plus the comparative-baseline verdict. It is
// the unit flowing from workers to the reducer — and, JSON-encoded as
// a seedRecord (persist.go), the unit of journal durability.
type seedOutcome struct {
	idx      int // 0-based seed index (merge order key)
	res      *Result
	tradHit  bool
	tradRuns int
	// cached marks an outcome replayed from the journal on resume: it
	// is merged like any other but not journaled again.
	cached bool
}

// runSeed executes one seed end to end: generate, validate (Algorithm
// 1), and optionally the traditional baseline. A panic anywhere in the
// chain is converted into an internal-error finding so one bad seed
// cannot take down a campaign that has hours of work behind it.
// scratch is this worker's reusable VM memory (may be nil); it is
// threaded into every run of the chain, including the comparative
// baseline, which also reuses the seed program Validate compiled.
func runSeed(opts CampaignOptions, idx int, scratch *vm.Scratch) (out seedOutcome) {
	out.idx = idx
	seedID := opts.SeedBase + int64(idx)
	defer func() {
		if r := recover(); r != nil {
			out.res = panicResult(opts.Options.Profile.Name, seedID, r)
			out.tradHit, out.tradRuns = false, 0
		}
	}()
	if opts.seedHook != nil {
		opts.seedHook(idx, seedID)
	}
	seedProg := fuzz.Generate(fuzz.Options{Seed: seedID})

	o := opts.Options
	o.Rand = rand.New(rand.NewSource(seedID * 7919))
	o.scratch = scratch
	out.res = Validate(seedProg, seedID, o)
	if out.res.SeedDiscarded {
		return out
	}
	if opts.Comparative {
		out.tradHit, out.tradRuns = TraditionalDiscrepancy(out.res.seedBP, o)
	}
	return out
}

// panicResult wraps a worker panic as a crash-kind finding attributed
// to the harness itself, so it surfaces in reports (and dedups like
// any crash) instead of killing the campaign.
func panicResult(profile string, seedID int64, r any) *Result {
	detail := fmt.Sprintf("internal error: seed worker panic: %v", r)
	f := Finding{
		Kind:      CrashFinding,
		Profile:   profile,
		Component: "Harness Internal Error",
		Detail:    detail,
		SeedID:    seedID,
		MutantID:  -1,
	}
	f.Signature = signatureOf(CrashFinding, profile, f.Component, detail)
	return &Result{
		Findings:      []Finding{f},
		MutantSources: []string{""}, // no mutant source for an internal error
	}
}

// runSeedBounded applies the optional per-seed wall-clock budget: a
// seed that exceeds it is discarded (feeding DiscardedSeeds, like the
// step-budget discard of Section 4.3). The abandoned goroutine drains
// into a buffered channel and finishes in the background. Note that a
// wall-clock cutoff is inherently timing-dependent: campaigns that
// need bit-exact reproducibility should leave SeedTimeout at 0 and
// rely on the deterministic StepLimit instead.
func runSeedBounded(opts CampaignOptions, idx int, scratch *vm.Scratch) seedOutcome {
	if opts.SeedTimeout <= 0 {
		return runSeed(opts, idx, scratch)
	}
	// The bounded goroutine may outlive this call (abandoned on
	// timeout, still running while the worker moves on), so it must
	// not share the worker's scratch: give it a fresh one. Reuse still
	// happens across the dozens of runs within the seed's own chain.
	ch := make(chan seedOutcome, 1)
	go func() { ch <- runSeed(opts, idx, &vm.Scratch{}) }()
	timer := time.NewTimer(opts.SeedTimeout)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out
	case <-timer.C:
		return seedOutcome{idx: idx, res: &Result{SeedDiscarded: true}}
	}
}

// ---------------------------------------------------------------------------
// Deterministic merge
// ---------------------------------------------------------------------------

// merger folds seed outcomes into CampaignStats. It must only ever be
// fed outcomes in seed order (idx 0, 1, 2, ...): dedup assigns
// Distinct slots first-come, and Examples keeps the first five
// sources, so order is the whole determinism story.
type merger struct {
	opts  CampaignOptions
	stats *CampaignStats
	seen  map[string]int // signature -> index into Distinct
	start time.Time
	done  int

	// Persistence (both optional). journal receives every freshly
	// computed outcome before it folds into the stats; corpus receives
	// every first-seen finding signature. Both run on the reducer
	// goroutine, in seed order, so journals are contiguous prefixes of
	// the campaign and corpus entry creation is deterministic. The
	// first write failure is retained, not fatal: losing persistence
	// must not lose the in-memory campaign too.
	journal    *journal.Writer
	corpus     *corpusWriter
	persistErr error

	// blamer, when non-nil (CampaignOptions.Blame), localizes every
	// first-seen crash/mis-compilation finding on the reducer. Results
	// attach to DedupFinding.Blame and, with a corpus, to blame.json.
	// Never journaled: localization is deterministic given the
	// reproducer, so resumes recompute identical results.
	blamer *blamer
}

func newMerger(opts CampaignOptions, start time.Time) *merger {
	return &merger{
		opts:  opts,
		stats: &CampaignStats{Profile: opts.Options.Profile.Name, Seeds: opts.Seeds},
		seen:  map[string]int{},
		start: start,
	}
}

// add folds one seed's outcome into the stats.
func (m *merger) add(out seedOutcome) {
	res := out.res
	m.done++
	if m.journal != nil && !out.cached {
		if err := appendSeedRecord(m.journal, m.opts, out); err != nil && m.persistErr == nil {
			m.persistErr = err
		}
	}
	m.stats.Runs += res.Runs + out.tradRuns
	m.stats.Mutants += res.Mutants
	if res.Metrics != nil {
		if m.stats.Metrics == nil {
			m.stats.Metrics = &CampaignMetrics{}
		}
		m.stats.Metrics.merge(res.Metrics)
	}
	if m.opts.Progress != nil {
		defer m.emitProgress()
	}
	if res.SeedDiscarded {
		m.stats.DiscardedSeeds++
		return
	}
	if len(res.Findings) > 0 {
		m.stats.CSESeeds++
	}
	// MutantSources pairs 1:1 with Findings ("" = no source, e.g. a
	// seed whose default run crashed). A length mismatch means the
	// Result was built by hand without the invariant; in that case no
	// pairing is trustworthy, so collect no examples rather than
	// mispair a source with a foreign finding.
	paired := len(res.MutantSources) == len(res.Findings)
	for fi, f := range res.Findings {
		src := ""
		if paired {
			src = res.MutantSources[fi]
		}
		if idx, dup := m.seen[f.Signature]; dup {
			m.stats.Duplicates++
			m.stats.Distinct[idx].Count++
			continue
		}
		m.seen[f.Signature] = len(m.stats.Distinct)
		m.stats.Distinct = append(m.stats.Distinct, DedupFinding{Finding: f, Count: 1})
		if src != "" && len(m.stats.Examples) < 5 {
			m.stats.Examples = append(m.stats.Examples, src)
		}
		reproSrc := src
		if m.corpus != nil {
			// First sighting of this signature: persist (and
			// auto-reduce) its reproducer. Runs here, on the reducer,
			// so the corpus never races and entry order is the
			// deterministic discovery order. Replayed findings hit the
			// idempotence check and return immediately (handing back
			// the recorded reproducer for localization below).
			recorded, err := m.corpus.record(f, src)
			if err != nil && m.persistErr == nil {
				m.persistErr = err
			}
			if recorded != "" {
				reproSrc = recorded
			}
		}
		if m.blamer != nil {
			// Localize on the best reproducer (reduced > mutant >
			// seed). Also on the reducer, also deterministic, so the
			// blame table is identical at any worker count.
			if res := m.blamer.localize(f, reproSrc); res != nil {
				m.stats.Distinct[len(m.stats.Distinct)-1].Blame = res
				if m.corpus != nil {
					if err := m.corpus.writeBlame(f.Signature, res); err != nil && m.persistErr == nil {
						m.persistErr = err
					}
				}
			}
		}
	}
	if out.tradHit {
		m.stats.TradSeeds++
		if len(res.Findings) > 0 {
			m.stats.BothSeeds++
		}
	}
}

func (m *merger) emitProgress() {
	m.opts.Progress(Progress{
		SeedsDone: m.done,
		Seeds:     m.opts.Seeds,
		Runs:      m.stats.Runs,
		Findings:  len(m.stats.Distinct),
		Elapsed:   time.Since(m.start),
	})
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

// runCampaignParallel drives opts.Seeds seeds over a pool of workers
// and merges outcomes deterministically. workers must be >= 1.
// Outcomes in cached (journaled by an interrupted run) are not
// re-computed: they replay through the merger at their seed-order
// slot, interleaved with freshly computed ones.
func runCampaignParallel(opts CampaignOptions, workers int, m *merger, cached map[int]seedOutcome) {
	if workers > opts.Seeds && opts.Seeds > 0 {
		workers = opts.Seeds
	}
	if workers <= 1 {
		// Sequential fast path: same runSeed + merge code, no
		// goroutines — workers=1 is the reference the determinism
		// tests compare every other worker count against.
		scratch := &vm.Scratch{}
		for i := 0; i < opts.Seeds; i++ {
			if out, ok := cached[i]; ok {
				m.add(out)
				continue
			}
			m.add(runSeedBounded(opts, i, scratch))
		}
		return
	}

	jobs := make(chan int)
	outs := make(chan seedOutcome, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := &vm.Scratch{} // per-worker, never shared
			for i := range jobs {
				outs <- runSeedBounded(opts, i, scratch)
			}
		}()
	}
	go func() {
		for i := 0; i < opts.Seeds; i++ {
			if _, ok := cached[i]; ok {
				continue // journaled: replayed by the reducer, not re-run
			}
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(outs)
	}()

	// Reducer: buffer out-of-order arrivals, release in seed order.
	// Cached outcomes pre-populate the buffer so the release loop
	// treats journaled and fresh seeds uniformly.
	pending := map[int]seedOutcome{}
	for i, out := range cached {
		if i < opts.Seeds {
			pending[i] = out
		}
	}
	next := 0
	release := func() {
		for {
			o, ok := pending[next]
			if !ok {
				return
			}
			delete(pending, next)
			m.add(o)
			next++
		}
	}
	release() // a cached prefix merges before any worker reports
	for out := range outs {
		pending[out.idx] = out
		release()
	}
}

// ---------------------------------------------------------------------------
// Progress reporting
// ---------------------------------------------------------------------------

// Progress is a point-in-time snapshot handed to the campaign progress
// hook after each merged seed (in seed order, from a single
// goroutine — hooks need no locking).
type Progress struct {
	SeedsDone int
	Seeds     int
	Runs      int           // VM invocations so far
	Findings  int           // distinct findings so far
	Elapsed   time.Duration // since campaign start
}

// RunsPerSec is the campaign's VM-invocation throughput so far.
func (p Progress) RunsPerSec() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.Runs) / p.Elapsed.Seconds()
}

// ETA estimates the remaining wall-clock time from per-seed averages,
// clamped to >= 0: SeedsDone can exceed Seeds (a resumed campaign
// replaying a journal recorded past the currently requested seed
// count), and a negative "remaining time" is never meaningful.
func (p Progress) ETA() time.Duration {
	if p.SeedsDone <= 0 || p.SeedsDone >= p.Seeds {
		return 0
	}
	perSeed := p.Elapsed / time.Duration(p.SeedsDone)
	return perSeed * time.Duration(p.Seeds-p.SeedsDone)
}

// StderrProgress returns a progress hook that logs to stderr at most
// once per interval, plus a final line when the last seed lands.
func StderrProgress(interval time.Duration) func(Progress) {
	var last time.Time
	return func(p Progress) {
		now := time.Now()
		if p.SeedsDone < p.Seeds && now.Sub(last) < interval {
			return
		}
		last = now
		fmt.Fprintf(os.Stderr, "  [%d/%d seeds] %d runs, %.1f runs/s, %d distinct findings, ETA %s\n",
			p.SeedsDone, p.Seeds, p.Runs, p.RunsPerSec(), p.Findings, p.ETA().Round(time.Second))
	}
}

// DefaultWorkers is the worker count used when Workers is 0.
func DefaultWorkers() int { return runtime.NumCPU() }
