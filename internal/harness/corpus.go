// Persistent findings corpus: one directory per novel finding
// signature, holding everything a developer (or a later triage tool)
// needs to act on the report without re-running the campaign —
//
//	<corpus>/<entry>/seed.mj       the generating seed program
//	<corpus>/<entry>/mutant.mj     the mutant that triggered the finding
//	                               (absent when the seed itself crashed)
//	<corpus>/<entry>/reduced.mj    auto-reduced reproducer, present only
//	                               when it provably re-triggers the same
//	                               signature (see keep.go)
//	<corpus>/<entry>/finding.json  the finding detail + reduction report
//	<corpus>/<entry>/blame.json    automatic fault localization (guilty
//	                               pass set + minimal compilation-space
//	                               point), present when the campaign ran
//	                               with Blame enabled
//
// finding.json is written last, so its presence marks a complete
// entry; a campaign killed mid-entry simply rewrites the entry on
// resume. Entries are keyed by signature, which makes corpus writes
// idempotent across resumed runs and across campaigns sharing a
// corpus directory.

package harness

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"

	"artemis/internal/blame"
	"artemis/internal/fuzz"
	"artemis/internal/lang/ast"
	"artemis/internal/lang/parser"
	"artemis/internal/reduce"
)

// DefaultReduceBudget is the per-finding cap on keep-predicate
// evaluations during in-campaign auto-reduction when
// CampaignOptions.ReduceBudget is 0. Each evaluation costs at most
// two StepLimit-bounded VM runs, so this bounds the stall a novel
// finding can inflict on campaign throughput.
const DefaultReduceBudget = 128

// corpusWriter persists novel findings as they are first seen by the
// deterministic merger (so entry creation order is reproducible).
type corpusWriter struct {
	dir    string
	kc     KeepConfig
	budget int // keep evaluations per finding; <0 disables reduction
}

func newCorpusWriter(opts CampaignOptions) (*corpusWriter, error) {
	if err := os.MkdirAll(opts.CorpusDir, 0o755); err != nil {
		return nil, fmt.Errorf("corpus dir: %w", err)
	}
	budget := opts.ReduceBudget
	if budget == 0 {
		budget = DefaultReduceBudget
	}
	return &corpusWriter{
		dir: opts.CorpusDir,
		kc: KeepConfig{
			Profile:   opts.Options.Profile,
			Bugs:      opts.Options.bugSet(),
			StepLimit: opts.Options.StepLimit,
		},
		budget: budget,
	}, nil
}

// corpusFinding is the JSON shape of finding.json.
type corpusFinding struct {
	Kind      string `json:"kind"`
	Profile   string `json:"profile"`
	Component string `json:"component,omitempty"`
	Signature string `json:"signature"`
	Detail    string `json:"detail"`
	SeedID    int64  `json:"seed_id"`
	MutantID  int    `json:"mutant_id"`
	// Reduced reports whether reduced.mj exists and re-triggers the
	// signature; ReduceNote says why not when it doesn't.
	Reduced        bool   `json:"reduced"`
	ReduceNote     string `json:"reduce_note,omitempty"`
	SizeStatements int    `json:"size_statements,omitempty"`
	ReducedSize    int    `json:"reduced_size_statements,omitempty"`
}

// EntryName maps a finding signature to its corpus subdirectory: a
// sanitized human-readable prefix plus an FNV hash of the full
// signature for uniqueness (signatures contain characters and lengths
// unfit for paths).
func EntryName(signature string) string {
	h := fnv.New32a()
	h.Write([]byte(signature))
	var b strings.Builder
	dash := false
	for _, r := range signature {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			dash = false
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
			dash = false
		default:
			if !dash && b.Len() > 0 {
				b.WriteByte('-')
				dash = true
			}
		}
		if b.Len() >= 48 {
			break
		}
	}
	return fmt.Sprintf("%s-%08x", strings.TrimRight(b.String(), "-"), h.Sum32())
}

// record persists one first-seen finding. mutantSrc is the triggering
// mutant's source ("" when the seed's own default run crashed).
// Idempotent: an entry whose finding.json already exists is left
// untouched, which is what makes resumed campaigns converge on the
// same corpus instead of re-reducing every replayed finding.
//
// It returns the best reproducer source for downstream stages (fault
// localization): the auto-reduced program when reduction succeeded,
// else the mutant, else the seed. On the idempotent-skip path the same
// preference order is read back from the entry, so a resumed campaign
// localizes against exactly the source a fresh one would.
func (c *corpusWriter) record(f Finding, mutantSrc string) (string, error) {
	dir := filepath.Join(c.dir, EntryName(f.Signature))
	if _, err := os.Stat(filepath.Join(dir, "finding.json")); err == nil {
		for _, name := range []string{"reduced.mj", "mutant.mj", "seed.mj"} {
			if b, err := os.ReadFile(filepath.Join(dir, name)); err == nil {
				return string(b), nil
			}
		}
		return "", nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}

	// The seed program is regenerated from its ID — generation is
	// deterministic, so this is exactly the program the worker ran.
	seedSrc := ast.Print(fuzz.Generate(fuzz.Options{Seed: f.SeedID}))
	if err := os.WriteFile(filepath.Join(dir, "seed.mj"), []byte(seedSrc), 0o644); err != nil {
		return "", err
	}
	reproSrc := seedSrc
	if mutantSrc != "" {
		reproSrc = mutantSrc
		if err := os.WriteFile(filepath.Join(dir, "mutant.mj"), []byte(mutantSrc), 0o644); err != nil {
			return "", err
		}
	}

	cf := corpusFinding{
		Kind:      f.Kind.String(),
		Profile:   f.Profile,
		Component: f.Component,
		Signature: f.Signature,
		Detail:    f.Detail,
		SeedID:    f.SeedID,
		MutantID:  f.MutantID,
	}
	reduced, note := c.autoReduce(f, reproSrc)
	cf.ReduceNote = note
	if reduced != nil {
		cf.Reduced = true
		cf.SizeStatements = mustSize(reproSrc)
		cf.ReducedSize = ast.ProgramSize(reduced)
		reproSrc = ast.Print(reduced)
		if err := os.WriteFile(filepath.Join(dir, "reduced.mj"), []byte(reproSrc), 0o644); err != nil {
			return "", err
		}
	}

	payload, err := json.MarshalIndent(cf, "", "  ")
	if err != nil {
		return "", err
	}
	// finding.json lands last: the entry's completeness marker.
	if err := os.WriteFile(filepath.Join(dir, "finding.json"), append(payload, '\n'), 0o644); err != nil {
		return "", err
	}
	return reproSrc, nil
}

// writeBlame persists one finding's fault localization as blame.json
// in its corpus entry. Idempotent like record: an existing blame.json
// is left untouched, so resumed campaigns do not churn corpus bytes.
func (c *corpusWriter) writeBlame(signature string, res *blame.Result) error {
	dir := filepath.Join(c.dir, EntryName(signature))
	path := filepath.Join(dir, "blame.json")
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	payload, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(payload, '\n'), 0o644)
}

// autoReduce shrinks the reproducer under the signature-preserving
// predicate, spending at most c.budget predicate evaluations. It
// returns nil (with a reason) when the finding kind has no in-campaign
// predicate, reduction is disabled, or the reproducer does not satisfy
// the predicate standalone (e.g. a discrepancy only observable against
// the original seed reference).
func (c *corpusWriter) autoReduce(f Finding, src string) (*ast.Program, string) {
	if c.budget < 0 {
		return nil, "auto-reduction disabled (ReduceBudget < 0)"
	}
	keep := keepForFinding(c.kc, f)
	if keep == nil {
		return nil, fmt.Sprintf("no in-campaign predicate for %s findings", f.Kind)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		// Printed sources always reparse; failure here is a harness
		// bug worth recording, not worth killing the campaign over.
		return nil, fmt.Sprintf("reproducer does not reparse: %v", err)
	}
	reduced, ok := reduce.ReduceChecked(prog, budgetedPredicate(keep, c.budget), reduce.Options{})
	if !ok {
		return nil, "reproducer does not re-trigger the signature standalone; stored unreduced"
	}
	return reduced, ""
}

func mustSize(src string) int {
	p, err := parser.Parse(src)
	if err != nil {
		return 0
	}
	return ast.ProgramSize(p)
}
