package harness

import (
	"fmt"
	"strings"
	"testing"

	"artemis/internal/blame"
)

// blameKey serializes every deterministic blame field of a campaign —
// per-finding results plus the rendered behavior-derived table — for
// byte-exact comparison across worker counts.
func blameKey(s *CampaignStats) string {
	var b strings.Builder
	for i, f := range s.Distinct {
		if f.Blame == nil {
			fmt.Fprintf(&b, "d[%d] sig=%q blame=nil\n", i, f.Signature)
			continue
		}
		fmt.Fprintf(&b, "d[%d] sig=%q passes=%v pv=%s methods=%v sv=%s ir=%q runs=%d\n",
			i, f.Signature, f.Blame.GuiltyPasses, f.Blame.PassVerdict,
			f.Blame.MinimalMethods, f.Blame.SpaceVerdict, f.Blame.IRInvariant, f.Blame.Runs)
	}
	b.WriteString(FormatBlameTable([]*CampaignStats{s}))
	return b.String()
}

// passForBug is the injected-tag ground truth the behavior-derived
// localization must reproduce: the tier-2 pipeline pass each seeded
// defect lives in, or "" for defects outside the disableable pass
// pipeline (SSA build, register allocation, codegen, compiled-code
// execution, GC interaction, tier-1 compilers).
var passForBug = map[string]string{
	"hs-gcm-store-sink":   "gcm",
	"hs-gvn-across-store": "gvn",
	"hs-gvn-table":        "gvn",
	"hs-gcp-fold-minint":  "fold",
	"hs-loopopt-nest":     "licm",
	"oj-lvp-across-call":  "valprop",
	"oj-gvp-join":         "valprop",
	"oj-vector-legality":  "licm",
	"oj-bce-offbyone":     "bce",
	"hs-c1-bigmethod":     "",
	"hs-igb-region":       "",
	"hs-ea-phi":           "",
	"hs-ra-highpressure":  "",
	"hs-cg-ushr-wide":     "",
	"hs-exec-guard-stack": "",
	"oj-ra-interval":      "",
	"oj-cg-switch-dense":  "",
	"oj-cg-l2i-skip":      "",
	"oj-jitint-guard":     "",
	"oj-recomp-limit":     "",
	"oj-deopt-stale":      "",
	"oj-gc-barrier":       "",
	"art-t1-ushr-int":     "",
	"art-t1-osr-switch":   "",
	"art-t1-bigframe":     "",
	"art-gc-clear":        "",
}

// TestCampaignBlameDeterministicAcrossWorkers: with Blame on, the
// per-finding localizations and the behavior-derived table must be
// byte-identical for any worker count (blame runs on the reducer in
// discovery order, from deterministic reproducer sources).
func TestCampaignBlameDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker blame sweep is slow")
	}
	prof := profile(t, "hotspotlike")
	run := func(workers int) *CampaignStats {
		return RunCampaign(CampaignOptions{
			Options: Options{Profile: prof, MaxIter: 4, Buggy: true},
			Seeds:   15,
			Workers: workers,
			Blame:   true,
		})
	}
	ref := run(1)
	localized := 0
	for _, f := range ref.Distinct {
		if f.Blame != nil {
			localized++
		}
	}
	if localized == 0 {
		t.Fatal("no finding was blamed; determinism comparison would be vacuous")
	}
	want := blameKey(ref)
	for _, workers := range []int{2, 4} {
		got := blameKey(run(workers))
		if got != want {
			t.Errorf("blame results diverge from workers=1 run:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
				want, workers, got)
		}
	}
}

// TestCampaignBlameAgreesWithInjectedTags: for every finding the
// campaign can both attribute to a seeded defect (ConfirmAndFix
// bisection over bug sets) and localize behaviorally (pass bisection
// over the reproducer), the two must agree — the guilty pass set must
// be exactly the pass the injected defect lives in, and defects
// outside the pass pipeline must be called out as such. This is the
// end-to-end check that the behavior-derived Table 2 measures the same
// thing as the tag-derived one.
func TestCampaignBlameAgreesWithInjectedTags(t *testing.T) {
	if testing.Short() {
		t.Skip("confirm+blame campaign is slow")
	}
	checked := 0
	for _, name := range []string{"hotspotlike", "openj9like"} {
		prof := profile(t, name)
		stats := RunCampaign(CampaignOptions{
			Options: Options{Profile: prof, MaxIter: 5, Buggy: true, ConfirmAndFix: true},
			Seeds:   20,
			Blame:   true,
		})
		for _, f := range stats.Distinct {
			if f.Blame == nil || f.FixedBy == "" {
				continue
			}
			wantPass, known := passForBug[f.FixedBy]
			if !known {
				t.Errorf("%s: bug %s missing from the ground-truth table", name, f.FixedBy)
				continue
			}
			switch f.Blame.PassVerdict {
			case blame.VerdictLocalized:
				checked++
				if wantPass == "" {
					t.Errorf("%s: %s (fixed-by=%s) localized to %v, but the defect lives outside the pass pipeline",
						name, f.Signature, f.FixedBy, f.Blame.GuiltyPasses)
				} else if len(f.Blame.GuiltyPasses) != 1 || f.Blame.GuiltyPasses[0] != wantPass {
					t.Errorf("%s: %s (fixed-by=%s) blamed %v, want [%s]",
						name, f.Signature, f.FixedBy, f.Blame.GuiltyPasses, wantPass)
				}
			case blame.VerdictOutsidePipeline:
				checked++
				if wantPass != "" {
					t.Errorf("%s: %s (fixed-by=%s) reported outside the pass pipeline, but the defect lives in %s",
						name, f.Signature, f.FixedBy, wantPass)
				}
			default:
				// not-reproduced / budget-exhausted carry no pass claim
				// to cross-check; log them so a systematic reproduction
				// failure is visible in -v output.
				t.Logf("%s: %s (fixed-by=%s) verdict %s — no tag cross-check",
					name, f.Signature, f.FixedBy, f.Blame.PassVerdict)
			}
		}
	}
	if checked == 0 {
		t.Error("no finding was both attributed and localized; agreement check is vacuous")
	}
}
