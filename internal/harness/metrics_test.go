package harness

import (
	"bytes"
	"testing"
	"time"

	"artemis/internal/lang/parser"
	"artemis/internal/vm"
)

// metricsCampaign runs one small metered campaign. StepLimit is kept
// low so hot mutants time out cheaply; all knobs are deterministic.
func metricsCampaign(t *testing.T, workers, traceLimit int) *CampaignStats {
	t.Helper()
	return RunCampaign(CampaignOptions{
		Options: Options{
			Profile: profile(t, "openj9like"), MaxIter: 4, Buggy: true,
			StepLimit: 3_000_000, CollectMetrics: true, TraceLimit: traceLimit,
		},
		Seeds:   10,
		Workers: workers,
	})
}

// TestMetricsDeterministicAcrossWorkers: the -metrics JSON (and the
// CampaignMetrics behind it) must be byte-identical for workers
// 1, 2 and 4 — metrics ride the same seed-ordered merge as findings.
func TestMetricsDeterministicAcrossWorkers(t *testing.T) {
	var ref []byte
	for _, w := range []int{1, 2, 4} {
		stats := metricsCampaign(t, w, 0)
		if stats.Metrics == nil {
			t.Fatalf("workers=%d: CollectMetrics campaign has nil Metrics", w)
		}
		data, err := MetricsReport([]*CampaignStats{stats})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = data
			m := stats.Metrics
			// Sanity on the reference: the campaign must actually have
			// explored — compiled execution, multiple tiers, and more
			// than one distinct JIT trace per seed on average.
			if m.MeteredRuns == 0 || m.Exec.CompiledSteps == 0 {
				t.Fatalf("degenerate metrics: %+v", m)
			}
			if len(m.RunsByMaxTier) < 2 {
				t.Errorf("no run left the interpreter: RunsByMaxTier=%v", m.RunsByMaxTier)
			}
			if m.DistinctTracesTotal < m.MeteredSeeds {
				t.Errorf("fewer distinct traces (%d) than seeds (%d)", m.DistinctTracesTotal, m.MeteredSeeds)
			}
			if m.MultiTraceSeeds == 0 {
				t.Error("no seed took two distinct JIT traces — no exploration happened")
			}
			continue
		}
		if !bytes.Equal(ref, data) {
			t.Errorf("workers=%d metrics JSON differs from workers=1:\n%s\nvs\n%s", w, ref, data)
		}
	}
}

// TestMetricsUnaffectedByTraceLimit: truncating retained trace vectors
// to 1 must not change a single metric — MaxTemp, trace keys, and all
// counters are tracked incrementally over the full run.
func TestMetricsUnaffectedByTraceLimit(t *testing.T) {
	full, err := MetricsReport([]*CampaignStats{metricsCampaign(t, 2, 0)})
	if err != nil {
		t.Fatal(err)
	}
	truncated, err := MetricsReport([]*CampaignStats{metricsCampaign(t, 2, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, truncated) {
		t.Errorf("TraceLimit=1 changed metrics:\n%s\nvs\n%s", full, truncated)
	}
}

// TestMetricsDisabledByDefault: without CollectMetrics neither the
// per-seed result nor the campaign carries metrics.
func TestMetricsDisabledByDefault(t *testing.T) {
	stats := RunCampaign(CampaignOptions{
		Options: Options{Profile: profile(t, "hotspotlike"), MaxIter: 2, Buggy: true},
		Seeds:   3,
	})
	if stats.Metrics != nil {
		t.Errorf("Metrics = %+v, want nil when CollectMetrics is off", stats.Metrics)
	}
	src := `class T { void main() { print(1); } }`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := Validate(prog, 1, Options{Profile: profile(t, "hotspotlike")})
	if res.Metrics != nil {
		t.Errorf("Result.Metrics = %+v, want nil", res.Metrics)
	}
}

// TestSeedMetricsShape: Validate with metrics on accounts every run it
// performs, and the interp/compiled step split is internally exact.
func TestSeedMetricsShape(t *testing.T) {
	src := `class T {
        long work(int[] a, int n) {
            long acc = 0;
            for (int r = 0; r < n; r++) {
                for (int i = 0; i < a.length; i++) { acc += a[i] + r; }
            }
            return acc;
        }
        void main() {
            int[] a = new int[32];
            for (int i = 0; i < a.length; i++) { a[i] = i; }
            long t = 0;
            for (int k = 0; k < 200; k++) { t += work(a, 30); }
            print(t);
        }
    }`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := Validate(prog, 7, Options{
		Profile: profile(t, "hotspotlike"), MaxIter: 3, CollectMetrics: true,
	})
	m := res.Metrics
	if m == nil {
		t.Fatal("nil Metrics with CollectMetrics on")
	}
	if m.Runs != int64(res.Runs) {
		t.Errorf("metered %d runs, Result counted %d", m.Runs, res.Runs)
	}
	var tiered int64
	for _, n := range m.RunsByMaxTier {
		tiered += n
	}
	if tiered != m.Runs {
		t.Errorf("RunsByMaxTier %v sums to %d, want %d", m.RunsByMaxTier, tiered, m.Runs)
	}
	if m.DistinctTraces == 0 {
		t.Error("traced runs produced no distinct trace keys")
	}
	if m.Exec.CompiledSteps == 0 {
		t.Error("hot seed never executed compiled code")
	}
}

// TestPerfSignaturesDistinct is the regression test for the
// performance-dedup bug: signatures used to be "perf|<profile>", so
// every performance discrepancy in a profile collapsed into one
// distinct slot. Two different perf bugs — different offending method
// or different slowdown magnitude — must now occupy two slots, while
// a true duplicate still dedups.
func TestPerfSignaturesDistinct(t *testing.T) {
	sigA := signatureOf(Performance, "openj9like", "methodA", "ratio2^3")
	sigB := signatureOf(Performance, "openj9like", "methodB", "ratio2^3")
	sigC := signatureOf(Performance, "openj9like", "methodA", "ratio2^7")
	if sigA == sigB {
		t.Error("different offending methods produced equal signatures")
	}
	if sigA == sigC {
		t.Error("different slowdown buckets produced equal signatures")
	}

	mk := func(sig string) Finding {
		return Finding{Kind: Performance, Profile: "openj9like", Signature: sig}
	}
	m := newMerger(CampaignOptions{
		Options: Options{Profile: profile(t, "openj9like")},
		Seeds:   2,
	}, time.Now())
	m.add(seedOutcome{idx: 0, res: &Result{
		Runs:          4,
		Findings:      []Finding{mk(sigA), mk(sigB)},
		MutantSources: []string{"", ""},
	}})
	m.add(seedOutcome{idx: 1, res: &Result{
		Runs:          2,
		Findings:      []Finding{mk(sigA)},
		MutantSources: []string{""},
	}})
	if len(m.stats.Distinct) != 2 {
		t.Fatalf("got %d distinct findings, want 2 (two distinct perf bugs)", len(m.stats.Distinct))
	}
	if m.stats.Duplicates != 1 {
		t.Errorf("got %d duplicates, want 1 (sigA manifested twice)", m.stats.Duplicates)
	}
}

// TestPerfFindingAttribution exercises the attribution path: when the
// timed-out run kept no trace, perfFinding reruns with tracing and
// names the hottest method in both Component and signature.
func TestPerfFindingAttribution(t *testing.T) {
	src := `class T {
        long spin(int n) {
            long acc = 0;
            for (int i = 0; i < n; i++) { acc += i * 7; }
            return acc;
        }
        void main() {
            long t = 0;
            for (int k = 0; k < 5000; k++) { t += spin(1000); }
            print(t);
        }
    }`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Profile: profile(t, "hotspotlike")}.withDefaults()
	mbp := Compile(prog)
	out := &vm.Output{Term: vm.TermTimeout, Steps: o.StepLimit}
	intOut := &vm.Output{Term: vm.TermNormal, Steps: o.StepLimit / 100}
	res := &Result{}
	f := perfFinding(o, nil, mbp, 42, 0, out, intOut, nil, res)
	if res.Runs != 1 {
		t.Errorf("attribution rerun not counted: Runs=%d", res.Runs)
	}
	if f.Component == "" || f.Component == "unknown" {
		t.Errorf("offending method not attributed: Component=%q", f.Component)
	}
	if f.Kind != Performance || f.SeedID != 42 {
		t.Errorf("finding misbuilt: %+v", f)
	}
	want := signatureOf(Performance, "hotspotlike", f.Component, "ratio2^6")
	if f.Signature != want {
		t.Errorf("Signature = %q, want %q", f.Signature, want)
	}
}

func TestStepRatioBucket(t *testing.T) {
	cases := []struct {
		compiled, interp int64
		want             int
	}{
		{100, 100, 0},
		{100, 51, 0},
		{200, 100, 1},
		{1000, 100, 3},
		{1 << 20, 1, 20},
		{100, 0, 6}, // zero interp steps clamps to 1
		{50, 100, 0},
	}
	for _, c := range cases {
		if got := stepRatioBucket(c.compiled, c.interp); got != c.want {
			t.Errorf("stepRatioBucket(%d, %d) = %d, want %d", c.compiled, c.interp, got, c.want)
		}
	}
}
