// Campaign-side fault localization. When a campaign runs with Blame
// enabled, every first-seen crash or mis-compilation finding is handed
// to internal/blame right after corpus recording: the guilty-pass
// bisection and the minimal compilation-space point are computed on
// the reducer goroutine (deterministic discovery order), attached to
// the finding's CampaignStats entry, and persisted as blame.json next
// to the corpus entry. Blame results are never journaled: they are a
// pure function of (reproducer, signature, config), so resumed
// campaigns recompute them identically.

package harness

import (
	"fmt"

	"artemis/internal/blame"
	"artemis/internal/fuzz"
	"artemis/internal/lang/ast"
	"artemis/internal/lang/parser"
	"artemis/internal/vm"
)

// blamer adapts campaign findings to internal/blame: it rebuilds each
// finding's symptom predicate from its dedup signature and picks the
// best available reproducer source.
type blamer struct {
	cfg blame.Config
}

func newBlamer(opts CampaignOptions) *blamer {
	return &blamer{cfg: blame.Config{
		Profile:   opts.Options.Profile,
		Bugs:      opts.Options.bugSet(),
		StepLimit: opts.Options.StepLimit,
		Budget:    opts.BlameBudget,
	}}
}

// localize runs fault localization for one first-seen finding. src is
// the best reproducer available (reduced > mutant; "" when the seed's
// own default run crashed, in which case the seed is regenerated).
// Returns nil for finding kinds with no cheap symptom predicate
// (performance findings need timeout-priced probes).
func (bl *blamer) localize(f Finding, src string) *blame.Result {
	var prog *ast.Program
	if src != "" {
		if p, err := parser.Parse(src); err == nil {
			prog = p
		}
	}
	if prog == nil {
		prog = fuzz.Generate(fuzz.Options{Seed: f.SeedID})
	}
	symptom := bl.symptomFor(f, prog)
	if symptom == nil {
		return nil
	}
	return blame.Localize(prog, symptom, bl.cfg)
}

// symptomFor rebuilds the finding's symptom predicate, mirroring the
// reducer's keep predicates (keep.go) so "still triggers" means the
// same thing to reduction and to localization: crashes must reproduce
// the exact dedup signature; mis-compilations must diverge from an
// interpreted reference with the same signature.
func (bl *blamer) symptomFor(f Finding, prog *ast.Program) blame.Symptom {
	prof := bl.cfg.Profile
	switch f.Kind {
	case CrashFinding:
		sig := f.Signature
		return func(out *vm.Output) bool {
			return out.Term == vm.TermCrash &&
				signatureOf(CrashFinding, prof.Name, componentOf(out.Detail), out.Detail) == sig
		}
	case Miscompilation:
		intCfg := prof.InterpreterConfig()
		intCfg.StepLimit = bl.cfg.StepLimit
		ref := vm.Run(intCfg, Compile(prog)).Output
		if ref.Term == vm.TermTimeout {
			return nil // no usable reference
		}
		sig := f.Signature
		return func(out *vm.Output) bool {
			if out.Term == vm.TermTimeout || out.Equivalent(ref) {
				return false
			}
			detail := fmt.Sprintf("%s-vs-%s", ref.Term, out.Term)
			return signatureOf(Miscompilation, prof.Name, "", detail) == sig
		}
	default:
		return nil
	}
}
