package harness

import (
	"math/rand"
	"testing"
)

// TestCampaignDeterminism: two identical campaigns must produce
// byte-identical finding lists — the whole stack (fuzzer, mutator, VM,
// JIT) is seeded and deterministic.
func TestCampaignDeterminism(t *testing.T) {
	prof := profile(t, "openj9like")
	run := func() []DedupFinding {
		stats := RunCampaign(CampaignOptions{
			Options: Options{Profile: prof, MaxIter: 4, Buggy: true,
				Rand: rand.New(rand.NewSource(99))},
			Seeds: 15,
		})
		return stats.Distinct
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different finding counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Signature != b[i].Signature || a[i].Detail != b[i].Detail || a[i].Count != b[i].Count {
			t.Errorf("finding %d differs:\n  %+v\n  %+v", i, a[i].Finding, b[i].Finding)
		}
	}
}
