package sem

import (
	"artemis/internal/lang/ast"
)

// AnalyzeDelta re-analyzes only the methods named in changed, reusing
// base's per-method results for everything else. It is the incremental
// fast path for JoNM mutants: prog must be a clone of base.Prog whose
// unchanged methods still carry the annotations written when base was
// computed (ast.CloneProgram preserves them), and whose divergence from
// the seed is limited to what JoNM produces — edited method bodies and
// fields appended after the seed's (never reordered, removed, or
// re-typed). Those structural invariants are asserted, not assumed: a
// violation returns an error instead of silently mis-analyzing.
//
// The result is identical to Analyze(prog): full analysis visits
// methods independently given the global field/method tables, so
// re-checking only the changed bodies and adopting base's MethodInfo
// for untouched ones reproduces the same Info and the same in-place
// AST annotations.
func AnalyzeDelta(prog *ast.Program, base *Info, changed map[string]bool) (*Info, error) {
	cls, bcls := prog.Class, base.Prog.Class

	c := &checker{
		prog:    prog,
		fields:  map[string]int{},
		methods: map[string]int{},
		info:    &Info{Prog: prog, Methods: map[string]*MethodInfo{}},
	}

	// Structural stability assertions (the "indices are stable" contract
	// the bytecode cache depends on).
	if len(cls.Methods) != len(bcls.Methods) {
		return nil, c.errorf(cls.Pos, "delta analysis: method count changed (%d -> %d)", len(bcls.Methods), len(cls.Methods))
	}
	for i, m := range cls.Methods {
		if bcls.Methods[i].Name != m.Name {
			return nil, c.errorf(m.Pos, "delta analysis: method %d renamed (%s -> %s)", i, bcls.Methods[i].Name, m.Name)
		}
	}
	if len(cls.Fields) < len(bcls.Fields) {
		return nil, c.errorf(cls.Pos, "delta analysis: fields removed (%d -> %d)", len(bcls.Fields), len(cls.Fields))
	}
	for i, bf := range bcls.Fields {
		f := cls.Fields[i]
		if f.Name != bf.Name || !f.Type.Equal(bf.Type) {
			return nil, c.errorf(f.Pos, "delta analysis: field %d changed (%s %s -> %s %s)", i, bf.Type, bf.Name, f.Type, f.Name)
		}
	}

	for i, f := range cls.Fields {
		if _, dup := c.fields[f.Name]; dup {
			return nil, c.errorf(f.Pos, "duplicate field %s", f.Name)
		}
		c.fields[f.Name] = i
	}
	for i, m := range cls.Methods {
		if _, dup := c.methods[m.Name]; dup {
			return nil, c.errorf(m.Pos, "duplicate method %s", m.Name)
		}
		c.methods[m.Name] = i
	}

	// Only appended fields carry initializers the base analysis has not
	// seen; check (and annotate) exactly those. Seed fields keep their
	// cloned annotations.
	for _, f := range cls.Fields[len(bcls.Fields):] {
		if f.Init == nil {
			continue
		}
		bad := false
		ast.WalkExprs(f.Init, func(e ast.Expr) {
			if _, isCall := e.(*ast.CallExpr); isCall {
				bad = true
			}
		})
		if bad {
			return nil, c.errorf(f.Pos, "field initializer for %s may not call methods", f.Name)
		}
		c.method = nil
		c.locals, c.marks = c.locals[:0], c.marks[:0]
		t, err := c.expr(f.Init)
		if err != nil {
			return nil, err
		}
		if !assignable(f.Type, t) {
			return nil, c.errorf(f.Pos, "cannot initialize %s field %s with %s", f.Type, f.Name, t)
		}
	}

	for i, m := range cls.Methods {
		if changed[m.Name] {
			if err := c.checkMethod(i, m); err != nil {
				return nil, err
			}
			continue
		}
		bi := base.Methods[m.Name]
		if bi == nil || bi.Index != i {
			return nil, c.errorf(m.Pos, "delta analysis: base info missing or misindexed for %s", m.Name)
		}
		c.info.Methods[m.Name] = bi
	}
	return c.info, nil
}
