package sem

import (
	"strings"
	"testing"

	"artemis/internal/lang/ast"
	"artemis/internal/lang/parser"
)

func analyze(t *testing.T, src string) (*Info, error) {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		// Some invalid-program table entries are rejected by the
		// parser already; report that as the analysis error.
		return nil, err
	}
	return Analyze(p)
}

func mustAnalyze(t *testing.T, src string) *Info {
	t.Helper()
	info, err := analyze(t, src)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return info
}

func TestResolveLocalsAndFields(t *testing.T) {
	info := mustAnalyze(t, `class T {
        int f = 3;
        int g(int a) {
            int b = a + f;
            return b;
        }
        void main() { print(g(1)); }
    }`)
	g := info.Prog.Class.Method("g")
	mi := info.Methods["g"]
	if len(mi.Locals) != 2 {
		t.Fatalf("g locals = %d, want 2", len(mi.Locals))
	}
	decl := g.Body.Stmts[0].(*ast.DeclStmt)
	if decl.Slot != 1 {
		t.Errorf("b slot = %d, want 1", decl.Slot)
	}
	bin := decl.Init.(*ast.BinaryExpr)
	a := bin.X.(*ast.Ident)
	if a.Ref != ast.RefLocal || a.Index != 0 {
		t.Errorf("a resolved to %v/%d", a.Ref, a.Index)
	}
	f := bin.Y.(*ast.Ident)
	if f.Ref != ast.RefField || f.Index != 0 {
		t.Errorf("f resolved to %v/%d", f.Ref, f.Index)
	}
}

func TestLocalShadowsField(t *testing.T) {
	info := mustAnalyze(t, `class T {
        int x = 1;
        void main() { int x = 2; print(x); }
    }`)
	m := info.Prog.Class.Method("main")
	pr := m.Body.Stmts[1].(*ast.PrintStmt)
	id := pr.X.(*ast.Ident)
	if id.Ref != ast.RefLocal {
		t.Error("local should shadow field")
	}
}

func TestTypePromotion(t *testing.T) {
	info := mustAnalyze(t, `class T {
        void main() {
            int i = 1;
            long l = 2L;
            print(i + l);
            print(i + i);
            print(l << i);
            print(i << l);
        }
    }`)
	m := info.Prog.Class.Method("main")
	types := []ast.Type{}
	for _, s := range m.Body.Stmts[2:] {
		types = append(types, s.(*ast.PrintStmt).X.Type())
	}
	want := []ast.Type{ast.TypeLong, ast.TypeInt, ast.TypeLong, ast.TypeInt}
	for i, w := range want {
		if types[i] != w {
			t.Errorf("print %d type %v, want %v", i, types[i], w)
		}
	}
}

func TestWideningAssignment(t *testing.T) {
	mustAnalyze(t, `class T { void main() { long l = 5; l = 7; int i = 1; l = i; } }`)
}

func TestCompoundNarrowing(t *testing.T) {
	// Java: i += longVal is legal (implicit narrowing).
	mustAnalyze(t, `class T { void main() { int i = 1; long l = 100L; i += l; i *= l; print(i); } }`)
}

func TestBooleanBitOps(t *testing.T) {
	mustAnalyze(t, `class T { void main() { boolean a = true; boolean b = a & false | a ^ true; b &= a; print(b); } }`)
}

func TestSemErrors(t *testing.T) {
	bad := []struct{ name, src string }{
		{"no main", `class T { void f() { } }`},
		{"main with params", `class T { void main(int x) { } }`},
		{"main non-void", `class T { int main() { return 1; } }`},
		{"undefined var", `class T { void main() { print(x); } }`},
		{"undefined method", `class T { void main() { f(); } }`},
		{"dup field", `class T { int a; int a; void main() { } }`},
		{"dup method", `class T { void f() { } void f() { } void main() { } }`},
		{"dup local", `class T { void main() { int a = 1; int a = 2; } }`},
		{"dup local nested", `class T { void main() { int a = 1; { int a = 2; } } }`},
		{"narrowing assign", `class T { void main() { long l = 5L; int i = l; } }`},
		{"bool arith", `class T { void main() { print(true + 1); } }`},
		{"int cond", `class T { void main() { if (1) { } } }`},
		{"break outside", `class T { void main() { break; } }`},
		{"continue outside", `class T { void main() { continue; } }`},
		{"continue in switch", `class T { void main() { switch (1) { case 1: continue; } } }`},
		{"missing return", `class T { int f() { int x = 1; } void main() { } }`},
		{"missing return if", `class T { int f(boolean b) { if (b) { return 1; } } void main() { } }`},
		{"void return value", `class T { void main() { return 1; } }`},
		{"value return void", `class T { int f() { return; } void main() { } }`},
		{"wrong return type", `class T { int f() { return true; } void main() { } }`},
		{"return narrowing", `class T { int f() { return 5L; } void main() { } }`},
		{"arg count", `class T { int f(int a) { return a; } void main() { print(f(1, 2)); } }`},
		{"arg type", `class T { int f(int a) { return a; } void main() { print(f(true)); } }`},
		{"arg narrowing", `class T { int f(int a) { return a; } void main() { print(f(5L)); } }`},
		{"index non-array", `class T { void main() { int i = 0; print(i[0]); } }`},
		{"long index", `class T { void main() { int[] a = new int[3]; print(a[0L]); } }`},
		{"length non-array", `class T { void main() { int i = 0; print(i.length); } }`},
		{"uninit array local", `class T { void main() { int[] a; } }`},
		{"switch long tag", `class T { void main() { switch (1L) { case 1: break; } } }`},
		{"dup case", `class T { void main() { switch (1) { case 2: break; case 2: break; } } }`},
		{"dup default", `class T { void main() { switch (1) { default: break; default: break; } } }`},
		{"print array", `class T { void main() { int[] a = new int[1]; print(a); } }`},
		{"print void", `class T { void f() { } void main() { print(f()); } }`},
		{"field init call", `class T { int g() { return 1; } int x = g(); void main() { } }`},
		{"field init narrowing", `class T { int x = 5L; void main() { } }`},
		{"ternary mismatch", `class T { void main() { boolean b = true; print(b ? 1 : false); } }`},
		{"cast boolean", `class T { void main() { boolean b = true; print((int)b); } }`},
		{"compare array", `class T { void main() { int[] a = new int[1]; int[] b = new int[1]; print(a == b); } }`},
		{"assign to call", `class T { int f() { return 1; } void main() { f() = 3; } }`},
	}
	for _, tt := range bad {
		if _, err := analyze(t, tt.src); err == nil {
			t.Errorf("%s: expected error", tt.name)
		}
	}
}

func TestReachability(t *testing.T) {
	good := []string{
		`class T { int f(boolean b) { if (b) { return 1; } else { return 2; } } void main() { } }`,
		`class T { int f() { while (true) { } } void main() { } }`,
		`class T { int f() { for (;;) { } } void main() { } }`,
		`class T { int f(boolean b) { for (;;) { if (b) { return 1; } } } void main() { } }`,
	}
	for _, src := range good {
		if _, err := analyze(t, src); err != nil {
			t.Errorf("%s: unexpected error %v", src, err)
		}
	}
	bad := []string{
		`class T { int f() { while (true) { break; } } void main() { } }`,
		`class T { int f(boolean b) { for (;;) { if (b) { break; } } } void main() { } }`,
		`class T { int f(boolean b) { while (b) { return 1; } } void main() { } }`,
	}
	for _, src := range bad {
		if _, err := analyze(t, src); err == nil {
			t.Errorf("%s: expected missing-return error", src)
		}
	}
}

func TestSlotAllocationNoReuse(t *testing.T) {
	info := mustAnalyze(t, `class T {
        void main() {
            { int a = 1; print(a); }
            { int b = 2; print(b); }
            long c = 3L;
            print(c);
        }
    }`)
	mi := info.Methods["main"]
	if len(mi.Locals) != 3 {
		t.Fatalf("locals = %d, want 3 (no slot reuse)", len(mi.Locals))
	}
	if mi.Locals[2] != ast.TypeLong {
		t.Errorf("slot 2 type %v, want long", mi.Locals[2])
	}
}

func TestErrorMessagesMentionNames(t *testing.T) {
	_, err := analyze(t, `class T { void main() { print(frobnicate); } }`)
	if err == nil || !strings.Contains(err.Error(), "frobnicate") {
		t.Errorf("error %v should mention the undefined name", err)
	}
}

func TestCaseLabelRange(t *testing.T) {
	// Case labels beyond int range are rejected by the lexer/parser
	// already; in-range big values are fine.
	mustAnalyze(t, `class T { void main() { switch (1) { case 2147483647: break; } } }`)
}
