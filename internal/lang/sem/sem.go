// Package sem performs symbol resolution and type checking for MJ
// programs. Analysis annotates the AST in place (expression types,
// identifier resolutions, local slots) and returns per-method slot
// tables that the bytecode compiler and the VM's GC ref maps consume.
//
// Deliberate deviations from Java, chosen for determinism and
// documented in DESIGN.md:
//
//   - Locals without initializers are zero-initialized (Java instead
//     requires definite assignment). This is consistent across the
//     interpreter and both JIT tiers, so it cannot cause false
//     differential alarms.
//   - There is no null: array locals must be initialized, and array
//     fields default to empty arrays.
package sem

import (
	"fmt"

	"artemis/internal/lang/ast"
)

// Error is a semantic error.
type Error struct {
	Pos ast.Pos
	Msg string
}

func (e *Error) Error() string { return e.Msg }

// MethodInfo carries the analysis results for one method.
type MethodInfo struct {
	Index  int        // index into Class.Methods
	Locals []ast.Type // type of each local slot; params occupy slots 0..len(Params)-1
}

// Info is the result of analyzing a program.
type Info struct {
	Prog    *ast.Program
	Methods map[string]*MethodInfo
}

// MethodByIndex returns the info for the i-th method.
func (in *Info) MethodByIndex(i int) *MethodInfo {
	return in.Methods[in.Prog.Class.Methods[i].Name]
}

// Analyze resolves and type-checks prog, annotating the AST in place.
func Analyze(prog *ast.Program) (*Info, error) {
	c := &checker{
		prog:    prog,
		fields:  map[string]int{},
		methods: map[string]int{},
		info:    &Info{Prog: prog, Methods: map[string]*MethodInfo{}},
	}
	return c.run()
}

// MustAnalyze is Analyze for programs known to be valid (synthesized
// internally); it panics on error.
func MustAnalyze(prog *ast.Program) *Info {
	info, err := Analyze(prog)
	if err != nil {
		panic(fmt.Sprintf("sem: internal program failed analysis: %v", err))
	}
	return info
}

type checker struct {
	prog    *ast.Program
	fields  map[string]int
	methods map[string]int
	info    *Info

	// Per-method state.
	method *ast.Method
	minfo  *MethodInfo
	// Flat scope chain: locals in declaration order, marks holding
	// scope boundaries. Redeclaration anywhere in the chain is an
	// error (no shadowing), so linear scans resolve exactly like the
	// scope-stack of maps did, without a map allocation per block.
	locals   []localEnt
	marks    []int
	loops    int // loop nesting depth (for break/continue)
	switches int // switch nesting depth (for break)
}

func (c *checker) errorf(pos ast.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (c *checker) run() (*Info, error) {
	cls := c.prog.Class
	for i, f := range cls.Fields {
		if _, dup := c.fields[f.Name]; dup {
			return nil, c.errorf(f.Pos, "duplicate field %s", f.Name)
		}
		c.fields[f.Name] = i
	}
	for i, m := range cls.Methods {
		if _, dup := c.methods[m.Name]; dup {
			return nil, c.errorf(m.Pos, "duplicate method %s", m.Name)
		}
		c.methods[m.Name] = i
	}
	main, ok := c.methods["main"]
	if !ok {
		return nil, c.errorf(cls.Pos, "program has no main method")
	}
	if mm := cls.Methods[main]; len(mm.Params) > 0 || mm.Ret.Kind != ast.KindVoid {
		return nil, c.errorf(mm.Pos, "main must be 'void main()'")
	}

	// Field initializers: constant-ish expressions only (no calls), so
	// the synthetic <clinit> cannot recurse into program methods.
	for _, f := range cls.Fields {
		if f.Init == nil {
			continue
		}
		bad := false
		ast.WalkExprs(f.Init, func(e ast.Expr) {
			if _, isCall := e.(*ast.CallExpr); isCall {
				bad = true
			}
		})
		if bad {
			return nil, c.errorf(f.Pos, "field initializer for %s may not call methods", f.Name)
		}
		c.method = nil
		c.locals, c.marks = c.locals[:0], c.marks[:0]
		t, err := c.expr(f.Init)
		if err != nil {
			return nil, err
		}
		if !assignable(f.Type, t) {
			return nil, c.errorf(f.Pos, "cannot initialize %s field %s with %s", f.Type, f.Name, t)
		}
	}

	for i, m := range cls.Methods {
		if err := c.checkMethod(i, m); err != nil {
			return nil, err
		}
	}
	return c.info, nil
}

func (c *checker) checkMethod(index int, m *ast.Method) error {
	c.method = m
	c.minfo = &MethodInfo{Index: index}
	c.info.Methods[m.Name] = c.minfo
	c.locals, c.marks = c.locals[:0], c.marks[:0]
	c.loops, c.switches = 0, 0

	for _, p := range m.Params {
		if _, err := c.declare(p.Pos, p.Name, p.Type); err != nil {
			return err
		}
	}
	if err := c.block(m.Body, false); err != nil {
		return err
	}
	if m.Ret.Kind != ast.KindVoid && stmtCompletesNormally(m.Body) {
		return c.errorf(m.Pos, "method %s: missing return statement", m.Name)
	}
	return nil
}

// localEnt is one visible local in the flat scope chain.
type localEnt struct {
	name string
	slot int
}

// declare adds a local to the current scope and returns its slot.
func (c *checker) declare(pos ast.Pos, name string, t ast.Type) (int, error) {
	for i := range c.locals {
		if c.locals[i].name == name {
			return 0, c.errorf(pos, "variable %s redeclared", name)
		}
	}
	slot := len(c.minfo.Locals)
	c.minfo.Locals = append(c.minfo.Locals, t)
	c.locals = append(c.locals, localEnt{name, slot})
	return slot, nil
}

// lookup resolves a name to (local slot) or (field index).
func (c *checker) lookup(id *ast.Ident) (ast.Type, error) {
	for i := len(c.locals) - 1; i >= 0; i-- {
		if c.locals[i].name == id.Name {
			id.Ref, id.Index = ast.RefLocal, c.locals[i].slot
			return c.minfo.Locals[c.locals[i].slot], nil
		}
	}
	if fi, ok := c.fields[id.Name]; ok {
		id.Ref, id.Index = ast.RefField, fi
		return c.prog.Class.Fields[fi].Type, nil
	}
	return ast.TypeInvalid, c.errorf(id.Pos, "undefined name %s", id.Name)
}

func (c *checker) pushScope() { c.marks = append(c.marks, len(c.locals)) }
func (c *checker) popScope() {
	n := c.marks[len(c.marks)-1]
	c.marks = c.marks[:len(c.marks)-1]
	c.locals = c.locals[:n]
}

// block checks a block; ownScope is false for method bodies (params
// share the scope).
func (c *checker) block(b *ast.Block, ownScope bool) error {
	if ownScope {
		c.pushScope()
		defer c.popScope()
	}
	for _, s := range b.Stmts {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) stmt(s ast.Stmt) error {
	switch s := s.(type) {
	case *ast.Block:
		return c.block(s, true)
	case *ast.DeclStmt:
		if s.Type.Kind == ast.KindVoid {
			return c.errorf(s.Pos, "variable %s cannot have type void", s.Name)
		}
		if s.Init != nil {
			t, err := c.expr(s.Init)
			if err != nil {
				return err
			}
			if !assignable(s.Type, t) {
				return c.errorf(s.Pos, "cannot assign %s to %s %s", t, s.Type, s.Name)
			}
		} else if s.Type.IsArray() {
			return c.errorf(s.Pos, "array variable %s must be initialized", s.Name)
		}
		slot, err := c.declare(s.Pos, s.Name, s.Type)
		if err != nil {
			return err
		}
		s.Slot = slot
		return nil
	case *ast.AssignStmt:
		return c.assign(s)
	case *ast.IfStmt:
		if err := c.condExpr(s.Cond); err != nil {
			return err
		}
		if err := c.block(s.Then, true); err != nil {
			return err
		}
		if s.Else != nil {
			return c.stmt(s.Else)
		}
		return nil
	case *ast.ForStmt:
		c.pushScope()
		defer c.popScope()
		if s.Init != nil {
			if err := c.stmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := c.condExpr(s.Cond); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.stmt(s.Post); err != nil {
				return err
			}
		}
		c.loops++
		err := c.block(s.Body, true)
		c.loops--
		return err
	case *ast.WhileStmt:
		if err := c.condExpr(s.Cond); err != nil {
			return err
		}
		c.loops++
		err := c.block(s.Body, true)
		c.loops--
		return err
	case *ast.SwitchStmt:
		t, err := c.expr(s.Tag)
		if err != nil {
			return err
		}
		if t.Kind != ast.KindInt {
			return c.errorf(s.Pos, "switch tag must be int, have %s", t)
		}
		seen := map[int64]bool{}
		c.switches++
		defer func() { c.switches-- }()
		for _, arm := range s.Cases {
			for _, v := range arm.Values {
				if v != int64(int32(v)) {
					return c.errorf(arm.Pos, "case label %d out of int range", v)
				}
				if seen[v] {
					return c.errorf(arm.Pos, "duplicate case label %d", v)
				}
				seen[v] = true
			}
			c.pushScope()
			for _, bs := range arm.Body {
				if err := c.stmt(bs); err != nil {
					c.popScope()
					return err
				}
			}
			c.popScope()
		}
		return nil
	case *ast.BreakStmt:
		if c.loops == 0 && c.switches == 0 {
			return c.errorf(s.Pos, "break outside loop or switch")
		}
		return nil
	case *ast.ContinueStmt:
		if c.loops == 0 {
			return c.errorf(s.Pos, "continue outside loop")
		}
		return nil
	case *ast.ReturnStmt:
		ret := c.method.Ret
		if s.Value == nil {
			if ret.Kind != ast.KindVoid {
				return c.errorf(s.Pos, "return without value in %s method", ret)
			}
			return nil
		}
		if ret.Kind == ast.KindVoid {
			return c.errorf(s.Pos, "void method returns a value")
		}
		t, err := c.expr(s.Value)
		if err != nil {
			return err
		}
		if !assignable(ret, t) {
			return c.errorf(s.Pos, "cannot return %s from %s method", t, ret)
		}
		return nil
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return c.errorf(s.Pos, "expression statement must be a call")
		}
		_, err := c.expr(call)
		return err
	case *ast.PrintStmt:
		t, err := c.expr(s.X)
		if err != nil {
			return err
		}
		if t.IsArray() || t.Kind == ast.KindVoid {
			return c.errorf(s.Pos, "cannot print value of type %s", t)
		}
		return nil
	}
	return c.errorf(s.Position(), "sem: unknown statement %T", s)
}

func (c *checker) assign(s *ast.AssignStmt) error {
	tt, err := c.lvalue(s.Target)
	if err != nil {
		return err
	}
	vt, err := c.expr(s.Value)
	if err != nil {
		return err
	}
	if s.Op == ast.AsnSet {
		if !assignable(tt, vt) {
			return c.errorf(s.Pos, "cannot assign %s to %s", vt, tt)
		}
		return nil
	}
	// Compound assignment: Java implicitly narrows the result back to
	// the target type, so "i += longVal" is legal for int i.
	op := s.Op.BinOp()
	switch {
	case op.IsShift():
		if !tt.IsNumeric() || !vt.IsNumeric() {
			return c.errorf(s.Pos, "operator %s needs numeric operands", s.Op)
		}
	case op == ast.OpAnd || op == ast.OpOr || op == ast.OpXor:
		if tt.Kind == ast.KindBoolean && vt.Kind == ast.KindBoolean {
			return nil
		}
		if !tt.IsNumeric() || !vt.IsNumeric() {
			return c.errorf(s.Pos, "operator %s needs numeric or boolean operands", s.Op)
		}
	default:
		if !tt.IsNumeric() || !vt.IsNumeric() {
			return c.errorf(s.Pos, "operator %s needs numeric operands", s.Op)
		}
	}
	return nil
}

// lvalue checks an assignment target and returns its type.
func (c *checker) lvalue(e ast.Expr) (ast.Type, error) {
	switch e := e.(type) {
	case *ast.Ident:
		t, err := c.lookup(e)
		if err != nil {
			return ast.TypeInvalid, err
		}
		e.SetType(t)
		return t, nil
	case *ast.IndexExpr:
		return c.expr(e)
	}
	return ast.TypeInvalid, c.errorf(e.Position(), "invalid assignment target")
}

// condExpr checks that e is boolean.
func (c *checker) condExpr(e ast.Expr) error {
	t, err := c.expr(e)
	if err != nil {
		return err
	}
	if t.Kind != ast.KindBoolean {
		return c.errorf(e.Position(), "condition must be boolean, have %s", t)
	}
	return nil
}

// assignable reports whether a value of type 'from' may be assigned to
// a target of type 'to' (identity or int->long widening).
func assignable(to, from ast.Type) bool {
	if to.Equal(from) {
		return true
	}
	return to.Kind == ast.KindLong && from.Kind == ast.KindInt
}

// promote returns the Java binary numeric promotion of two numeric
// types.
func promote(a, b ast.Type) ast.Type {
	if a.Kind == ast.KindLong || b.Kind == ast.KindLong {
		return ast.TypeLong
	}
	return ast.TypeInt
}

func (c *checker) expr(e ast.Expr) (ast.Type, error) {
	t, err := c.exprNoSet(e)
	if err != nil {
		return ast.TypeInvalid, err
	}
	e.SetType(t)
	return t, nil
}

func (c *checker) exprNoSet(e ast.Expr) (ast.Type, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		if e.IsLong {
			return ast.TypeLong, nil
		}
		return ast.TypeInt, nil
	case *ast.BoolLit:
		return ast.TypeBoolean, nil
	case *ast.Ident:
		return c.lookup(e)
	case *ast.IndexExpr:
		at, err := c.expr(e.Arr)
		if err != nil {
			return ast.TypeInvalid, err
		}
		if !at.IsArray() {
			return ast.TypeInvalid, c.errorf(e.Pos, "indexing non-array type %s", at)
		}
		it, err := c.expr(e.Index)
		if err != nil {
			return ast.TypeInvalid, err
		}
		if it.Kind != ast.KindInt {
			return ast.TypeInvalid, c.errorf(e.Pos, "array index must be int, have %s", it)
		}
		return at.ElemType(), nil
	case *ast.LenExpr:
		at, err := c.expr(e.Arr)
		if err != nil {
			return ast.TypeInvalid, err
		}
		if !at.IsArray() {
			return ast.TypeInvalid, c.errorf(e.Pos, ".length on non-array type %s", at)
		}
		return ast.TypeInt, nil
	case *ast.CallExpr:
		mi, ok := c.methods[e.Name]
		if !ok {
			return ast.TypeInvalid, c.errorf(e.Pos, "undefined method %s", e.Name)
		}
		if c.method == nil {
			return ast.TypeInvalid, c.errorf(e.Pos, "method call not allowed here")
		}
		m := c.prog.Class.Methods[mi]
		if len(e.Args) != len(m.Params) {
			return ast.TypeInvalid, c.errorf(e.Pos, "method %s takes %d arguments, got %d", e.Name, len(m.Params), len(e.Args))
		}
		for i, a := range e.Args {
			at, err := c.expr(a)
			if err != nil {
				return ast.TypeInvalid, err
			}
			if !assignable(m.Params[i].Type, at) {
				return ast.TypeInvalid, c.errorf(e.Pos, "argument %d of %s: cannot pass %s as %s", i+1, e.Name, at, m.Params[i].Type)
			}
		}
		e.MethodIndex = mi
		return m.Ret, nil
	case *ast.UnaryExpr:
		xt, err := c.expr(e.X)
		if err != nil {
			return ast.TypeInvalid, err
		}
		switch e.Op {
		case ast.OpNeg, ast.OpBitNot:
			if !xt.IsNumeric() {
				return ast.TypeInvalid, c.errorf(e.Pos, "operator %s needs a numeric operand, have %s", e.Op, xt)
			}
			return xt, nil
		case ast.OpNot:
			if xt.Kind != ast.KindBoolean {
				return ast.TypeInvalid, c.errorf(e.Pos, "operator ! needs a boolean operand, have %s", xt)
			}
			return ast.TypeBoolean, nil
		}
		return ast.TypeInvalid, c.errorf(e.Pos, "sem: unknown unary op")
	case *ast.BinaryExpr:
		xt, err := c.expr(e.X)
		if err != nil {
			return ast.TypeInvalid, err
		}
		yt, err := c.expr(e.Y)
		if err != nil {
			return ast.TypeInvalid, err
		}
		op := e.Op
		switch {
		case op.IsLogical():
			if xt.Kind != ast.KindBoolean || yt.Kind != ast.KindBoolean {
				return ast.TypeInvalid, c.errorf(e.Pos, "operator %s needs boolean operands", op)
			}
			return ast.TypeBoolean, nil
		case op == ast.OpEq || op == ast.OpNe:
			if xt.IsNumeric() && yt.IsNumeric() {
				return ast.TypeBoolean, nil
			}
			if xt.Kind == ast.KindBoolean && yt.Kind == ast.KindBoolean {
				return ast.TypeBoolean, nil
			}
			return ast.TypeInvalid, c.errorf(e.Pos, "cannot compare %s and %s", xt, yt)
		case op.IsComparison():
			if !xt.IsNumeric() || !yt.IsNumeric() {
				return ast.TypeInvalid, c.errorf(e.Pos, "operator %s needs numeric operands", op)
			}
			return ast.TypeBoolean, nil
		case op.IsShift():
			if !xt.IsNumeric() || !yt.IsNumeric() {
				return ast.TypeInvalid, c.errorf(e.Pos, "operator %s needs numeric operands", op)
			}
			return xt, nil // shift result width follows the left operand
		case op == ast.OpAnd || op == ast.OpOr || op == ast.OpXor:
			if xt.Kind == ast.KindBoolean && yt.Kind == ast.KindBoolean {
				return ast.TypeBoolean, nil
			}
			if !xt.IsNumeric() || !yt.IsNumeric() {
				return ast.TypeInvalid, c.errorf(e.Pos, "operator %s needs numeric or boolean operands", op)
			}
			return promote(xt, yt), nil
		default:
			if !xt.IsNumeric() || !yt.IsNumeric() {
				return ast.TypeInvalid, c.errorf(e.Pos, "operator %s needs numeric operands", op)
			}
			return promote(xt, yt), nil
		}
	case *ast.CondExpr:
		if err := c.condExpr(e.Cond); err != nil {
			return ast.TypeInvalid, err
		}
		tt, err := c.expr(e.Then)
		if err != nil {
			return ast.TypeInvalid, err
		}
		et, err := c.expr(e.Else)
		if err != nil {
			return ast.TypeInvalid, err
		}
		switch {
		case tt.Equal(et):
			return tt, nil
		case tt.IsNumeric() && et.IsNumeric():
			return promote(tt, et), nil
		}
		return ast.TypeInvalid, c.errorf(e.Pos, "ternary branches have incompatible types %s and %s", tt, et)
	case *ast.NewArrayExpr:
		if e.Elem != ast.KindInt && e.Elem != ast.KindLong && e.Elem != ast.KindBoolean {
			return ast.TypeInvalid, c.errorf(e.Pos, "bad array element type")
		}
		if e.Elems != nil {
			want := ast.Type{Kind: e.Elem}
			for _, el := range e.Elems {
				et, err := c.expr(el)
				if err != nil {
					return ast.TypeInvalid, err
				}
				if !assignable(want, et) {
					return ast.TypeInvalid, c.errorf(e.Pos, "array element of type %s in %s array", et, want)
				}
			}
		} else {
			lt, err := c.expr(e.Len)
			if err != nil {
				return ast.TypeInvalid, err
			}
			if lt.Kind != ast.KindInt {
				return ast.TypeInvalid, c.errorf(e.Pos, "array length must be int, have %s", lt)
			}
		}
		return ast.ArrayOf(e.Elem), nil
	case *ast.CastExpr:
		xt, err := c.expr(e.X)
		if err != nil {
			return ast.TypeInvalid, err
		}
		if !xt.IsNumeric() || !e.To.IsNumeric() {
			return ast.TypeInvalid, c.errorf(e.Pos, "cannot cast %s to %s", xt, e.To)
		}
		return e.To, nil
	}
	return ast.TypeInvalid, c.errorf(e.Position(), "sem: unknown expression %T", e)
}

// ---------------------------------------------------------------------------
// Reachability ("may complete normally"), a simplified JLS 14.22.
// ---------------------------------------------------------------------------

// stmtCompletesNormally conservatively reports whether execution can
// fall off the end of s.
func stmtCompletesNormally(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.Block:
		for _, bs := range s.Stmts {
			if !stmtCompletesNormally(bs) {
				return false
			}
		}
		return true
	case *ast.ReturnStmt:
		return false
	case *ast.IfStmt:
		if s.Else == nil {
			return true
		}
		return stmtCompletesNormally(s.Then) || stmtCompletesNormally(s.Else)
	case *ast.ForStmt:
		if s.Cond == nil && !hasBreak(s.Body) {
			return false
		}
		return true
	case *ast.WhileStmt:
		if lit, ok := s.Cond.(*ast.BoolLit); ok && lit.Value && !hasBreak(s.Body) {
			return false
		}
		return true
	default:
		return true
	}
}

// hasBreak reports whether b contains a break that would exit the loop
// directly enclosing b (i.e. not one captured by a nested loop/switch).
func hasBreak(b *ast.Block) bool {
	for _, s := range b.Stmts {
		if stmtHasLoopBreak(s) {
			return true
		}
	}
	return false
}

func stmtHasLoopBreak(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BreakStmt:
		return true
	case *ast.Block:
		return hasBreak(s)
	case *ast.IfStmt:
		if hasBreak(s.Then) {
			return true
		}
		if s.Else != nil {
			return stmtHasLoopBreak(s.Else)
		}
		return false
	default:
		// Breaks inside nested loops/switches bind to those, not to
		// the enclosing loop.
		return false
	}
}
