package ast

import "testing"

func TestTypeHelpers(t *testing.T) {
	if !TypeInt.IsNumeric() || !TypeLong.IsNumeric() || TypeBoolean.IsNumeric() {
		t.Error("IsNumeric wrong")
	}
	arr := ArrayOf(KindInt)
	if !arr.IsArray() || arr.ElemType() != TypeInt {
		t.Error("array helpers wrong")
	}
	if TypeInt.ElemType() != TypeInvalid {
		t.Error("ElemType of scalar should be invalid")
	}
	if arr.String() != "int[]" || TypeLong.String() != "long" {
		t.Errorf("type strings: %q %q", arr.String(), TypeLong.String())
	}
	if !arr.Equal(ArrayOf(KindInt)) || arr.Equal(ArrayOf(KindLong)) {
		t.Error("type equality wrong")
	}
}

func TestAssignOpBinOp(t *testing.T) {
	pairs := map[AssignOp]BinOp{
		AsnAdd: OpAdd, AsnSub: OpSub, AsnMul: OpMul, AsnDiv: OpDiv,
		AsnRem: OpRem, AsnAnd: OpAnd, AsnOr: OpOr, AsnXor: OpXor,
		AsnShl: OpShl, AsnShr: OpShr, AsnUshr: OpUshr,
	}
	for asn, bin := range pairs {
		if asn.BinOp() != bin {
			t.Errorf("%v.BinOp() = %v, want %v", asn, asn.BinOp(), bin)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("AsnSet.BinOp() should panic")
		}
	}()
	AsnSet.BinOp()
}

func TestBinOpClassifiers(t *testing.T) {
	if !OpLt.IsComparison() || !OpNe.IsComparison() || OpAdd.IsComparison() {
		t.Error("IsComparison wrong")
	}
	if !OpShl.IsShift() || !OpUshr.IsShift() || OpAnd.IsShift() {
		t.Error("IsShift wrong")
	}
	if !OpLAnd.IsLogical() || OpAnd.IsLogical() {
		t.Error("IsLogical wrong")
	}
}

func buildMethod() *Method {
	// void m(int p) { int x = p; if (x > 0) { x = x - 1; } while (x > 0) { x = x - 1; } }
	px := &Ident{Name: "p"}
	decl := &DeclStmt{Type: TypeInt, Name: "x", Init: px}
	cond := &BinaryExpr{Op: OpGt, X: &Ident{Name: "x"}, Y: &IntLit{Value: 0}}
	asn := &AssignStmt{Target: &Ident{Name: "x"}, Op: AsnSet,
		Value: &BinaryExpr{Op: OpSub, X: &Ident{Name: "x"}, Y: &IntLit{Value: 1}}}
	ifs := &IfStmt{Cond: CloneExpr(cond), Then: &Block{Stmts: []Stmt{CloneStmt(asn)}}}
	wh := &WhileStmt{Cond: CloneExpr(cond), Body: &Block{Stmts: []Stmt{CloneStmt(asn)}}}
	return &Method{
		Ret: TypeVoid, Name: "m",
		Params: []*Param{{Type: TypeInt, Name: "p"}},
		Body:   &Block{Stmts: []Stmt{decl, ifs, wh}},
	}
}

func TestWalkStmtsVisitsEverything(t *testing.T) {
	m := buildMethod()
	var kinds []string
	WalkStmts(m, func(s Stmt) bool {
		switch s.(type) {
		case *DeclStmt:
			kinds = append(kinds, "decl")
		case *IfStmt:
			kinds = append(kinds, "if")
		case *WhileStmt:
			kinds = append(kinds, "while")
		case *AssignStmt:
			kinds = append(kinds, "assign")
		}
		return true
	})
	want := []string{"decl", "if", "assign", "while", "assign"}
	if len(kinds) != len(want) {
		t.Fatalf("visited %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("visited %v, want %v", kinds, want)
		}
	}
}

func TestWalkStmtsEarlyStop(t *testing.T) {
	m := buildMethod()
	n := 0
	WalkStmts(m, func(s Stmt) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestCountStmtsExcludesBlocks(t *testing.T) {
	m := buildMethod()
	// decl, if, assign, while, assign = 5
	if got := CountStmts(m); got != 5 {
		t.Errorf("CountStmts = %d, want 5", got)
	}
}

func TestWalkMethodExprsFindsIdents(t *testing.T) {
	m := buildMethod()
	idents := map[string]int{}
	WalkMethodExprs(m, func(e Expr) {
		if id, ok := e.(*Ident); ok {
			idents[id.Name]++
		}
	})
	if idents["p"] != 1 {
		t.Errorf("p seen %d times", idents["p"])
	}
	if idents["x"] < 6 {
		t.Errorf("x seen %d times", idents["x"])
	}
}

func TestProgramSize(t *testing.T) {
	p := &Program{Class: &Class{Name: "T", Methods: []*Method{buildMethod(), buildMethod()}}}
	if got := ProgramSize(p); got != 10 {
		t.Errorf("ProgramSize = %d, want 10", got)
	}
}

func TestCloneDeepIndependence(t *testing.T) {
	m := buildMethod()
	cl := CloneMethod(m)
	// Mutate a deeply nested node of the clone.
	ifs := cl.Body.Stmts[1].(*IfStmt)
	ifs.Then.Stmts[0].(*AssignStmt).Op = AsnAdd
	orig := m.Body.Stmts[1].(*IfStmt).Then.Stmts[0].(*AssignStmt)
	if orig.Op != AsnSet {
		t.Error("clone shares nodes with original")
	}
}
