// Package ast defines the abstract syntax tree for MJ, the Java-like
// language used throughout this repository as the test-program language
// for JIT-compiler validation (the role Java plays for Artemis in the
// paper). The tree is deliberately close to Java: one class per program,
// fields and methods, Java operator semantics, and Java-style runtime
// exceptions.
//
// Every expression node carries a Type that is filled in by the sem
// package; the bytecode compiler requires a type-checked tree.
package ast

import "fmt"

// Pos is a byte offset into the source text. The zero value means
// "unknown position" (used for synthesized nodes).
type Pos int

// Node is implemented by every AST node.
type Node interface {
	Position() Pos
}

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

// Kind enumerates the primitive type kinds of MJ.
type Kind int

const (
	KindInvalid Kind = iota
	KindVoid
	KindInt     // 32-bit wrapping two's complement, like Java int
	KindLong    // 64-bit wrapping two's complement, like Java long
	KindBoolean // true/false
	KindArray   // one-dimensional array of a primitive element type
)

func (k Kind) String() string {
	switch k {
	case KindVoid:
		return "void"
	case KindInt:
		return "int"
	case KindLong:
		return "long"
	case KindBoolean:
		return "boolean"
	case KindArray:
		return "array"
	}
	return "invalid"
}

// Type describes an MJ type. Types are values; compare with Equal.
type Type struct {
	Kind Kind
	Elem Kind // element kind when Kind == KindArray
}

// Convenience type constants.
var (
	TypeInvalid = Type{Kind: KindInvalid}
	TypeVoid    = Type{Kind: KindVoid}
	TypeInt     = Type{Kind: KindInt}
	TypeLong    = Type{Kind: KindLong}
	TypeBoolean = Type{Kind: KindBoolean}
)

// ArrayOf returns the array type with the given element kind.
func ArrayOf(elem Kind) Type { return Type{Kind: KindArray, Elem: elem} }

// Equal reports whether two types are identical.
func (t Type) Equal(u Type) bool { return t == u }

// IsNumeric reports whether t is int or long.
func (t Type) IsNumeric() bool { return t.Kind == KindInt || t.Kind == KindLong }

// IsArray reports whether t is an array type.
func (t Type) IsArray() bool { return t.Kind == KindArray }

// ElemType returns the element type of an array type.
func (t Type) ElemType() Type {
	if t.Kind != KindArray {
		return TypeInvalid
	}
	return Type{Kind: t.Elem}
}

func (t Type) String() string {
	if t.Kind == KindArray {
		return t.Elem.String() + "[]"
	}
	return t.Kind.String()
}

// ---------------------------------------------------------------------------
// Program structure
// ---------------------------------------------------------------------------

// Program is a complete MJ compilation unit: exactly one class.
type Program struct {
	Class *Class
}

func (p *Program) Position() Pos { return p.Class.Position() }

// Class is the single top-level class of a program. Its fields behave
// like the instance fields of a singleton object (as in the paper's
// examples, e.g. class T in Figure 2), and its methods can call each
// other freely.
type Class struct {
	Pos     Pos
	Name    string
	Fields  []*Field
	Methods []*Method
}

func (c *Class) Position() Pos { return c.Pos }

// Method returns the method with the given name, or nil.
func (c *Class) Method(name string) *Method {
	for _, m := range c.Methods {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Field returns the field with the given name, or nil.
func (c *Class) Field(name string) *Field {
	for _, f := range c.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Field is a class field with an optional initializer. Fields without
// initializers default to 0/false/an empty array.
type Field struct {
	Pos  Pos
	Type Type
	Name string
	Init Expr // may be nil
}

func (f *Field) Position() Pos { return f.Pos }

// Method is a method definition. The entry point of a program is the
// parameterless method "main".
type Method struct {
	Pos    Pos
	Ret    Type // TypeVoid for void methods
	Name   string
	Params []*Param
	Body   *Block
}

func (m *Method) Position() Pos { return m.Pos }

// Param is a formal method parameter.
type Param struct {
	Pos  Pos
	Type Type
	Name string
}

func (p *Param) Position() Pos { return p.Pos }

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Block is a braced statement sequence with its own scope.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

// DeclStmt declares (and optionally initializes) a local variable.
// Array-typed locals must have an initializer.
type DeclStmt struct {
	Pos  Pos
	Type Type
	Name string
	Init Expr // may be nil for scalars

	// Slot is the local-variable slot assigned by sem.
	Slot int
}

// AssignOp enumerates assignment operators.
type AssignOp int

const (
	AsnSet  AssignOp = iota // =
	AsnAdd                  // +=
	AsnSub                  // -=
	AsnMul                  // *=
	AsnDiv                  // /=
	AsnRem                  // %=
	AsnAnd                  // &=
	AsnOr                   // |=
	AsnXor                  // ^=
	AsnShl                  // <<=
	AsnShr                  // >>=
	AsnUshr                 // >>>=
)

var assignOpNames = [...]string{"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=", ">>>="}

func (op AssignOp) String() string { return assignOpNames[op] }

// BinOp returns the binary operator corresponding to a compound
// assignment operator (AsnAdd -> OpAdd, ...). It must not be called on
// AsnSet.
func (op AssignOp) BinOp() BinOp {
	switch op {
	case AsnAdd:
		return OpAdd
	case AsnSub:
		return OpSub
	case AsnMul:
		return OpMul
	case AsnDiv:
		return OpDiv
	case AsnRem:
		return OpRem
	case AsnAnd:
		return OpAnd
	case AsnOr:
		return OpOr
	case AsnXor:
		return OpXor
	case AsnShl:
		return OpShl
	case AsnShr:
		return OpShr
	case AsnUshr:
		return OpUshr
	}
	panic(fmt.Sprintf("ast: AssignOp %d has no binary op", op))
}

// AssignStmt assigns to a variable, field, or array element.
// i++ / i-- are desugared by the parser to i += 1 / i -= 1.
type AssignStmt struct {
	Pos    Pos
	Target Expr // *Ident or *IndexExpr
	Op     AssignOp
	Value  Expr
}

// IfStmt is a conditional with an optional else branch. Else is either
// a *Block or another *IfStmt (else-if chain), or nil.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *Block
	Else Stmt
}

// ForStmt is a C-style for loop. Init and Post may be nil; Cond may be
// nil (infinite loop).
type ForStmt struct {
	Pos  Pos
	Init Stmt // *DeclStmt or *AssignStmt, or nil
	Cond Expr
	Post Stmt // *AssignStmt, or nil
	Body *Block
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *Block
}

// SwitchCase is one arm of a switch statement. A nil Values slice marks
// the default arm. Execution falls through to the next arm unless the
// body ends in break, as in Java.
type SwitchCase struct {
	Pos    Pos
	Values []int64 // constant case labels; nil for default
	Body   []Stmt
}

// SwitchStmt is a Java-style switch on an int expression with
// fallthrough semantics.
type SwitchStmt struct {
	Pos   Pos
	Tag   Expr
	Cases []*SwitchCase
}

// BreakStmt breaks the innermost loop or switch.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

// ReturnStmt returns from the current method.
type ReturnStmt struct {
	Pos   Pos
	Value Expr // nil for void returns
}

// ExprStmt evaluates an expression for its side effects (method call).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// PrintStmt is the built-in print(expr); statement. It appends the
// value to the program's observable output stream, the analogue of
// System.out.println in the paper's test programs.
type PrintStmt struct {
	Pos Pos
	X   Expr
}

func (s *Block) Position() Pos        { return s.Pos }
func (s *DeclStmt) Position() Pos     { return s.Pos }
func (s *AssignStmt) Position() Pos   { return s.Pos }
func (s *IfStmt) Position() Pos       { return s.Pos }
func (s *ForStmt) Position() Pos      { return s.Pos }
func (s *WhileStmt) Position() Pos    { return s.Pos }
func (s *SwitchStmt) Position() Pos   { return s.Pos }
func (s *BreakStmt) Position() Pos    { return s.Pos }
func (s *ContinueStmt) Position() Pos { return s.Pos }
func (s *ReturnStmt) Position() Pos   { return s.Pos }
func (s *ExprStmt) Position() Pos     { return s.Pos }
func (s *PrintStmt) Position() Pos    { return s.Pos }

func (*Block) stmtNode()        {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*SwitchStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*PrintStmt) stmtNode()    {}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Expr is implemented by all expression nodes. Every expression carries
// the type computed by semantic analysis.
type Expr interface {
	Node
	exprNode()
	// Type returns the type assigned by sem (TypeInvalid before
	// analysis).
	Type() Type
	// SetType records the type during semantic analysis.
	SetType(Type)
}

// typed is embedded in every expression node to hold its type.
type typed struct{ T Type }

func (t *typed) Type() Type      { return t.T }
func (t *typed) SetType(ty Type) { t.T = ty }

// IntLit is an integer literal. Long literals carry the 'L' suffix in
// source (e.g. 42L).
type IntLit struct {
	typed
	Pos    Pos
	Value  int64
	IsLong bool
}

// BoolLit is true or false.
type BoolLit struct {
	typed
	Pos   Pos
	Value bool
}

// RefKind says what an identifier resolved to.
type RefKind int

const (
	RefUnresolved RefKind = iota
	RefLocal              // local variable or parameter; Index is the slot
	RefField              // class field; Index is the field index
)

// Ident is a reference to a local variable, parameter, or field.
// Sem resolves it and fills Ref/Index.
type Ident struct {
	typed
	Pos  Pos
	Name string

	Ref   RefKind
	Index int
}

// IndexExpr is arr[i].
type IndexExpr struct {
	typed
	Pos   Pos
	Arr   Expr
	Index Expr
}

// LenExpr is arr.length.
type LenExpr struct {
	typed
	Pos Pos
	Arr Expr
}

// CallExpr invokes another method of the program's class.
// Sem fills MethodIndex.
type CallExpr struct {
	typed
	Pos  Pos
	Name string
	Args []Expr

	MethodIndex int
}

// UnOp enumerates unary operators.
type UnOp int

const (
	OpNeg    UnOp = iota // -x
	OpNot                // !b
	OpBitNot             // ~x
)

var unOpNames = [...]string{"-", "!", "~"}

func (op UnOp) String() string { return unOpNames[op] }

// UnaryExpr applies a unary operator.
type UnaryExpr struct {
	typed
	Pos Pos
	Op  UnOp
	X   Expr
}

// BinOp enumerates binary operators.
type BinOp int

const (
	OpAdd  BinOp = iota // +
	OpSub               // -
	OpMul               // *
	OpDiv               // /
	OpRem               // %
	OpAnd               // &
	OpOr                // |
	OpXor               // ^
	OpShl               // <<
	OpShr               // >>
	OpUshr              // >>>
	OpLt                // <
	OpLe                // <=
	OpGt                // >
	OpGe                // >=
	OpEq                // ==
	OpNe                // !=
	OpLAnd              // && (short-circuit)
	OpLOr               // || (short-circuit)
)

var binOpNames = [...]string{
	"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", ">>>",
	"<", "<=", ">", ">=", "==", "!=", "&&", "||",
}

func (op BinOp) String() string { return binOpNames[op] }

// IsComparison reports whether op yields a boolean from two numeric
// operands.
func (op BinOp) IsComparison() bool { return op >= OpLt && op <= OpNe }

// IsShift reports whether op is a shift operator.
func (op BinOp) IsShift() bool { return op == OpShl || op == OpShr || op == OpUshr }

// IsLogical reports whether op is a short-circuit boolean operator.
func (op BinOp) IsLogical() bool { return op == OpLAnd || op == OpLOr }

// BinaryExpr applies a binary operator. Java numeric promotion applies:
// if either operand of an arithmetic/bitwise operator is long, the
// operation is performed in 64 bits; otherwise in 32 bits. Shift result
// width follows the left operand, and the shift count is masked (&31 or
// &63) as in Java.
type BinaryExpr struct {
	typed
	Pos Pos
	Op  BinOp
	X   Expr
	Y   Expr
}

// CondExpr is the ternary operator cond ? a : b.
type CondExpr struct {
	typed
	Pos  Pos
	Cond Expr
	Then Expr
	Else Expr
}

// NewArrayExpr is "new int[n]" (zero-initialized) or, when Elems is
// non-nil, "new int[]{...}".
type NewArrayExpr struct {
	typed
	Pos   Pos
	Elem  Kind
	Len   Expr   // nil when Elems is given
	Elems []Expr // nil for sized form
}

// CastExpr converts between int and long: (int)x or (long)x, with Java
// narrowing (truncation) semantics.
type CastExpr struct {
	typed
	Pos Pos
	To  Type
	X   Expr
}

func (e *IntLit) Position() Pos       { return e.Pos }
func (e *BoolLit) Position() Pos      { return e.Pos }
func (e *Ident) Position() Pos        { return e.Pos }
func (e *IndexExpr) Position() Pos    { return e.Pos }
func (e *LenExpr) Position() Pos      { return e.Pos }
func (e *CallExpr) Position() Pos     { return e.Pos }
func (e *UnaryExpr) Position() Pos    { return e.Pos }
func (e *BinaryExpr) Position() Pos   { return e.Pos }
func (e *CondExpr) Position() Pos     { return e.Pos }
func (e *NewArrayExpr) Position() Pos { return e.Pos }
func (e *CastExpr) Position() Pos     { return e.Pos }

func (*IntLit) exprNode()       {}
func (*BoolLit) exprNode()      {}
func (*Ident) exprNode()        {}
func (*IndexExpr) exprNode()    {}
func (*LenExpr) exprNode()      {}
func (*CallExpr) exprNode()     {}
func (*UnaryExpr) exprNode()    {}
func (*BinaryExpr) exprNode()   {}
func (*CondExpr) exprNode()     {}
func (*NewArrayExpr) exprNode() {}
func (*CastExpr) exprNode()     {}
