package ast

import (
	"fmt"
	"strings"
)

// Print renders a program as MJ source text. The output parses back to
// an equivalent tree (modulo positions), which the printer round-trip
// tests rely on.
func Print(p *Program) string {
	var pr printer
	pr.class(p.Class)
	return pr.b.String()
}

// PrintStmtNode renders a single statement (useful in error messages
// and reducer output).
func PrintStmtNode(s Stmt) string {
	var pr printer
	pr.stmt(s)
	return pr.b.String()
}

// PrintExpr renders a single expression.
func PrintExpr(e Expr) string {
	var pr printer
	pr.expr(e, precLowest)
	return pr.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) line(format string, args ...any) {
	p.pad()
	fmt.Fprintf(&p.b, format, args...)
	p.b.WriteByte('\n')
}

func (p *printer) pad() {
	for i := 0; i < p.indent; i++ {
		p.b.WriteString("    ")
	}
}

func (p *printer) class(c *Class) {
	p.line("class %s {", c.Name)
	p.indent++
	for _, f := range c.Fields {
		p.pad()
		fmt.Fprintf(&p.b, "%s %s", f.Type, f.Name)
		if f.Init != nil {
			p.b.WriteString(" = ")
			p.expr(f.Init, precLowest)
		}
		p.b.WriteString(";\n")
	}
	for i, m := range c.Methods {
		if i > 0 || len(c.Fields) > 0 {
			p.b.WriteByte('\n')
		}
		p.method(m)
	}
	p.indent--
	p.line("}")
}

func (p *printer) method(m *Method) {
	p.pad()
	fmt.Fprintf(&p.b, "%s %s(", m.Ret, m.Name)
	for i, prm := range m.Params {
		if i > 0 {
			p.b.WriteString(", ")
		}
		fmt.Fprintf(&p.b, "%s %s", prm.Type, prm.Name)
	}
	p.b.WriteString(") ")
	p.block(m.Body)
	p.b.WriteByte('\n')
}

func (p *printer) block(b *Block) {
	p.b.WriteString("{\n")
	p.indent++
	for _, s := range b.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.pad()
	p.b.WriteString("}")
}

// stmt prints a statement including indentation and trailing newline.
func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *Block:
		p.pad()
		p.block(s)
		p.b.WriteByte('\n')
	case *DeclStmt:
		p.pad()
		fmt.Fprintf(&p.b, "%s %s", s.Type, s.Name)
		if s.Init != nil {
			p.b.WriteString(" = ")
			p.expr(s.Init, precLowest)
		}
		p.b.WriteString(";\n")
	case *AssignStmt:
		p.pad()
		p.simpleAssign(s)
		p.b.WriteString(";\n")
	case *IfStmt:
		p.pad()
		p.ifChain(s)
		p.b.WriteByte('\n')
	case *ForStmt:
		p.pad()
		p.b.WriteString("for (")
		switch init := s.Init.(type) {
		case nil:
		case *DeclStmt:
			fmt.Fprintf(&p.b, "%s %s", init.Type, init.Name)
			if init.Init != nil {
				p.b.WriteString(" = ")
				p.expr(init.Init, precLowest)
			}
		case *AssignStmt:
			p.simpleAssign(init)
		default:
			panic(fmt.Sprintf("ast: bad for-init %T", s.Init))
		}
		p.b.WriteString("; ")
		if s.Cond != nil {
			p.expr(s.Cond, precLowest)
		}
		p.b.WriteString("; ")
		if post, ok := s.Post.(*AssignStmt); ok {
			p.simpleAssign(post)
		}
		p.b.WriteString(") ")
		p.block(s.Body)
		p.b.WriteByte('\n')
	case *WhileStmt:
		p.pad()
		p.b.WriteString("while (")
		p.expr(s.Cond, precLowest)
		p.b.WriteString(") ")
		p.block(s.Body)
		p.b.WriteByte('\n')
	case *SwitchStmt:
		p.pad()
		p.b.WriteString("switch (")
		p.expr(s.Tag, precLowest)
		p.b.WriteString(") {\n")
		p.indent++
		for _, c := range s.Cases {
			if c.Values == nil {
				p.line("default:")
			} else {
				for _, v := range c.Values {
					p.line("case %d:", v)
				}
			}
			p.indent++
			for _, bs := range c.Body {
				p.stmt(bs)
			}
			p.indent--
		}
		p.indent--
		p.pad()
		p.b.WriteString("}\n")
	case *BreakStmt:
		p.line("break;")
	case *ContinueStmt:
		p.line("continue;")
	case *ReturnStmt:
		if s.Value == nil {
			p.line("return;")
		} else {
			p.pad()
			p.b.WriteString("return ")
			p.expr(s.Value, precLowest)
			p.b.WriteString(";\n")
		}
	case *ExprStmt:
		p.pad()
		p.expr(s.X, precLowest)
		p.b.WriteString(";\n")
	case *PrintStmt:
		p.pad()
		p.b.WriteString("print(")
		p.expr(s.X, precLowest)
		p.b.WriteString(");\n")
	default:
		panic(fmt.Sprintf("ast: unknown statement %T", s))
	}
}

// simpleAssign prints an assignment without indentation or semicolon
// (shared by statement position and for-clauses).
func (p *printer) simpleAssign(s *AssignStmt) {
	p.expr(s.Target, precLowest)
	fmt.Fprintf(&p.b, " %s ", s.Op)
	p.expr(s.Value, precLowest)
}

// Operator precedence levels, low to high, mirroring Java.
const (
	precLowest  = 0
	precCond    = 1  // ?:
	precLOr     = 2  // ||
	precLAnd    = 3  // &&
	precBitOr   = 4  // |
	precBitXor  = 5  // ^
	precBitAnd  = 6  // &
	precEq      = 7  // == !=
	precRel     = 8  // < <= > >=
	precShift   = 9  // << >> >>>
	precAdd     = 10 // + -
	precMul     = 11 // * / %
	precUnary   = 12
	precPostfix = 13
)

// binPrec returns the precedence of a binary operator.
func binPrec(op BinOp) int {
	switch op {
	case OpLOr:
		return precLOr
	case OpLAnd:
		return precLAnd
	case OpOr:
		return precBitOr
	case OpXor:
		return precBitXor
	case OpAnd:
		return precBitAnd
	case OpEq, OpNe:
		return precEq
	case OpLt, OpLe, OpGt, OpGe:
		return precRel
	case OpShl, OpShr, OpUshr:
		return precShift
	case OpAdd, OpSub:
		return precAdd
	case OpMul, OpDiv, OpRem:
		return precMul
	}
	panic(fmt.Sprintf("ast: bad binop %d", op))
}

// expr prints e, adding parentheses when e's precedence is lower than
// the surrounding context's.
func (p *printer) expr(e Expr, ctx int) {
	switch e := e.(type) {
	case *IntLit:
		fmt.Fprintf(&p.b, "%d", e.Value)
		if e.IsLong {
			p.b.WriteByte('L')
		}
	case *BoolLit:
		fmt.Fprintf(&p.b, "%t", e.Value)
	case *Ident:
		p.b.WriteString(e.Name)
	case *IndexExpr:
		p.expr(e.Arr, precPostfix)
		p.b.WriteByte('[')
		p.expr(e.Index, precLowest)
		p.b.WriteByte(']')
	case *LenExpr:
		p.expr(e.Arr, precPostfix)
		p.b.WriteString(".length")
	case *CallExpr:
		p.b.WriteString(e.Name)
		p.b.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.expr(a, precLowest)
		}
		p.b.WriteByte(')')
	case *UnaryExpr:
		paren := ctx > precUnary
		if paren {
			p.b.WriteByte('(')
		}
		p.b.WriteString(e.Op.String())
		// "-(-5)" must not print as "--5": parenthesize operands that
		// themselves start with a minus sign.
		inner := e.Op == OpNeg && startsWithMinus(e.X)
		if inner {
			p.b.WriteByte('(')
		}
		p.expr(e.X, precUnary)
		if inner {
			p.b.WriteByte(')')
		}
		if paren {
			p.b.WriteByte(')')
		}
	case *BinaryExpr:
		prec := binPrec(e.Op)
		paren := ctx > prec
		if paren {
			p.b.WriteByte('(')
		}
		p.expr(e.X, prec)
		fmt.Fprintf(&p.b, " %s ", e.Op)
		// Left associativity: the right child needs one level more.
		p.expr(e.Y, prec+1)
		if paren {
			p.b.WriteByte(')')
		}
	case *CondExpr:
		paren := ctx > precCond
		if paren {
			p.b.WriteByte('(')
		}
		p.expr(e.Cond, precCond+1)
		p.b.WriteString(" ? ")
		p.expr(e.Then, precCond)
		p.b.WriteString(" : ")
		p.expr(e.Else, precCond)
		if paren {
			p.b.WriteByte(')')
		}
	case *NewArrayExpr:
		if e.Elems != nil {
			fmt.Fprintf(&p.b, "new %s[]{", e.Elem)
			for i, el := range e.Elems {
				if i > 0 {
					p.b.WriteString(", ")
				}
				p.expr(el, precLowest)
			}
			p.b.WriteByte('}')
		} else {
			fmt.Fprintf(&p.b, "new %s[", e.Elem)
			p.expr(e.Len, precLowest)
			p.b.WriteByte(']')
		}
	case *CastExpr:
		paren := ctx > precUnary
		if paren {
			p.b.WriteByte('(')
		}
		fmt.Fprintf(&p.b, "(%s)", e.To)
		p.expr(e.X, precUnary)
		if paren {
			p.b.WriteByte(')')
		}
	default:
		panic(fmt.Sprintf("ast: unknown expression %T", e))
	}
}

// startsWithMinus reports whether e's printed form begins with '-'.
func startsWithMinus(e Expr) bool {
	switch e := e.(type) {
	case *IntLit:
		return e.Value < 0
	case *UnaryExpr:
		return e.Op == OpNeg
	}
	return false
}

// ifChain prints "if (...) {...} else if ... else {...}" without
// leading indentation or trailing newline.
func (p *printer) ifChain(s *IfStmt) {
	p.b.WriteString("if (")
	p.expr(s.Cond, precLowest)
	p.b.WriteString(") ")
	p.block(s.Then)
	switch e := s.Else.(type) {
	case nil:
	case *IfStmt:
		p.b.WriteString(" else ")
		p.ifChain(e)
	case *Block:
		p.b.WriteString(" else ")
		p.block(e)
	default:
		panic(fmt.Sprintf("ast: bad else %T", s.Else))
	}
}
