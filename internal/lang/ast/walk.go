package ast

import "fmt"

// WalkStmts calls fn for every statement in the method body, in source
// order, including nested statements. If fn returns false, the walk
// stops early. The *Block wrappers themselves are visited too.
func WalkStmts(m *Method, fn func(Stmt) bool) {
	walkBlock(m.Body, fn)
}

func walkBlock(b *Block, fn func(Stmt) bool) bool {
	if b == nil {
		return true
	}
	if !fn(b) {
		return false
	}
	for _, s := range b.Stmts {
		if !walkStmt(s, fn) {
			return false
		}
	}
	return true
}

func walkStmt(s Stmt, fn func(Stmt) bool) bool {
	switch s := s.(type) {
	case *Block:
		return walkBlock(s, fn)
	case *IfStmt:
		if !fn(s) {
			return false
		}
		if !walkBlock(s.Then, fn) {
			return false
		}
		if s.Else != nil {
			return walkStmt(s.Else, fn)
		}
		return true
	case *ForStmt:
		if !fn(s) {
			return false
		}
		return walkBlock(s.Body, fn)
	case *WhileStmt:
		if !fn(s) {
			return false
		}
		return walkBlock(s.Body, fn)
	case *SwitchStmt:
		if !fn(s) {
			return false
		}
		for _, c := range s.Cases {
			for _, bs := range c.Body {
				if !walkStmt(bs, fn) {
					return false
				}
			}
		}
		return true
	default:
		return fn(s)
	}
}

// WalkExprs calls fn for every expression reachable from e, pre-order.
func WalkExprs(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch e := e.(type) {
	case *IndexExpr:
		WalkExprs(e.Arr, fn)
		WalkExprs(e.Index, fn)
	case *LenExpr:
		WalkExprs(e.Arr, fn)
	case *CallExpr:
		for _, a := range e.Args {
			WalkExprs(a, fn)
		}
	case *UnaryExpr:
		WalkExprs(e.X, fn)
	case *BinaryExpr:
		WalkExprs(e.X, fn)
		WalkExprs(e.Y, fn)
	case *CondExpr:
		WalkExprs(e.Cond, fn)
		WalkExprs(e.Then, fn)
		WalkExprs(e.Else, fn)
	case *NewArrayExpr:
		WalkExprs(e.Len, fn)
		for _, el := range e.Elems {
			WalkExprs(el, fn)
		}
	case *CastExpr:
		WalkExprs(e.X, fn)
	case *IntLit, *BoolLit, *Ident:
	default:
		panic(fmt.Sprintf("ast: walk of unknown expression %T", e))
	}
}

// WalkMethodExprs calls fn for every expression in the method body.
func WalkMethodExprs(m *Method, fn func(Expr)) {
	WalkStmts(m, func(s Stmt) bool {
		switch s := s.(type) {
		case *DeclStmt:
			WalkExprs(s.Init, fn)
		case *AssignStmt:
			WalkExprs(s.Target, fn)
			WalkExprs(s.Value, fn)
		case *IfStmt:
			WalkExprs(s.Cond, fn)
		case *ForStmt:
			// Init/Post are visited as their own statements only if
			// they are inside the body; handle them here explicitly.
			switch init := s.Init.(type) {
			case *DeclStmt:
				WalkExprs(init.Init, fn)
			case *AssignStmt:
				WalkExprs(init.Target, fn)
				WalkExprs(init.Value, fn)
			}
			WalkExprs(s.Cond, fn)
			if post, ok := s.Post.(*AssignStmt); ok {
				WalkExprs(post.Target, fn)
				WalkExprs(post.Value, fn)
			}
		case *WhileStmt:
			WalkExprs(s.Cond, fn)
		case *SwitchStmt:
			WalkExprs(s.Tag, fn)
		case *ReturnStmt:
			WalkExprs(s.Value, fn)
		case *ExprStmt:
			WalkExprs(s.X, fn)
		case *PrintStmt:
			WalkExprs(s.X, fn)
		}
		return true
	})
}

// CountStmts returns the number of statements in the method body
// (excluding block wrappers), a simple size metric used by the fuzzer
// and the reducer.
func CountStmts(m *Method) int {
	n := 0
	WalkStmts(m, func(s Stmt) bool {
		if _, ok := s.(*Block); !ok {
			n++
		}
		return true
	})
	return n
}

// ProgramSize returns the total statement count over all methods.
func ProgramSize(p *Program) int {
	n := 0
	for _, m := range p.Class.Methods {
		n += CountStmts(m)
	}
	return n
}
