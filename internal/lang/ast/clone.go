package ast

import "fmt"

// CloneProgram returns a deep copy of p. Mutation engines (jonm,
// reduce) always clone before editing so the seed stays intact.
func CloneProgram(p *Program) *Program {
	return &Program{Class: cloneClass(p.Class)}
}

func cloneClass(c *Class) *Class {
	nc := &Class{Pos: c.Pos, Name: c.Name}
	for _, f := range c.Fields {
		nc.Fields = append(nc.Fields, &Field{Pos: f.Pos, Type: f.Type, Name: f.Name, Init: CloneExpr(f.Init)})
	}
	for _, m := range c.Methods {
		nc.Methods = append(nc.Methods, CloneMethod(m))
	}
	return nc
}

// CloneMethod returns a deep copy of m.
func CloneMethod(m *Method) *Method {
	nm := &Method{Pos: m.Pos, Ret: m.Ret, Name: m.Name, Body: CloneBlock(m.Body)}
	for _, p := range m.Params {
		nm.Params = append(nm.Params, &Param{Pos: p.Pos, Type: p.Type, Name: p.Name})
	}
	return nm
}

// CloneBlock returns a deep copy of b.
func CloneBlock(b *Block) *Block {
	if b == nil {
		return nil
	}
	nb := &Block{Pos: b.Pos}
	for _, s := range b.Stmts {
		nb.Stmts = append(nb.Stmts, CloneStmt(s))
	}
	return nb
}

// CloneStmt returns a deep copy of s.
func CloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case nil:
		return nil
	case *Block:
		return CloneBlock(s)
	case *DeclStmt:
		return &DeclStmt{Pos: s.Pos, Type: s.Type, Name: s.Name, Init: CloneExpr(s.Init), Slot: s.Slot}
	case *AssignStmt:
		return &AssignStmt{Pos: s.Pos, Target: CloneExpr(s.Target), Op: s.Op, Value: CloneExpr(s.Value)}
	case *IfStmt:
		return &IfStmt{Pos: s.Pos, Cond: CloneExpr(s.Cond), Then: CloneBlock(s.Then), Else: CloneStmt(s.Else)}
	case *ForStmt:
		return &ForStmt{Pos: s.Pos, Init: CloneStmt(s.Init), Cond: CloneExpr(s.Cond), Post: CloneStmt(s.Post), Body: CloneBlock(s.Body)}
	case *WhileStmt:
		return &WhileStmt{Pos: s.Pos, Cond: CloneExpr(s.Cond), Body: CloneBlock(s.Body)}
	case *SwitchStmt:
		ns := &SwitchStmt{Pos: s.Pos, Tag: CloneExpr(s.Tag)}
		for _, c := range s.Cases {
			nc := &SwitchCase{Pos: c.Pos}
			if c.Values != nil {
				nc.Values = append([]int64(nil), c.Values...)
			}
			for _, bs := range c.Body {
				nc.Body = append(nc.Body, CloneStmt(bs))
			}
			ns.Cases = append(ns.Cases, nc)
		}
		return ns
	case *BreakStmt:
		return &BreakStmt{Pos: s.Pos}
	case *ContinueStmt:
		return &ContinueStmt{Pos: s.Pos}
	case *ReturnStmt:
		return &ReturnStmt{Pos: s.Pos, Value: CloneExpr(s.Value)}
	case *ExprStmt:
		return &ExprStmt{Pos: s.Pos, X: CloneExpr(s.X)}
	case *PrintStmt:
		return &PrintStmt{Pos: s.Pos, X: CloneExpr(s.X)}
	}
	panic(fmt.Sprintf("ast: clone of unknown statement %T", s))
}

// CloneExpr returns a deep copy of e (nil-safe).
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *IntLit:
		cp := *e
		return &cp
	case *BoolLit:
		cp := *e
		return &cp
	case *Ident:
		cp := *e
		return &cp
	case *IndexExpr:
		return &IndexExpr{typed: e.typed, Pos: e.Pos, Arr: CloneExpr(e.Arr), Index: CloneExpr(e.Index)}
	case *LenExpr:
		return &LenExpr{typed: e.typed, Pos: e.Pos, Arr: CloneExpr(e.Arr)}
	case *CallExpr:
		nc := &CallExpr{typed: e.typed, Pos: e.Pos, Name: e.Name, MethodIndex: e.MethodIndex}
		for _, a := range e.Args {
			nc.Args = append(nc.Args, CloneExpr(a))
		}
		return nc
	case *UnaryExpr:
		return &UnaryExpr{typed: e.typed, Pos: e.Pos, Op: e.Op, X: CloneExpr(e.X)}
	case *BinaryExpr:
		return &BinaryExpr{typed: e.typed, Pos: e.Pos, Op: e.Op, X: CloneExpr(e.X), Y: CloneExpr(e.Y)}
	case *CondExpr:
		return &CondExpr{typed: e.typed, Pos: e.Pos, Cond: CloneExpr(e.Cond), Then: CloneExpr(e.Then), Else: CloneExpr(e.Else)}
	case *NewArrayExpr:
		ne := &NewArrayExpr{typed: e.typed, Pos: e.Pos, Elem: e.Elem, Len: CloneExpr(e.Len)}
		for _, el := range e.Elems {
			ne.Elems = append(ne.Elems, CloneExpr(el))
		}
		return ne
	case *CastExpr:
		return &CastExpr{typed: e.typed, Pos: e.Pos, To: e.To, X: CloneExpr(e.X)}
	}
	panic(fmt.Sprintf("ast: clone of unknown expression %T", e))
}
