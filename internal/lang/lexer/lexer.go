// Package lexer tokenizes MJ source text.
package lexer

import (
	"fmt"
	"strconv"

	"artemis/internal/lang/ast"
)

// Kind enumerates token kinds.
type Kind int

const (
	EOF Kind = iota
	Ident
	IntLit  // 123
	LongLit // 123L

	// Keywords
	KwClass
	KwInt
	KwLong
	KwBoolean
	KwVoid
	KwIf
	KwElse
	KwFor
	KwWhile
	KwSwitch
	KwCase
	KwDefault
	KwBreak
	KwContinue
	KwReturn
	KwTrue
	KwFalse
	KwNew
	KwPrint
	KwLength

	// Punctuation and operators
	LBrace
	RBrace
	LParen
	RParen
	LBracket
	RBracket
	Semi
	Comma
	Colon
	Question
	Dot

	Assign     // =
	PlusAssign // +=
	MinusAssign
	StarAssign
	SlashAssign
	PercentAssign
	AmpAssign
	PipeAssign
	CaretAssign
	ShlAssign
	ShrAssign
	UshrAssign

	Plus
	Minus
	Star
	Slash
	Percent
	Amp
	Pipe
	Caret
	Tilde
	Bang
	Shl
	Shr
	Ushr
	Lt
	Le
	Gt
	Ge
	EqEq
	NotEq
	AndAnd
	OrOr
	PlusPlus
	MinusMinus
)

var kindNames = map[Kind]string{
	EOF: "EOF", Ident: "identifier", IntLit: "int literal", LongLit: "long literal",
	KwClass: "'class'", KwInt: "'int'", KwLong: "'long'", KwBoolean: "'boolean'",
	KwVoid: "'void'", KwIf: "'if'", KwElse: "'else'", KwFor: "'for'",
	KwWhile: "'while'", KwSwitch: "'switch'", KwCase: "'case'", KwDefault: "'default'",
	KwBreak: "'break'", KwContinue: "'continue'", KwReturn: "'return'",
	KwTrue: "'true'", KwFalse: "'false'", KwNew: "'new'", KwPrint: "'print'",
	KwLength: "'length'",
	LBrace:   "'{'", RBrace: "'}'", LParen: "'('", RParen: "')'",
	LBracket: "'['", RBracket: "']'", Semi: "';'", Comma: "','",
	Colon: "':'", Question: "'?'", Dot: "'.'",
	Assign: "'='", PlusAssign: "'+='", MinusAssign: "'-='", StarAssign: "'*='",
	SlashAssign: "'/='", PercentAssign: "'%='", AmpAssign: "'&='",
	PipeAssign: "'|='", CaretAssign: "'^='", ShlAssign: "'<<='",
	ShrAssign: "'>>='", UshrAssign: "'>>>='",
	Plus: "'+'", Minus: "'-'", Star: "'*'", Slash: "'/'", Percent: "'%'",
	Amp: "'&'", Pipe: "'|'", Caret: "'^'", Tilde: "'~'", Bang: "'!'",
	Shl: "'<<'", Shr: "'>>'", Ushr: "'>>>'",
	Lt: "'<'", Le: "'<='", Gt: "'>'", Ge: "'>='", EqEq: "'=='", NotEq: "'!='",
	AndAnd: "'&&'", OrOr: "'||'", PlusPlus: "'++'", MinusMinus: "'--'",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

var keywords = map[string]Kind{
	"class": KwClass, "int": KwInt, "long": KwLong, "boolean": KwBoolean,
	"void": KwVoid, "if": KwIf, "else": KwElse, "for": KwFor, "while": KwWhile,
	"switch": KwSwitch, "case": KwCase, "default": KwDefault, "break": KwBreak,
	"continue": KwContinue, "return": KwReturn, "true": KwTrue, "false": KwFalse,
	"new": KwNew, "print": KwPrint, "length": KwLength,
}

// Token is one lexical token.
type Token struct {
	Kind Kind
	Pos  ast.Pos
	Text string // identifier text
	Int  int64  // literal value
}

// Error is a lexical error with position information.
type Error struct {
	Pos  ast.Pos
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

// Lexer scans MJ source.
type Lexer struct {
	src  string
	off  int
	line int
}

// New returns a lexer over src.
func New(src string) *Lexer { return &Lexer{src: src, line: 1} }

// Line returns the line number at offset pos (1-based), for error
// reporting.
func Line(src string, pos ast.Pos) int {
	line := 1
	for i := 0; i < int(pos) && i < len(src); i++ {
		if src[i] == '\n' {
			line++
		}
	}
	return line
}

// Tokenize scans all of src into tokens (terminated by an EOF token).
func Tokenize(src string) ([]Token, error) {
	lx := New(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

func (l *Lexer) errorf(pos int, format string, args ...any) error {
	return &Error{Pos: ast.Pos(pos), Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() byte {
	if l.off < len(l.src) {
		return l.src[l.off]
	}
	return 0
}

func (l *Lexer) peekAt(n int) byte {
	if l.off+n < len(l.src) {
		return l.src[l.off+n]
	}
	return 0
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			l.off++
		case c == '\n':
			l.line++
			l.off++
		case c == '/' && l.peekAt(1) == '/':
			for l.off < len(l.src) && l.src[l.off] != '\n' {
				l.off++
			}
		case c == '/' && l.peekAt(1) == '*':
			start := l.off
			l.off += 2
			for {
				if l.off+1 >= len(l.src) {
					return l.errorf(start, "unterminated block comment")
				}
				if l.src[l.off] == '\n' {
					l.line++
				}
				if l.src[l.off] == '*' && l.src[l.off+1] == '/' {
					l.off += 2
					break
				}
				l.off++
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := ast.Pos(l.off)
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.src[l.off]

	// Identifiers and keywords.
	if isIdentStart(c) {
		start := l.off
		for l.off < len(l.src) && (isIdentStart(l.src[l.off]) || isDigit(l.src[l.off])) {
			l.off++
		}
		text := l.src[start:l.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Pos: pos, Text: text}, nil
		}
		return Token{Kind: Ident, Pos: pos, Text: text}, nil
	}

	// Numeric literals (decimal only; the fuzzer and printers emit
	// decimal). A trailing L/l marks a long literal.
	if isDigit(c) {
		start := l.off
		for l.off < len(l.src) && isDigit(l.src[l.off]) {
			l.off++
		}
		text := l.src[start:l.off]
		kind := IntLit
		if l.peek() == 'L' || l.peek() == 'l' {
			kind = LongLit
			l.off++
		}
		// Parse as unsigned so that e.g. the printer output for
		// -9223372036854775808 ("- 9223372036854775808") round-trips:
		// the magnitude alone overflows int64, so accept up to 2^63 and
		// wrap, matching how Java accepts Integer.MIN_VALUE spellings.
		u, err := strconv.ParseUint(text, 10, 64)
		if err != nil {
			return Token{}, l.errorf(start, "bad integer literal %q", text)
		}
		v := int64(u)
		if kind == IntLit {
			if u > 1<<31 {
				return Token{}, l.errorf(start, "int literal %q out of range", text)
			}
			v = int64(int32(u))
		}
		return Token{Kind: kind, Pos: pos, Int: v}, nil
	}

	// Operators and punctuation.
	two := func(k Kind) (Token, error) { l.off += 2; return Token{Kind: k, Pos: pos}, nil }
	one := func(k Kind) (Token, error) { l.off++; return Token{Kind: k, Pos: pos}, nil }

	switch c {
	case '{':
		return one(LBrace)
	case '}':
		return one(RBrace)
	case '(':
		return one(LParen)
	case ')':
		return one(RParen)
	case '[':
		return one(LBracket)
	case ']':
		return one(RBracket)
	case ';':
		return one(Semi)
	case ',':
		return one(Comma)
	case ':':
		return one(Colon)
	case '?':
		return one(Question)
	case '.':
		return one(Dot)
	case '~':
		return one(Tilde)
	case '+':
		switch l.peekAt(1) {
		case '+':
			return two(PlusPlus)
		case '=':
			return two(PlusAssign)
		}
		return one(Plus)
	case '-':
		switch l.peekAt(1) {
		case '-':
			return two(MinusMinus)
		case '=':
			return two(MinusAssign)
		}
		return one(Minus)
	case '*':
		if l.peekAt(1) == '=' {
			return two(StarAssign)
		}
		return one(Star)
	case '/':
		if l.peekAt(1) == '=' {
			return two(SlashAssign)
		}
		return one(Slash)
	case '%':
		if l.peekAt(1) == '=' {
			return two(PercentAssign)
		}
		return one(Percent)
	case '&':
		switch l.peekAt(1) {
		case '&':
			return two(AndAnd)
		case '=':
			return two(AmpAssign)
		}
		return one(Amp)
	case '|':
		switch l.peekAt(1) {
		case '|':
			return two(OrOr)
		case '=':
			return two(PipeAssign)
		}
		return one(Pipe)
	case '^':
		if l.peekAt(1) == '=' {
			return two(CaretAssign)
		}
		return one(Caret)
	case '!':
		if l.peekAt(1) == '=' {
			return two(NotEq)
		}
		return one(Bang)
	case '=':
		if l.peekAt(1) == '=' {
			return two(EqEq)
		}
		return one(Assign)
	case '<':
		switch l.peekAt(1) {
		case '=':
			return two(Le)
		case '<':
			if l.peekAt(2) == '=' {
				l.off += 3
				return Token{Kind: ShlAssign, Pos: pos}, nil
			}
			return two(Shl)
		}
		return one(Lt)
	case '>':
		switch l.peekAt(1) {
		case '=':
			return two(Ge)
		case '>':
			if l.peekAt(2) == '>' {
				if l.peekAt(3) == '=' {
					l.off += 4
					return Token{Kind: UshrAssign, Pos: pos}, nil
				}
				l.off += 3
				return Token{Kind: Ushr, Pos: pos}, nil
			}
			if l.peekAt(2) == '=' {
				l.off += 3
				return Token{Kind: ShrAssign, Pos: pos}, nil
			}
			return two(Shr)
		}
		return one(Gt)
	}
	return Token{}, l.errorf(l.off, "unexpected character %q", c)
}
