package lexer

import "testing"

func kinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	var ks []Kind
	for _, tok := range toks {
		ks = append(ks, tok.Kind)
	}
	return ks
}

func TestKeywordsAndIdents(t *testing.T) {
	got := kinds(t, "class Foo int x boolean b1 longVal void")
	want := []Kind{KwClass, Ident, KwInt, Ident, KwBoolean, Ident, Ident, KwVoid, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	tests := []struct {
		src  string
		want []Kind
	}{
		{"+ - * / %", []Kind{Plus, Minus, Star, Slash, Percent, EOF}},
		{"<< >> >>>", []Kind{Shl, Shr, Ushr, EOF}},
		{"<<= >>= >>>=", []Kind{ShlAssign, ShrAssign, UshrAssign, EOF}},
		{"< <= > >= == !=", []Kind{Lt, Le, Gt, Ge, EqEq, NotEq, EOF}},
		{"&& || & | ^ ~ !", []Kind{AndAnd, OrOr, Amp, Pipe, Caret, Tilde, Bang, EOF}},
		{"++ -- += -=", []Kind{PlusPlus, MinusMinus, PlusAssign, MinusAssign, EOF}},
		{"*= /= %= &= |= ^=", []Kind{StarAssign, SlashAssign, PercentAssign, AmpAssign, PipeAssign, CaretAssign, EOF}},
		{"a.length", []Kind{Ident, Dot, KwLength, EOF}},
		{"x?y:z", []Kind{Ident, Question, Ident, Colon, Ident, EOF}},
	}
	for _, tt := range tests {
		got := kinds(t, tt.src)
		if len(got) != len(tt.want) {
			t.Fatalf("%q: got %v want %v", tt.src, got, tt.want)
		}
		for i := range tt.want {
			if got[i] != tt.want[i] {
				t.Errorf("%q token %d: got %v want %v", tt.src, i, got[i], tt.want[i])
			}
		}
	}
}

func TestIntLiterals(t *testing.T) {
	toks, err := Tokenize("0 42 2147483647 2147483648 9L 9223372036854775807L")
	if err != nil {
		t.Fatal(err)
	}
	wantKind := []Kind{IntLit, IntLit, IntLit, IntLit, LongLit, LongLit, EOF}
	wantVal := []int64{0, 42, 2147483647, -2147483648, 9, 9223372036854775807}
	for i, w := range wantKind {
		if toks[i].Kind != w {
			t.Errorf("token %d: kind %v want %v", i, toks[i].Kind, w)
		}
		if w != EOF && toks[i].Int != wantVal[i] {
			t.Errorf("token %d: value %d want %d", i, toks[i].Int, wantVal[i])
		}
	}
}

func TestIntLiteralOverflow(t *testing.T) {
	if _, err := Tokenize("2147483649"); err == nil {
		t.Error("expected overflow error for 2147483649")
	}
	if _, err := Tokenize("99999999999999999999"); err == nil {
		t.Error("expected overflow error for huge literal")
	}
}

func TestComments(t *testing.T) {
	got := kinds(t, "a // line comment\n b /* block\ncomment */ c")
	want := []Kind{Ident, Ident, Ident, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestUnterminatedComment(t *testing.T) {
	if _, err := Tokenize("a /* never ends"); err == nil {
		t.Error("expected error for unterminated comment")
	}
}

func TestBadCharacter(t *testing.T) {
	if _, err := Tokenize("a @ b"); err == nil {
		t.Error("expected error for '@'")
	}
}

func TestLinePositions(t *testing.T) {
	src := "a\nbb\nccc"
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	wantLines := []int{1, 2, 3}
	for i, want := range wantLines {
		if got := Line(src, toks[i].Pos); got != want {
			t.Errorf("token %d: line %d want %d", i, got, want)
		}
	}
}
