// Package parser parses MJ source into an ast.Program. The grammar is
// a small Java subset; see DESIGN.md for a summary.
package parser

import (
	"fmt"

	"artemis/internal/lang/ast"
	"artemis/internal/lang/lexer"
)

// Error is a syntax error with position information.
type Error struct {
	Pos  ast.Pos
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

// Parse parses a full MJ program.
func Parse(src string) (*ast.Program, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	src  string
	toks []lexer.Token
	i    int
}

func (p *parser) cur() lexer.Token { return p.toks[p.i] }
func (p *parser) peek() lexer.Token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() lexer.Token {
	t := p.toks[p.i]
	if t.Kind != lexer.EOF {
		p.i++
	}
	return t
}

func (p *parser) at(k lexer.Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k lexer.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k lexer.Kind) (lexer.Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	return lexer.Token{}, p.errorf("expected %s, found %s", k, p.cur().Kind)
}

func (p *parser) errorf(format string, args ...any) error {
	pos := p.cur().Pos
	return &Error{Pos: pos, Line: lexer.Line(p.src, pos), Msg: fmt.Sprintf(format, args...)}
}

// isTypeStart reports whether the current token begins a type.
func (p *parser) isTypeStart() bool {
	switch p.cur().Kind {
	case lexer.KwInt, lexer.KwLong, lexer.KwBoolean:
		return true
	}
	return false
}

// typ parses "int", "long", "boolean", optionally suffixed by "[]".
func (p *parser) typ() (ast.Type, error) {
	var base ast.Kind
	switch p.cur().Kind {
	case lexer.KwInt:
		base = ast.KindInt
	case lexer.KwLong:
		base = ast.KindLong
	case lexer.KwBoolean:
		base = ast.KindBoolean
	default:
		return ast.TypeInvalid, p.errorf("expected type, found %s", p.cur().Kind)
	}
	p.next()
	if p.at(lexer.LBracket) && p.peek().Kind == lexer.RBracket {
		p.next()
		p.next()
		return ast.ArrayOf(base), nil
	}
	return ast.Type{Kind: base}, nil
}

func (p *parser) program() (*ast.Program, error) {
	tok, err := p.expect(lexer.KwClass)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.LBrace); err != nil {
		return nil, err
	}
	cls := &ast.Class{Pos: tok.Pos, Name: name.Text}
	for !p.at(lexer.RBrace) {
		if p.at(lexer.EOF) {
			return nil, p.errorf("unexpected end of file in class body")
		}
		if err := p.member(cls); err != nil {
			return nil, err
		}
	}
	p.next() // RBrace
	if !p.at(lexer.EOF) {
		return nil, p.errorf("unexpected tokens after class body")
	}
	return &ast.Program{Class: cls}, nil
}

// member parses one field or method.
func (p *parser) member(cls *ast.Class) error {
	start := p.cur().Pos
	var ret ast.Type
	if p.accept(lexer.KwVoid) {
		ret = ast.TypeVoid
	} else {
		t, err := p.typ()
		if err != nil {
			return err
		}
		ret = t
	}
	name, err := p.expect(lexer.Ident)
	if err != nil {
		return err
	}
	if p.at(lexer.LParen) {
		m, err := p.methodRest(start, ret, name.Text)
		if err != nil {
			return err
		}
		cls.Methods = append(cls.Methods, m)
		return nil
	}
	// Field.
	if ret.Kind == ast.KindVoid {
		return p.errorf("field %s cannot have type void", name.Text)
	}
	f := &ast.Field{Pos: start, Type: ret, Name: name.Text}
	if p.accept(lexer.Assign) {
		init, err := p.expr()
		if err != nil {
			return err
		}
		f.Init = init
	}
	if _, err := p.expect(lexer.Semi); err != nil {
		return err
	}
	cls.Fields = append(cls.Fields, f)
	return nil
}

func (p *parser) methodRest(pos ast.Pos, ret ast.Type, name string) (*ast.Method, error) {
	p.next() // LParen
	m := &ast.Method{Pos: pos, Ret: ret, Name: name}
	for !p.at(lexer.RParen) {
		if len(m.Params) > 0 {
			if _, err := p.expect(lexer.Comma); err != nil {
				return nil, err
			}
		}
		ppos := p.cur().Pos
		t, err := p.typ()
		if err != nil {
			return nil, err
		}
		id, err := p.expect(lexer.Ident)
		if err != nil {
			return nil, err
		}
		m.Params = append(m.Params, &ast.Param{Pos: ppos, Type: t, Name: id.Text})
	}
	p.next() // RParen
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	m.Body = body
	return m, nil
}

func (p *parser) block() (*ast.Block, error) {
	tok, err := p.expect(lexer.LBrace)
	if err != nil {
		return nil, err
	}
	b := &ast.Block{Pos: tok.Pos}
	for !p.at(lexer.RBrace) {
		if p.at(lexer.EOF) {
			return nil, p.errorf("unexpected end of file in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next()
	return b, nil
}

func (p *parser) stmt() (ast.Stmt, error) {
	tok := p.cur()
	switch tok.Kind {
	case lexer.LBrace:
		return p.block()
	case lexer.KwIf:
		return p.ifStmt()
	case lexer.KwFor:
		return p.forStmt()
	case lexer.KwWhile:
		return p.whileStmt()
	case lexer.KwSwitch:
		return p.switchStmt()
	case lexer.KwBreak:
		p.next()
		if _, err := p.expect(lexer.Semi); err != nil {
			return nil, err
		}
		return &ast.BreakStmt{Pos: tok.Pos}, nil
	case lexer.KwContinue:
		p.next()
		if _, err := p.expect(lexer.Semi); err != nil {
			return nil, err
		}
		return &ast.ContinueStmt{Pos: tok.Pos}, nil
	case lexer.KwReturn:
		p.next()
		s := &ast.ReturnStmt{Pos: tok.Pos}
		if !p.at(lexer.Semi) {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Value = v
		}
		if _, err := p.expect(lexer.Semi); err != nil {
			return nil, err
		}
		return s, nil
	case lexer.KwPrint:
		p.next()
		if _, err := p.expect(lexer.LParen); err != nil {
			return nil, err
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.Semi); err != nil {
			return nil, err
		}
		return &ast.PrintStmt{Pos: tok.Pos, X: x}, nil
	}
	if p.isTypeStart() {
		d, err := p.declNoSemi()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.Semi); err != nil {
			return nil, err
		}
		return d, nil
	}
	// Expression or assignment statement.
	s, err := p.simpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.Semi); err != nil {
		return nil, err
	}
	return s, nil
}

// declNoSemi parses "type name [= expr]" without the trailing ';'.
func (p *parser) declNoSemi() (*ast.DeclStmt, error) {
	pos := p.cur().Pos
	t, err := p.typ()
	if err != nil {
		return nil, err
	}
	id, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	d := &ast.DeclStmt{Pos: pos, Type: t, Name: id.Text}
	if p.accept(lexer.Assign) {
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	return d, nil
}

var assignOps = map[lexer.Kind]ast.AssignOp{
	lexer.Assign:        ast.AsnSet,
	lexer.PlusAssign:    ast.AsnAdd,
	lexer.MinusAssign:   ast.AsnSub,
	lexer.StarAssign:    ast.AsnMul,
	lexer.SlashAssign:   ast.AsnDiv,
	lexer.PercentAssign: ast.AsnRem,
	lexer.AmpAssign:     ast.AsnAnd,
	lexer.PipeAssign:    ast.AsnOr,
	lexer.CaretAssign:   ast.AsnXor,
	lexer.ShlAssign:     ast.AsnShl,
	lexer.ShrAssign:     ast.AsnShr,
	lexer.UshrAssign:    ast.AsnUshr,
}

// simpleStmt parses an assignment, ++/--, or call expression statement
// (without the trailing ';'). Used in statement position and for-loop
// clauses.
func (p *parser) simpleStmt() (ast.Stmt, error) {
	pos := p.cur().Pos
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if op, ok := assignOps[p.cur().Kind]; ok {
		if !isLValue(x) {
			return nil, p.errorf("cannot assign to %s", ast.PrintExpr(x))
		}
		p.next()
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ast.AssignStmt{Pos: pos, Target: x, Op: op, Value: v}, nil
	}
	if p.at(lexer.PlusPlus) || p.at(lexer.MinusMinus) {
		if !isLValue(x) {
			return nil, p.errorf("cannot increment %s", ast.PrintExpr(x))
		}
		op := ast.AsnAdd
		if p.cur().Kind == lexer.MinusMinus {
			op = ast.AsnSub
		}
		p.next()
		one := &ast.IntLit{Pos: pos, Value: 1}
		return &ast.AssignStmt{Pos: pos, Target: x, Op: op, Value: one}, nil
	}
	if _, ok := x.(*ast.CallExpr); !ok {
		return nil, p.errorf("expression statement must be a call")
	}
	return &ast.ExprStmt{Pos: pos, X: x}, nil
}

func isLValue(e ast.Expr) bool {
	switch e.(type) {
	case *ast.Ident, *ast.IndexExpr:
		return true
	}
	return false
}

func (p *parser) ifStmt() (ast.Stmt, error) {
	tok := p.next() // if
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	s := &ast.IfStmt{Pos: tok.Pos, Cond: cond, Then: then}
	if p.accept(lexer.KwElse) {
		if p.at(lexer.KwIf) {
			els, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			s.Else = els
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			s.Else = els
		}
	}
	return s, nil
}

func (p *parser) forStmt() (ast.Stmt, error) {
	tok := p.next() // for
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	s := &ast.ForStmt{Pos: tok.Pos}
	if !p.at(lexer.Semi) {
		if p.isTypeStart() {
			d, err := p.declNoSemi()
			if err != nil {
				return nil, err
			}
			s.Init = d
		} else {
			init, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			s.Init = init
		}
	}
	if _, err := p.expect(lexer.Semi); err != nil {
		return nil, err
	}
	if !p.at(lexer.Semi) {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if _, err := p.expect(lexer.Semi); err != nil {
		return nil, err
	}
	if !p.at(lexer.RParen) {
		post, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, ok := post.(*ast.AssignStmt); !ok {
			return nil, p.errorf("for-post must be an assignment or ++/--")
		}
		s.Post = post
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return nil, err
	}
	// Allow "for (...);" — an empty body, as in Figure 2 line 9.
	if p.accept(lexer.Semi) {
		s.Body = &ast.Block{Pos: tok.Pos}
		return s, nil
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

func (p *parser) whileStmt() (ast.Stmt, error) {
	tok := p.next() // while
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &ast.WhileStmt{Pos: tok.Pos, Cond: cond, Body: body}, nil
}

func (p *parser) switchStmt() (ast.Stmt, error) {
	tok := p.next() // switch
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	tag, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.LBrace); err != nil {
		return nil, err
	}
	s := &ast.SwitchStmt{Pos: tok.Pos, Tag: tag}
	sawDefault := false
	for !p.at(lexer.RBrace) {
		cpos := p.cur().Pos
		// A label run is a sequence of "case N:" and "default:" labels
		// before a body. Consecutive case labels merge into one arm;
		// a default label forms its own arm. All arms of the run but
		// the last are empty and fall through, preserving Java
		// semantics for shapes like "case 1: default: body".
		var groups []*ast.SwitchCase
		for p.at(lexer.KwCase) || p.at(lexer.KwDefault) {
			if p.accept(lexer.KwDefault) {
				if sawDefault {
					return nil, p.errorf("duplicate default case")
				}
				sawDefault = true
				groups = append(groups, &ast.SwitchCase{Pos: cpos})
			} else {
				p.next() // case
				neg := p.accept(lexer.Minus)
				lit, err := p.expect(lexer.IntLit)
				if err != nil {
					return nil, err
				}
				v := lit.Int
				if neg {
					v = int64(int32(-v))
				}
				last := len(groups) - 1
				if last >= 0 && groups[last].Values != nil {
					groups[last].Values = append(groups[last].Values, v)
				} else {
					groups = append(groups, &ast.SwitchCase{Pos: cpos, Values: []int64{v}})
				}
			}
			if _, err := p.expect(lexer.Colon); err != nil {
				return nil, err
			}
		}
		if len(groups) == 0 {
			return nil, p.errorf("expected 'case' or 'default', found %s", p.cur().Kind)
		}
		var body []ast.Stmt
		for !p.at(lexer.KwCase) && !p.at(lexer.KwDefault) && !p.at(lexer.RBrace) {
			bs, err := p.stmt()
			if err != nil {
				return nil, err
			}
			body = append(body, bs)
		}
		groups[len(groups)-1].Body = body
		s.Cases = append(s.Cases, groups...)
	}
	p.next() // RBrace
	return s, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)
// ---------------------------------------------------------------------------

func (p *parser) expr() (ast.Expr, error) { return p.ternary() }

func (p *parser) ternary() (ast.Expr, error) {
	cond, err := p.binary(0)
	if err != nil {
		return nil, err
	}
	if !p.at(lexer.Question) {
		return cond, nil
	}
	pos := p.next().Pos
	then, err := p.ternary()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.Colon); err != nil {
		return nil, err
	}
	els, err := p.ternary()
	if err != nil {
		return nil, err
	}
	return &ast.CondExpr{Pos: pos, Cond: cond, Then: then, Else: els}, nil
}

type binLevel struct {
	toks map[lexer.Kind]ast.BinOp
}

// binLevels lists binary operator precedence levels from lowest to
// highest, mirroring Java.
var binLevels = []binLevel{
	{map[lexer.Kind]ast.BinOp{lexer.OrOr: ast.OpLOr}},
	{map[lexer.Kind]ast.BinOp{lexer.AndAnd: ast.OpLAnd}},
	{map[lexer.Kind]ast.BinOp{lexer.Pipe: ast.OpOr}},
	{map[lexer.Kind]ast.BinOp{lexer.Caret: ast.OpXor}},
	{map[lexer.Kind]ast.BinOp{lexer.Amp: ast.OpAnd}},
	{map[lexer.Kind]ast.BinOp{lexer.EqEq: ast.OpEq, lexer.NotEq: ast.OpNe}},
	{map[lexer.Kind]ast.BinOp{lexer.Lt: ast.OpLt, lexer.Le: ast.OpLe, lexer.Gt: ast.OpGt, lexer.Ge: ast.OpGe}},
	{map[lexer.Kind]ast.BinOp{lexer.Shl: ast.OpShl, lexer.Shr: ast.OpShr, lexer.Ushr: ast.OpUshr}},
	{map[lexer.Kind]ast.BinOp{lexer.Plus: ast.OpAdd, lexer.Minus: ast.OpSub}},
	{map[lexer.Kind]ast.BinOp{lexer.Star: ast.OpMul, lexer.Slash: ast.OpDiv, lexer.Percent: ast.OpRem}},
}

func (p *parser) binary(level int) (ast.Expr, error) {
	if level >= len(binLevels) {
		return p.unary()
	}
	x, err := p.binary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		op, ok := binLevels[level].toks[p.cur().Kind]
		if !ok {
			return x, nil
		}
		pos := p.next().Pos
		y, err := p.binary(level + 1)
		if err != nil {
			return nil, err
		}
		x = &ast.BinaryExpr{Pos: pos, Op: op, X: x, Y: y}
	}
}

func (p *parser) unary() (ast.Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case lexer.Minus:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Pos: tok.Pos, Op: ast.OpNeg, X: x}, nil
	case lexer.Bang:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Pos: tok.Pos, Op: ast.OpNot, X: x}, nil
	case lexer.Tilde:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Pos: tok.Pos, Op: ast.OpBitNot, X: x}, nil
	case lexer.LParen:
		// Could be a cast "(int)x" / "(long)x" or a parenthesized
		// expression.
		if k := p.peek().Kind; k == lexer.KwInt || k == lexer.KwLong {
			// Only a cast if followed by ')': "(int)".
			if p.i+2 < len(p.toks) && p.toks[p.i+2].Kind == lexer.RParen {
				p.next() // (
				to := ast.TypeInt
				if k == lexer.KwLong {
					to = ast.TypeLong
				}
				p.next() // type
				p.next() // )
				x, err := p.unary()
				if err != nil {
					return nil, err
				}
				return &ast.CastExpr{Pos: tok.Pos, To: to, X: x}, nil
			}
		}
	}
	return p.postfix()
}

func (p *parser) postfix() (ast.Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case lexer.LBracket:
			pos := p.next().Pos
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(lexer.RBracket); err != nil {
				return nil, err
			}
			x = &ast.IndexExpr{Pos: pos, Arr: x, Index: idx}
		case lexer.Dot:
			pos := p.next().Pos
			if _, err := p.expect(lexer.KwLength); err != nil {
				return nil, err
			}
			x = &ast.LenExpr{Pos: pos, Arr: x}
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (ast.Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case lexer.IntLit:
		p.next()
		return &ast.IntLit{Pos: tok.Pos, Value: tok.Int}, nil
	case lexer.LongLit:
		p.next()
		return &ast.IntLit{Pos: tok.Pos, Value: tok.Int, IsLong: true}, nil
	case lexer.KwTrue:
		p.next()
		return &ast.BoolLit{Pos: tok.Pos, Value: true}, nil
	case lexer.KwFalse:
		p.next()
		return &ast.BoolLit{Pos: tok.Pos, Value: false}, nil
	case lexer.Ident:
		p.next()
		if p.at(lexer.LParen) {
			p.next()
			call := &ast.CallExpr{Pos: tok.Pos, Name: tok.Text}
			for !p.at(lexer.RParen) {
				if len(call.Args) > 0 {
					if _, err := p.expect(lexer.Comma); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			p.next()
			return call, nil
		}
		return &ast.Ident{Pos: tok.Pos, Name: tok.Text}, nil
	case lexer.KwNew:
		p.next()
		var elem ast.Kind
		switch p.cur().Kind {
		case lexer.KwInt:
			elem = ast.KindInt
		case lexer.KwLong:
			elem = ast.KindLong
		case lexer.KwBoolean:
			elem = ast.KindBoolean
		default:
			return nil, p.errorf("expected element type after 'new'")
		}
		p.next()
		if _, err := p.expect(lexer.LBracket); err != nil {
			return nil, err
		}
		if p.accept(lexer.RBracket) {
			// new int[]{...}
			if _, err := p.expect(lexer.LBrace); err != nil {
				return nil, err
			}
			e := &ast.NewArrayExpr{Pos: tok.Pos, Elem: elem, Elems: []ast.Expr{}}
			for !p.at(lexer.RBrace) {
				if len(e.Elems) > 0 {
					if _, err := p.expect(lexer.Comma); err != nil {
						return nil, err
					}
				}
				el, err := p.expr()
				if err != nil {
					return nil, err
				}
				e.Elems = append(e.Elems, el)
			}
			p.next()
			return e, nil
		}
		n, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RBracket); err != nil {
			return nil, err
		}
		return &ast.NewArrayExpr{Pos: tok.Pos, Elem: elem, Len: n}, nil
	case lexer.LParen:
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errorf("unexpected %s in expression", tok.Kind)
}
