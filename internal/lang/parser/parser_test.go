package parser

import (
	"strings"
	"testing"

	"artemis/internal/lang/ast"
)

const sample = `class T {
    boolean z = false;
    int l = 0;
    int[] k = new int[]{3, 1, 4, 1, 5};

    void g() {
        for (int i = 0; i < k.length; i++) {
            int m = k[i];
            switch ((m >>> 1) % 10 + 3) {
            case 3:
                for (int w = -2967; w < 4342; w += 4);
                l += 2;
            case 4:
                break;
            case 5:
                k[1] = 9;
            default:
                l -= 1;
            }
        }
    }

    int o(int a, long b) {
        if (z) {
            return a;
        }
        return (int)(b % 7L) + a;
    }

    void main() {
        long acc = 0L;
        int q = 2;
        while (q < 5) {
            acc += o(q, 9999L);
            q++;
        }
        g();
        print(acc);
        print(l);
    }
}
`

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func TestParseSample(t *testing.T) {
	p := mustParse(t, sample)
	c := p.Class
	if c.Name != "T" {
		t.Errorf("class name %q", c.Name)
	}
	if len(c.Fields) != 3 {
		t.Errorf("fields = %d, want 3", len(c.Fields))
	}
	if len(c.Methods) != 3 {
		t.Errorf("methods = %d, want 3", len(c.Methods))
	}
	o := c.Method("o")
	if o == nil || len(o.Params) != 2 || o.Ret != ast.TypeInt {
		t.Fatalf("method o parsed wrong: %+v", o)
	}
	if o.Params[1].Type != ast.TypeLong {
		t.Errorf("o param 1 type %v", o.Params[1].Type)
	}
}

// TestPrintRoundTrip checks parse -> print -> parse -> print is a fixed
// point.
func TestPrintRoundTrip(t *testing.T) {
	p1 := mustParse(t, sample)
	s1 := ast.Print(p1)
	p2, err := Parse(s1)
	if err != nil {
		t.Fatalf("reparse failed: %v\nsource:\n%s", err, s1)
	}
	s2 := ast.Print(p2)
	if s1 != s2 {
		t.Errorf("print not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", s1, s2)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := mustParse(t, sample)
	cl := ast.CloneProgram(p)
	if ast.Print(p) != ast.Print(cl) {
		t.Fatal("clone prints differently")
	}
	// Mutate the clone; original must not change.
	cl.Class.Methods[0].Body.Stmts = nil
	if ast.Print(p) == ast.Print(cl) {
		t.Fatal("mutating clone affected original")
	}
}

func TestEmptyForBody(t *testing.T) {
	p := mustParse(t, `class A { void main() { for (int w = 0; w < 10; w += 4); } }`)
	f := p.Class.Methods[0].Body.Stmts[0].(*ast.ForStmt)
	if len(f.Body.Stmts) != 0 {
		t.Errorf("empty for body has %d stmts", len(f.Body.Stmts))
	}
}

func TestPrecedence(t *testing.T) {
	tests := []struct{ src, want string }{
		{"1 + 2 * 3", "1 + 2 * 3"},
		{"(1 + 2) * 3", "(1 + 2) * 3"},
		{"1 << 2 + 3", "1 << 2 + 3"},
		{"a & b | c ^ d", "a & b | c ^ d"},
		{"-a * b", "-a * b"},
		{"-(a * b)", "-(a * b)"},
		{"a - b - c", "a - b - c"},
		{"a - (b - c)", "a - (b - c)"},
		{"a == b != c", "a == b != c"},
		{"x ? y : (z ? w : v)", "x ? y : z ? w : v"}, // ?: is right-associative, parens redundant
	}
	for _, tt := range tests {
		src := "class A { int f(int a, int b, int c, int d, boolean x, int y, int z, int w, int v) { return " + tt.src + "; } void main() { } }"
		p, err := Parse(src)
		if err != nil {
			t.Errorf("%q: %v", tt.src, err)
			continue
		}
		ret := p.Class.Methods[0].Body.Stmts[0].(*ast.ReturnStmt)
		if got := ast.PrintExpr(ret.Value); got != tt.want {
			t.Errorf("%q printed as %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestTernaryRightAssociative(t *testing.T) {
	src := "class A { int f(boolean x, boolean z) { return x ? 1 : z ? 2 : 3; } void main() { } }"
	p := mustParse(t, src)
	ret := p.Class.Methods[0].Body.Stmts[0].(*ast.ReturnStmt)
	ce := ret.Value.(*ast.CondExpr)
	if _, ok := ce.Else.(*ast.CondExpr); !ok {
		t.Error("ternary should nest in else branch")
	}
}

func TestCastVsParen(t *testing.T) {
	src := `class A { void main() { long l = 5L; int i = (int)l; int j = (i) + 1; long k = (long)i; print(j + k); } }`
	mustParse(t, src)
}

func TestIncDecDesugar(t *testing.T) {
	p := mustParse(t, `class A { void main() { int i = 0; i++; i--; } }`)
	stmts := p.Class.Methods[0].Body.Stmts
	inc := stmts[1].(*ast.AssignStmt)
	if inc.Op != ast.AsnAdd {
		t.Errorf("i++ desugared to %v", inc.Op)
	}
	dec := stmts[2].(*ast.AssignStmt)
	if dec.Op != ast.AsnSub {
		t.Errorf("i-- desugared to %v", dec.Op)
	}
}

func TestSwitchNegativeCase(t *testing.T) {
	p := mustParse(t, `class A { void main() { switch (1) { case -3: break; default: break; } } }`)
	sw := p.Class.Methods[0].Body.Stmts[0].(*ast.SwitchStmt)
	if sw.Cases[0].Values[0] != -3 {
		t.Errorf("negative case label = %d", sw.Cases[0].Values[0])
	}
}

func TestStackedCaseLabels(t *testing.T) {
	p := mustParse(t, `class A { void main() { switch (1) { case 1: case 2: case 3: break; } } }`)
	sw := p.Class.Methods[0].Body.Stmts[0].(*ast.SwitchStmt)
	if len(sw.Cases) != 1 || len(sw.Cases[0].Values) != 3 {
		t.Errorf("stacked labels parsed as %d cases", len(sw.Cases))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"class",
		"class A {",
		"class A { int }",
		"class A { void main() { int x = ; } }",
		"class A { void main() { 1 + 2; } }",   // expr stmt must be call
		"class A { void main() { x = 1 } }",    // missing semi
		"class A { void main() { if x { } } }", // missing parens
		"class A { void main() { switch (1) { foo; } } }", // stmt before case
		"class A { void main() { for (1+2; true; ) { } } }",
		"class A { void f() { } void f() { } void main() { } } extra",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestDeeplyNested(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("class A { void main() { int x = 0; ")
	const depth = 40
	for i := 0; i < depth; i++ {
		sb.WriteString("if (x == 0) { ")
	}
	sb.WriteString("x = 1; ")
	for i := 0; i < depth; i++ {
		sb.WriteString("} ")
	}
	sb.WriteString("print(x); } }")
	mustParse(t, sb.String())
}
