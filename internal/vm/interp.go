package vm

import (
	"fmt"

	"artemis/internal/bytecode"
	"artemis/internal/lang/ast"
)

// interpLoop interprets method st.Index starting at pc with the given
// frame state (locals and operand stack — non-zero pc and a non-nil
// stack occur when resuming after a deoptimization). It updates
// profiling data when profiled is true, drives back-edge counters, and
// performs OSR when the policy asks for it.
//
// Dispatch runs on the method's pre-decoded instruction stream
// (bytecode.DInstr): width and condition variants are fused into the
// opcode, callee arity/void-ness and loop ids are pre-resolved, and the
// operand stack is a fixed MaxStack-capacity window indexed by sp
// (the verifier guarantees depth never exceeds MaxStack). The decoded
// stream maps 1:1 onto Method.Code, so pc values — deopt resume
// points, profile keys — mean the same thing they always did.
func (vm *VM) interpLoop(st *MethodState, pc int, locals, stack []int64, tv *TempVector, profiled bool) (int64, *Unwind) {
	m := vm.prog.Methods[st.Index]
	code := m.Decoded
	sp := len(stack)
	var mark arenaMark
	ownStack := stack == nil
	if ownStack {
		mark = vm.arena.mark()
		stack = vm.arena.alloc(m.MaxStack)
	} else if cap(stack) < m.MaxStack {
		// Deopt resume handed us a shallow backing array; regrow once.
		ns := make([]int64, m.MaxStack)
		copy(ns, stack)
		stack = ns
	}
	stack = stack[:cap(stack)]

	// Register this frame as a GC root set. Only stack[:sp] is scanned,
	// and sp is synced into the frame before every operation that can
	// trigger a collection, so the arena's non-zeroed memory above sp is
	// never observed.
	fi := len(vm.frames)
	vm.frames = append(vm.frames, interpFrame{locals: locals, stack: stack, sp: sp})
	defer func() {
		vm.frames = vm.frames[:fi]
		if ownStack {
			vm.arena.release(mark)
		}
	}()

	for {
		vm.steps++
		if vm.steps > vm.stepLimit {
			return 0, vm.timeoutUnwind()
		}
		in := code[pc]
		switch in.Op {
		case bytecode.DNop:
			pc++
		case bytecode.DConst:
			stack[sp] = in.A
			sp++
			pc++
		case bytecode.DLoad:
			stack[sp] = locals[in.A]
			sp++
			pc++
		case bytecode.DStore:
			sp--
			locals[in.A] = stack[sp]
			pc++
		case bytecode.DPop:
			sp--
			pc++
		case bytecode.DDup:
			stack[sp] = stack[sp-1]
			sp++
			pc++
		case bytecode.DDup2:
			stack[sp] = stack[sp-2]
			stack[sp+1] = stack[sp-1]
			sp += 2
			pc++
		case bytecode.DGetField:
			stack[sp] = vm.fields[in.A]
			sp++
			pc++
		case bytecode.DPutField:
			sp--
			vm.fields[in.A] = stack[sp]
			pc++
		case bytecode.DNewArr:
			sp--
			n := stack[sp]
			vm.frames[fi].sp = sp
			h, err := vm.NewArray(ast.Kind(in.Kind), int64(int32(n)))
			if err != nil {
				return 0, vm.throw(st, err)
			}
			stack[sp] = h
			sp++
			pc++
		case bytecode.DALoad:
			sp--
			v, err := vm.ArrayLoad(stack[sp-1], int64(int32(stack[sp])))
			if err != nil {
				return 0, vm.throw(st, err)
			}
			stack[sp-1] = v
			pc++
		case bytecode.DAStore:
			sp -= 3
			if err := vm.ArrayStore(stack[sp], int64(int32(stack[sp+1])), stack[sp+2]); err != nil {
				return 0, vm.throw(st, err)
			}
			pc++
		case bytecode.DArrLen:
			n, err := vm.ArrayLen(stack[sp-1])
			if err != nil {
				return 0, vm.throw(st, err)
			}
			stack[sp-1] = n
			pc++

		case bytecode.DAddL:
			sp--
			stack[sp-1] += stack[sp]
			pc++
		case bytecode.DAddI:
			sp--
			stack[sp-1] = int64(int32(stack[sp-1]) + int32(stack[sp]))
			pc++
		case bytecode.DSubL:
			sp--
			stack[sp-1] -= stack[sp]
			pc++
		case bytecode.DSubI:
			sp--
			stack[sp-1] = int64(int32(stack[sp-1]) - int32(stack[sp]))
			pc++
		case bytecode.DMulL:
			sp--
			stack[sp-1] *= stack[sp]
			pc++
		case bytecode.DMulI:
			sp--
			stack[sp-1] = int64(int32(stack[sp-1]) * int32(stack[sp]))
			pc++
		case bytecode.DDivL:
			sp--
			b := stack[sp]
			a := stack[sp-1]
			if b == 0 {
				return 0, vm.throw(st, &RuntimeError{Kind: TrapDivByZero, Msg: "/ by zero"})
			}
			if a == -1<<63 && b == -1 {
				stack[sp-1] = a // Java wraps; Go would panic
			} else {
				stack[sp-1] = a / b
			}
			pc++
		case bytecode.DDivI:
			sp--
			y := int32(stack[sp])
			x := int32(stack[sp-1])
			if y == 0 {
				return 0, vm.throw(st, &RuntimeError{Kind: TrapDivByZero, Msg: "/ by zero"})
			}
			if x == -1<<31 && y == -1 {
				stack[sp-1] = int64(x)
			} else {
				stack[sp-1] = int64(x / y)
			}
			pc++
		case bytecode.DRemL:
			sp--
			b := stack[sp]
			a := stack[sp-1]
			if b == 0 {
				return 0, vm.throw(st, &RuntimeError{Kind: TrapDivByZero, Msg: "/ by zero"})
			}
			if a == -1<<63 && b == -1 {
				stack[sp-1] = 0
			} else {
				stack[sp-1] = a % b
			}
			pc++
		case bytecode.DRemI:
			sp--
			y := int32(stack[sp])
			x := int32(stack[sp-1])
			if y == 0 {
				return 0, vm.throw(st, &RuntimeError{Kind: TrapDivByZero, Msg: "/ by zero"})
			}
			if x == -1<<31 && y == -1 {
				stack[sp-1] = 0
			} else {
				stack[sp-1] = int64(x % y)
			}
			pc++
		case bytecode.DAndL:
			sp--
			stack[sp-1] &= stack[sp]
			pc++
		case bytecode.DAndI:
			sp--
			stack[sp-1] = int64(int32(stack[sp-1]) & int32(stack[sp]))
			pc++
		case bytecode.DOrL:
			sp--
			stack[sp-1] |= stack[sp]
			pc++
		case bytecode.DOrI:
			sp--
			stack[sp-1] = int64(int32(stack[sp-1]) | int32(stack[sp]))
			pc++
		case bytecode.DXorL:
			sp--
			stack[sp-1] ^= stack[sp]
			pc++
		case bytecode.DXorI:
			sp--
			stack[sp-1] = int64(int32(stack[sp-1]) ^ int32(stack[sp]))
			pc++
		case bytecode.DShlL:
			sp--
			stack[sp-1] <<= uint64(stack[sp]) & 63
			pc++
		case bytecode.DShlI:
			sp--
			stack[sp-1] = int64(int32(stack[sp-1]) << (uint32(stack[sp]) & 31))
			pc++
		case bytecode.DShrL:
			sp--
			stack[sp-1] >>= uint64(stack[sp]) & 63
			pc++
		case bytecode.DShrI:
			sp--
			stack[sp-1] = int64(int32(stack[sp-1]) >> (uint32(stack[sp]) & 31))
			pc++
		case bytecode.DUshrL:
			sp--
			stack[sp-1] = int64(uint64(stack[sp-1]) >> (uint64(stack[sp]) & 63))
			pc++
		case bytecode.DUshrI:
			sp--
			stack[sp-1] = int64(int32(uint32(int32(stack[sp-1])) >> (uint32(stack[sp]) & 31)))
			pc++

		case bytecode.DNegL:
			stack[sp-1] = -stack[sp-1]
			pc++
		case bytecode.DNegI:
			stack[sp-1] = int64(int32(-stack[sp-1]))
			pc++
		case bytecode.DBitNotL:
			stack[sp-1] = ^stack[sp-1]
			pc++
		case bytecode.DBitNotI:
			stack[sp-1] = int64(int32(^stack[sp-1]))
			pc++
		case bytecode.DL2I:
			stack[sp-1] = int64(int32(stack[sp-1]))
			pc++

		case bytecode.DCmpEQ:
			sp--
			stack[sp-1] = b2i(stack[sp-1] == stack[sp])
			pc++
		case bytecode.DCmpNE:
			sp--
			stack[sp-1] = b2i(stack[sp-1] != stack[sp])
			pc++
		case bytecode.DCmpLT:
			sp--
			stack[sp-1] = b2i(stack[sp-1] < stack[sp])
			pc++
		case bytecode.DCmpLE:
			sp--
			stack[sp-1] = b2i(stack[sp-1] <= stack[sp])
			pc++
		case bytecode.DCmpGT:
			sp--
			stack[sp-1] = b2i(stack[sp-1] > stack[sp])
			pc++
		case bytecode.DCmpGE:
			sp--
			stack[sp-1] = b2i(stack[sp-1] >= stack[sp])
			pc++

		case bytecode.DGoto:
			pc = int(in.A)
		case bytecode.DIfTrue:
			sp--
			taken := stack[sp] != 0
			if profiled {
				st.Profile.branch(pc, taken)
			}
			if taken {
				pc = int(in.A)
			} else {
				pc++
			}
		case bytecode.DIfFalse:
			sp--
			taken := stack[sp] == 0
			if profiled {
				st.Profile.branch(pc, taken)
			}
			if taken {
				pc = int(in.A)
			} else {
				pc++
			}
		case bytecode.DIfCmpEQ:
			sp -= 2
			pc = vm.branchTo(st, pc, int(in.A), stack[sp] == stack[sp+1], profiled)
		case bytecode.DIfCmpNE:
			sp -= 2
			pc = vm.branchTo(st, pc, int(in.A), stack[sp] != stack[sp+1], profiled)
		case bytecode.DIfCmpLT:
			sp -= 2
			pc = vm.branchTo(st, pc, int(in.A), stack[sp] < stack[sp+1], profiled)
		case bytecode.DIfCmpLE:
			sp -= 2
			pc = vm.branchTo(st, pc, int(in.A), stack[sp] <= stack[sp+1], profiled)
		case bytecode.DIfCmpGT:
			sp -= 2
			pc = vm.branchTo(st, pc, int(in.A), stack[sp] > stack[sp+1], profiled)
		case bytecode.DIfCmpGE:
			sp -= 2
			pc = vm.branchTo(st, pc, int(in.A), stack[sp] >= stack[sp+1], profiled)

		case bytecode.DSwitch:
			sp--
			t := m.Switches[in.A].Lookup(int64(int32(stack[sp])))
			if profiled {
				st.Profile.switchHit(pc, t)
			}
			pc = t
		case bytecode.DLoopBack:
			if profiled {
				loopID := int(in.B)
				st.Counters.Backedge[loopID]++
				dec := vm.policy.OnBackEdge(st, loopID)
				if dec.Action != ActInterpret {
					var osrCode CompiledCode
					if dec.Action == ActCompile {
						var uw *Unwind
						osrCode, uw = vm.ensureOSR(st, loopID, dec.Tier)
						if uw != nil {
							return 0, uw
						}
					} else {
						// ActUseCompiled: enter the cached OSR entry
						// without a compile request (nil when the cached
						// compilation failed benignly: keep interpreting).
						osrCode = st.osrCode(loopID)
					}
					if osrCode != nil {
						vm.osrEntries++
						if tv != nil {
							tv.Temps = append(tv.Temps, osrCode.Tier())
						}
						vm.frames[fi].sp = sp
						res := osrCode.Run(vm, locals)
						switch res.Kind {
						case ExecReturn:
							return res.Value, nil
						case ExecUnwind:
							return 0, res.Unwind
						case ExecDeopt:
							return vm.handleDeopt(st, res.Deopt, tv)
						}
					}
				}
			}
			pc = int(in.A)
		case bytecode.DCall:
			n := int(in.B)
			sp -= n
			vm.frames[fi].sp = sp
			ret, uw := vm.CallMethod(int(in.A), stack[sp:sp+n])
			if uw != nil {
				return 0, uw
			}
			stack[sp] = ret
			sp++
			pc++
		case bytecode.DCallV:
			n := int(in.B)
			sp -= n
			vm.frames[fi].sp = sp
			if _, uw := vm.CallMethod(int(in.A), stack[sp:sp+n]); uw != nil {
				return 0, uw
			}
			pc++
		case bytecode.DRet:
			return 0, nil
		case bytecode.DRetV:
			return stack[sp-1], nil
		case bytecode.DPrint:
			sp--
			vm.Print(ast.Kind(in.Kind), stack[sp])
			pc++
		default:
			panic(fmt.Sprintf("vm: unknown decoded opcode %d at pc %d in %s", in.Op, pc, m.Name))
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// branchTo records a profiled two-way branch outcome and returns the
// next pc.
func (vm *VM) branchTo(st *MethodState, pc, target int, taken, profiled bool) int {
	if profiled {
		st.Profile.branch(pc, taken)
	}
	if taken {
		return target
	}
	return pc + 1
}

// throw decorates a program-level error with the method name so the
// observable message is informative yet deterministic across tiers.
func (vm *VM) throw(st *MethodState, err *RuntimeError) *Unwind {
	if err.Kind == trapTimeout {
		return vm.timeoutUnwind()
	}
	e := *err
	e.Msg = e.Msg + " (in " + st.Name + ")"
	return &Unwind{Err: &e}
}

// EvalBinary applies a binary arithmetic/bitwise bytecode operator with
// Java semantics: 32-bit wrapping when !wide, 64-bit when wide, masked
// shift counts, and ArithmeticException on division by zero. It is
// exported because the interpreter, the JIT constant folder, and the
// machine executor must share exactly one definition of arithmetic.
func EvalBinary(op bytecode.Op, wide bool, a, b int64) (int64, *RuntimeError) {
	if wide {
		switch op {
		case bytecode.OpAdd:
			return a + b, nil
		case bytecode.OpSub:
			return a - b, nil
		case bytecode.OpMul:
			return a * b, nil
		case bytecode.OpDiv:
			if b == 0 {
				return 0, &RuntimeError{Kind: TrapDivByZero, Msg: "/ by zero"}
			}
			if a == -1<<63 && b == -1 {
				return a, nil // Java wraps; Go would panic
			}
			return a / b, nil
		case bytecode.OpRem:
			if b == 0 {
				return 0, &RuntimeError{Kind: TrapDivByZero, Msg: "/ by zero"}
			}
			if a == -1<<63 && b == -1 {
				return 0, nil
			}
			return a % b, nil
		case bytecode.OpAnd:
			return a & b, nil
		case bytecode.OpOr:
			return a | b, nil
		case bytecode.OpXor:
			return a ^ b, nil
		case bytecode.OpShl:
			return a << (uint64(b) & 63), nil
		case bytecode.OpShr:
			return a >> (uint64(b) & 63), nil
		case bytecode.OpUshr:
			return int64(uint64(a) >> (uint64(b) & 63)), nil
		}
	} else {
		x, y := int32(a), int32(b)
		switch op {
		case bytecode.OpAdd:
			return int64(x + y), nil
		case bytecode.OpSub:
			return int64(x - y), nil
		case bytecode.OpMul:
			return int64(x * y), nil
		case bytecode.OpDiv:
			if y == 0 {
				return 0, &RuntimeError{Kind: TrapDivByZero, Msg: "/ by zero"}
			}
			if x == -1<<31 && y == -1 {
				return int64(x), nil
			}
			return int64(x / y), nil
		case bytecode.OpRem:
			if y == 0 {
				return 0, &RuntimeError{Kind: TrapDivByZero, Msg: "/ by zero"}
			}
			if x == -1<<31 && y == -1 {
				return 0, nil
			}
			return int64(x % y), nil
		case bytecode.OpAnd:
			return int64(x & y), nil
		case bytecode.OpOr:
			return int64(x | y), nil
		case bytecode.OpXor:
			return int64(x ^ y), nil
		case bytecode.OpShl:
			return int64(x << (uint32(y) & 31)), nil
		case bytecode.OpShr:
			return int64(x >> (uint32(y) & 31)), nil
		case bytecode.OpUshr:
			return int64(int32(uint32(x) >> (uint32(y) & 31))), nil
		}
	}
	panic(fmt.Sprintf("vm: EvalBinary of non-arithmetic op %v", op))
}
