package vm

import (
	"fmt"

	"artemis/internal/bytecode"
	"artemis/internal/lang/ast"
)

// interpLoop interprets method st.Index starting at pc with the given
// frame state (locals and operand stack — non-zero pc and stack occur
// when resuming after a deoptimization). It updates profiling data when
// profiled is true, drives back-edge counters, and performs OSR when
// the policy asks for it.
func (vm *VM) interpLoop(st *MethodState, pc int, locals, stack []int64, tv *TempVector, profiled bool) (int64, *Unwind) {
	m := vm.prog.Methods[st.Index]
	code := m.Code
	if stack == nil {
		stack = make([]int64, 0, m.MaxStack)
	}

	unregister := vm.RegisterRoots(func(yield func(int64)) {
		for _, v := range locals {
			yield(v)
		}
		for _, v := range stack {
			yield(v)
		}
	})
	defer unregister()

	pop := func() int64 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	push := func(v int64) { stack = append(stack, v) }

	for {
		vm.steps++
		if vm.steps > vm.stepLimit {
			return 0, vm.timeoutUnwind()
		}
		in := code[pc]
		switch in.Op {
		case bytecode.OpNop:
			pc++
		case bytecode.OpConst:
			push(in.A)
			pc++
		case bytecode.OpLoad:
			push(locals[in.A])
			pc++
		case bytecode.OpStore:
			locals[in.A] = pop()
			pc++
		case bytecode.OpPop:
			pop()
			pc++
		case bytecode.OpDup:
			push(stack[len(stack)-1])
			pc++
		case bytecode.OpDup2:
			a, b := stack[len(stack)-2], stack[len(stack)-1]
			push(a)
			push(b)
			pc++
		case bytecode.OpGetField:
			push(vm.fields[in.A])
			pc++
		case bytecode.OpPutField:
			vm.fields[in.A] = pop()
			pc++
		case bytecode.OpNewArr:
			n := pop()
			h, err := vm.NewArray(in.Kind, int64(int32(n)))
			if err != nil {
				return 0, vm.throw(st, err)
			}
			push(h)
			pc++
		case bytecode.OpALoad:
			idx := pop()
			ref := pop()
			v, err := vm.ArrayLoad(ref, int64(int32(idx)))
			if err != nil {
				return 0, vm.throw(st, err)
			}
			push(v)
			pc++
		case bytecode.OpAStore:
			val := pop()
			idx := pop()
			ref := pop()
			if err := vm.ArrayStore(ref, int64(int32(idx)), val); err != nil {
				return 0, vm.throw(st, err)
			}
			pc++
		case bytecode.OpArrLen:
			ref := pop()
			n, err := vm.ArrayLen(ref)
			if err != nil {
				return 0, vm.throw(st, err)
			}
			push(n)
			pc++
		case bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul, bytecode.OpDiv,
			bytecode.OpRem, bytecode.OpAnd, bytecode.OpOr, bytecode.OpXor,
			bytecode.OpShl, bytecode.OpShr, bytecode.OpUshr:
			b := pop()
			a := pop()
			v, err := EvalBinary(in.Op, in.Wide, a, b)
			if err != nil {
				return 0, vm.throw(st, err)
			}
			push(v)
			pc++
		case bytecode.OpNeg:
			a := pop()
			if in.Wide {
				push(-a)
			} else {
				push(int64(int32(-a)))
			}
			pc++
		case bytecode.OpBitNot:
			a := pop()
			if in.Wide {
				push(^a)
			} else {
				push(int64(int32(^a)))
			}
			pc++
		case bytecode.OpL2I:
			push(int64(int32(pop())))
			pc++
		case bytecode.OpCmpSet:
			b := pop()
			a := pop()
			if in.Cond.Eval(a, b) {
				push(1)
			} else {
				push(0)
			}
			pc++
		case bytecode.OpGoto:
			pc = int(in.A)
		case bytecode.OpIfTrue:
			v := pop()
			taken := v != 0
			if profiled {
				st.Profile.branch(pc, taken)
			}
			if taken {
				pc = int(in.A)
			} else {
				pc++
			}
		case bytecode.OpIfFalse:
			v := pop()
			taken := v == 0
			if profiled {
				st.Profile.branch(pc, taken)
			}
			if taken {
				pc = int(in.A)
			} else {
				pc++
			}
		case bytecode.OpIfCmp:
			b := pop()
			a := pop()
			taken := in.Cond.Eval(a, b)
			if profiled {
				st.Profile.branch(pc, taken)
			}
			if taken {
				pc = int(in.A)
			} else {
				pc++
			}
		case bytecode.OpSwitch:
			v := pop()
			t := m.Switches[in.A].Lookup(int64(int32(v)))
			if profiled {
				st.Profile.switchHit(pc, t)
			}
			pc = t
		case bytecode.OpLoopBack:
			head := int(in.A)
			loopID := vm.loopByHead[st.Index][head]
			if profiled {
				st.Counters.Backedge[loopID]++
				dec := vm.policy.OnBackEdge(st, loopID)
				if dec.Action == ActCompile {
					osrCode, uw := vm.ensureOSR(st, loopID, dec.Tier)
					if uw != nil {
						return 0, uw
					}
					if osrCode != nil {
						vm.osrEntries++
						if tv != nil {
							tv.Temps = append(tv.Temps, osrCode.Tier())
						}
						res := osrCode.Run(vm, locals)
						switch res.Kind {
						case ExecReturn:
							return res.Value, nil
						case ExecUnwind:
							return 0, res.Unwind
						case ExecDeopt:
							return vm.handleDeopt(st, res.Deopt, tv)
						}
					}
				}
			}
			pc = head
		case bytecode.OpCall:
			callee := vm.prog.Methods[in.A]
			n := callee.NParams
			args := make([]int64, n)
			copy(args, stack[len(stack)-n:])
			stack = stack[:len(stack)-n]
			ret, uw := vm.CallMethod(int(in.A), args)
			if uw != nil {
				return 0, uw
			}
			if callee.Ret.Kind != ast.KindVoid {
				push(ret)
			}
			pc++
		case bytecode.OpRet:
			return 0, nil
		case bytecode.OpRetV:
			return pop(), nil
		case bytecode.OpPrint:
			vm.Print(in.Kind, pop())
			pc++
		default:
			panic(fmt.Sprintf("vm: unknown opcode %v at pc %d in %s", in.Op, pc, m.Name))
		}
	}
}

// throw decorates a program-level error with the method name so the
// observable message is informative yet deterministic across tiers.
func (vm *VM) throw(st *MethodState, err *RuntimeError) *Unwind {
	if err.Kind == trapTimeout {
		return vm.timeoutUnwind()
	}
	e := *err
	e.Msg = e.Msg + " (in " + st.Name + ")"
	return &Unwind{Err: &e}
}

// EvalBinary applies a binary arithmetic/bitwise bytecode operator with
// Java semantics: 32-bit wrapping when !wide, 64-bit when wide, masked
// shift counts, and ArithmeticException on division by zero. It is
// exported because the interpreter, the JIT constant folder, and the
// machine executor must share exactly one definition of arithmetic.
func EvalBinary(op bytecode.Op, wide bool, a, b int64) (int64, *RuntimeError) {
	if wide {
		switch op {
		case bytecode.OpAdd:
			return a + b, nil
		case bytecode.OpSub:
			return a - b, nil
		case bytecode.OpMul:
			return a * b, nil
		case bytecode.OpDiv:
			if b == 0 {
				return 0, &RuntimeError{Kind: TrapDivByZero, Msg: "/ by zero"}
			}
			if a == -1<<63 && b == -1 {
				return a, nil // Java wraps; Go would panic
			}
			return a / b, nil
		case bytecode.OpRem:
			if b == 0 {
				return 0, &RuntimeError{Kind: TrapDivByZero, Msg: "/ by zero"}
			}
			if a == -1<<63 && b == -1 {
				return 0, nil
			}
			return a % b, nil
		case bytecode.OpAnd:
			return a & b, nil
		case bytecode.OpOr:
			return a | b, nil
		case bytecode.OpXor:
			return a ^ b, nil
		case bytecode.OpShl:
			return a << (uint64(b) & 63), nil
		case bytecode.OpShr:
			return a >> (uint64(b) & 63), nil
		case bytecode.OpUshr:
			return int64(uint64(a) >> (uint64(b) & 63)), nil
		}
	} else {
		x, y := int32(a), int32(b)
		switch op {
		case bytecode.OpAdd:
			return int64(x + y), nil
		case bytecode.OpSub:
			return int64(x - y), nil
		case bytecode.OpMul:
			return int64(x * y), nil
		case bytecode.OpDiv:
			if y == 0 {
				return 0, &RuntimeError{Kind: TrapDivByZero, Msg: "/ by zero"}
			}
			if x == -1<<31 && y == -1 {
				return int64(x), nil
			}
			return int64(x / y), nil
		case bytecode.OpRem:
			if y == 0 {
				return 0, &RuntimeError{Kind: TrapDivByZero, Msg: "/ by zero"}
			}
			if x == -1<<31 && y == -1 {
				return 0, nil
			}
			return int64(x % y), nil
		case bytecode.OpAnd:
			return int64(x & y), nil
		case bytecode.OpOr:
			return int64(x | y), nil
		case bytecode.OpXor:
			return int64(x ^ y), nil
		case bytecode.OpShl:
			return int64(x << (uint32(y) & 31)), nil
		case bytecode.OpShr:
			return int64(x >> (uint32(y) & 31)), nil
		case bytecode.OpUshr:
			return int64(int32(uint32(x) >> (uint32(y) & 31))), nil
		}
	}
	panic(fmt.Sprintf("vm: EvalBinary of non-arithmetic op %v", op))
}
