package vm

import (
	"artemis/internal/bytecode"
	"artemis/internal/lang/ast"
)

// Env is the runtime interface compiled code uses to talk to the VM:
// field access, heap operations, printing, and re-entering the VM for
// method calls. The VM itself implements Env.
type Env interface {
	GetField(i int) int64
	SetField(i int, v int64)
	NewArray(elem ast.Kind, n int64) (int64, *RuntimeError)
	ArrayLoad(ref, idx int64) (int64, *RuntimeError)
	ArrayStore(ref, idx, val int64) *RuntimeError
	// ArrayStoreRaw stores without any bounds check. It exists only so
	// injected codegen bugs can corrupt the heap the way a miscompiled
	// bounds-check-eliminated store would; correct compilers never
	// emit it out of range.
	ArrayStoreRaw(ref, idx, val int64)
	ArrayLen(ref int64) (int64, *RuntimeError)
	Print(kind ast.Kind, v int64)
	// CallMethod re-enters VM dispatch for a callee. A non-nil
	// *Unwind aborts the compiled caller.
	CallMethod(method int, args []int64) (int64, *Unwind)
	// Step consumes abstract execution budget from compiled code.
	Step(n int64) *Unwind
	// RegisterRoots adds a GC root scanner for a compiled frame; the
	// returned function removes it (call on frame exit).
	RegisterRoots(scan func(yield func(v int64))) func()
}

// Unwind propagates a non-return exit upward through compiled frames:
// a program-level runtime error or a VM crash.
type Unwind struct {
	Err   *RuntimeError // program-level error (exception)
	Crash string        // VM-internal failure description
}

// Deopt describes an uncommon-trap exit from compiled code: the
// interpreter frame state to resume from.
type Deopt struct {
	PC     int     // bytecode pc to resume interpretation at
	Locals []int64 // reconstructed local slots
	Stack  []int64 // reconstructed operand stack
	Reason string  // e.g. "speculative branch violated at pc 12"
}

// ExecKind discriminates compiled-code execution results.
type ExecKind int

const (
	ExecReturn ExecKind = iota
	ExecDeopt
	ExecUnwind
)

// ExecResult is the outcome of running compiled code.
type ExecResult struct {
	Kind   ExecKind
	Value  int64   // for ExecReturn of non-void methods
	Deopt  *Deopt  // for ExecDeopt
	Unwind *Unwind // for ExecUnwind

	// Backedges is the number of loop back-edges executed, fed back
	// into the method's counters for tier-up decisions.
	Backedges int64
}

// CompiledCode is one compiled version of a method.
type CompiledCode interface {
	// Run executes the code. For regular entries args are the method
	// arguments; for OSR entries args are the full local-slot array at
	// the loop header.
	Run(env Env, args []int64) ExecResult
	// Tier returns the optimization level (1-based).
	Tier() int
	// IsOSR reports whether this is an on-stack-replacement entry
	// compiled for a specific loop.
	IsOSR() bool
	// Size returns the number of machine instructions (for stats).
	Size() int
}

// CompileRequest asks the JIT for one compiled version.
type CompileRequest struct {
	Prog        *bytecode.Program
	MethodIndex int
	Tier        int
	// OSRLoopID >= 0 requests an OSR version entered at that loop's
	// header; -1 requests a regular entry.
	OSRLoopID int
	// Profile is a snapshot of interpreter profiling data; may be nil
	// (tier-1 compilers don't need it).
	Profile *MethodProfile
	// Speculate permits profile-guided speculative optimization with
	// uncommon traps. The VM clears it after repeated deopts.
	Speculate bool
	// Recompiles counts earlier compilations of this method (all
	// tiers), for recompilation-bookkeeping behaviour.
	Recompiles int64
	// DisablePasses names optimizing-tier passes the compiler must
	// skip for this compilation (see jit.PassNames). The VM populates
	// it from Config.DisablePasses — a single read-only map shared by
	// every request of the run, so concurrent VMs can bisect different
	// pass sets without racing (unlike the old package-global switch).
	DisablePasses map[string]bool
	// ValidateIR asks the compiler to check SSA invariants between
	// passes and crash with a diagnosable message on violation.
	ValidateIR bool
}

// CompileStats describes the work one compilation performed: which
// optimization passes fired how often, and how long compilation took.
// Compiled code surfaces it through the optional CompileStatsProvider
// interface; the VM folds it into ExecStats when stats collection is
// on. OptsByPass is deterministic; Nanos is wall clock and excluded
// from deterministic exports.
type CompileStats struct {
	Tier       int
	OSR        bool
	OptsByPass map[string]int64
	Nanos      int64
}

// CompileStatsProvider is implemented by CompiledCode values that can
// report per-compilation statistics. It is optional so simple or
// test compilers need not bother.
type CompileStatsProvider interface {
	CompileStats() *CompileStats
}

// CompileError reports a failed compilation. Compiler crashes
// (assertion failures etc., including injected bugs) are VM crashes;
// the paper observes most JIT crashes happen while compiling.
type CompileError struct {
	Crash bool
	Msg   string
}

func (e *CompileError) Error() string { return e.Msg }

// JITCompiler produces compiled code. Implementations live in
// internal/jit; the VM only sees this interface.
type JITCompiler interface {
	Compile(req CompileRequest) (CompiledCode, *CompileError)
	// MaxTier returns the highest optimization level available (N in
	// Definition 3.1).
	MaxTier() int
}
