package vm

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// TempVector is the temperature vector u_m^i of Definition 3.2: the
// sequence of temperatures method m passed through during its i-th
// call. ⟨t0⟩ means fully interpreted; ⟨t0,t2⟩ means OSR-compiled at
// level 2 mid-call; ⟨t2,t0⟩ means a deoptimization, and so on.
type TempVector struct {
	Method    string
	CallIndex int64
	Temps     []int
}

func (v TempVector) String() string {
	parts := make([]string, len(v.Temps))
	for i, t := range v.Temps {
		parts[i] = fmt.Sprintf("t%d", t)
	}
	return fmt.Sprintf("⟨%s⟩%d_%s", strings.Join(parts, ","), v.CallIndex, v.Method)
}

// JITTrace is a JIT compilation trace (Definition 3.3): the sequence
// of temperature vectors of all method calls in one program run. Two
// runs of the same program with different JIT traces form a
// compilation-space test pair.
type JITTrace struct {
	Vectors []TempVector
	NTotal  int // total calls (Vectors is capped)
	maxKeep int
	hash    uint64

	// maxTemp / maxTempMethod track the hottest temperature (and the
	// method that first reached it) incrementally over *every* added
	// vector — including the ones beyond maxKeep that Vectors drops —
	// so truncation can never misreport a tiered run as
	// interpreter-only.
	maxTemp       int
	maxTempMethod string
}

func newJITTrace(maxKeep int) *JITTrace {
	return &JITTrace{maxKeep: maxKeep, hash: fnv.New64a().Sum64()}
}

func (t *JITTrace) add(v TempVector) {
	if len(t.Vectors) < t.maxKeep {
		t.Vectors = append(t.Vectors, v)
	}
	for _, tm := range v.Temps {
		if tm > t.maxTemp {
			t.maxTemp = tm
			t.maxTempMethod = v.Method
		}
	}
	t.NTotal++
	// Chain hash with explicit framing: every variable-length field is
	// length-prefixed and the call index is included, so no two distinct
	// vector sequences serialize to the same byte stream. (The earlier
	// unframed concatenation let {Method:"a", Temps:[1]} and
	// {Method:"a\x01", Temps:[]} collide, silently merging two distinct
	// compilation-space points of Definition 3.3.)
	h := fnv.New64a()
	var b [8]byte
	put64 := func(x uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(x >> (8 * i))
		}
		h.Write(b[:])
	}
	put64(t.hash)
	put64(uint64(len(v.Method)))
	h.Write([]byte(v.Method))
	put64(uint64(v.CallIndex))
	put64(uint64(len(v.Temps)))
	for _, tm := range v.Temps {
		h.Write([]byte{byte(tm)})
	}
	t.hash = h.Sum64()
}

// Hash digests the whole trace; two runs took the same JIT trace iff
// the hashes (and NTotal) match.
func (t *JITTrace) Hash() uint64 { return t.hash }

// Key returns a comparable summary.
func (t *JITTrace) Key() string { return fmt.Sprintf("%d|%016x", t.NTotal, t.hash) }

// String renders the (possibly truncated) trace.
func (t *JITTrace) String() string {
	parts := make([]string, 0, len(t.Vectors))
	for _, v := range t.Vectors {
		parts = append(parts, v.String())
	}
	s := strings.Join(parts, " → ")
	if t.NTotal > len(t.Vectors) {
		s += fmt.Sprintf(" … (%d more)", t.NTotal-len(t.Vectors))
	}
	return s
}

// MaxTemp returns the hottest temperature observed anywhere in the
// trace (0 = the run never left the interpreter). It is maintained
// incrementally by add, so it covers the full run even when Vectors
// was truncated at maxKeep.
func (t *JITTrace) MaxTemp() int { return t.maxTemp }

// HottestMethod returns the name of the method that first reached
// MaxTemp ("" when the run never left the interpreter). Like MaxTemp
// it is truncation-proof.
func (t *JITTrace) HottestMethod() string { return t.maxTempMethod }
