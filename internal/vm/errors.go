// Package vm implements the language virtual machine under test: a
// bytecode interpreter with profiling counters, a tier controller with
// configurable compilation thresholds (the Z_1..Z_N of Definition 3.1),
// on-stack replacement, uncommon-trap deoptimization, a mark-sweep
// garbage collector, and a JIT-trace recorder that captures temperature
// vectors (Definition 3.2).
//
// The actual JIT compilers live in internal/jit and are plugged in via
// the JITCompiler interface, so the VM itself stays compiler-agnostic
// (and can run pure interpretation when no compiler is configured).
package vm

import (
	"fmt"
	"hash/fnv"
	"strconv"

	"artemis/internal/lang/ast"
)

// TrapKind classifies program-level runtime errors. These are
// deterministic, observable program behaviour (the analogue of an
// uncaught Java exception) and therefore part of the comparable output.
type TrapKind int

const (
	TrapNone TrapKind = iota
	TrapDivByZero
	TrapIndexOutOfBounds
	TrapNegativeArraySize
	TrapOutOfMemory
	TrapStackOverflow
)

var trapNames = [...]string{
	"", "ArithmeticException", "ArrayIndexOutOfBoundsException",
	"NegativeArraySizeException", "OutOfMemoryError", "StackOverflowError",
}

func (k TrapKind) String() string {
	if k < 0 || int(k) >= len(trapNames) {
		return "InternalTimeout"
	}
	return trapNames[k]
}

// RuntimeError is a program-level runtime error.
type RuntimeError struct {
	Kind TrapKind
	Msg  string
}

func (e *RuntimeError) Error() string {
	if e.Msg == "" {
		return e.Kind.String()
	}
	return e.Kind.String() + ": " + e.Msg
}

// TermKind classifies how a program run ended.
type TermKind int

const (
	// TermNormal: main returned.
	TermNormal TermKind = iota
	// TermException: deterministic program-level error (part of
	// observable behaviour, like an uncaught Java exception).
	TermException
	// TermCrash: the VM itself failed — a JIT compiler assertion, a
	// fault executing compiled code, or GC-detected heap corruption.
	// Never correct behaviour.
	TermCrash
	// TermTimeout: the step budget was exhausted.
	TermTimeout
)

var termNames = [...]string{"normal", "exception", "crash", "timeout"}

func (k TermKind) String() string { return termNames[k] }

// Output is a program run's observable result. Printed lines beyond
// MaxOutputLines are folded into the rolling hash only, so memory use
// is bounded while comparisons stay exact.
type Output struct {
	Lines   []string // first maxLines printed lines
	NLines  int      // total printed lines
	hash    uint64
	Term    TermKind
	Detail  string // exception text, crash reason, ...
	Steps   int64  // abstract interpreter steps consumed
	maxKeep int
}

func newOutput(maxKeep int) *Output {
	o := &Output{maxKeep: maxKeep}
	o.hash = fnv.New64a().Sum64()
	return o
}

func (o *Output) addLine(s string) {
	if len(o.Lines) < o.maxKeep {
		o.Lines = append(o.Lines, s)
	}
	o.NLines++
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(o.hash >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(s))
	o.hash = h.Sum64()
}

// Hash returns a digest of the full print stream.
func (o *Output) Hash() uint64 { return o.hash }

// Key returns a comparable summary of observable behaviour: the full
// print stream digest plus the termination kind and detail. Two runs of
// semantically equivalent programs on a correct VM must have equal
// Keys (unless either timed out).
func (o *Output) Key() string {
	return fmt.Sprintf("%s|%s|%d|%016x", o.Term, o.Detail, o.NLines, o.hash)
}

// Equivalent reports whether two outputs are observably equal.
// Timeouts are never equivalent to anything (inconclusive).
func (o *Output) Equivalent(p *Output) bool {
	if o.Term == TermTimeout || p.Term == TermTimeout {
		return false
	}
	return o.Key() == p.Key()
}

// formatValue renders a printed value the way the interpreter, both
// JIT tiers, and the test oracle must agree on.
func formatValue(kind ast.Kind, v int64) string {
	switch kind {
	case ast.KindBoolean:
		if v != 0 {
			return "true"
		}
		return "false"
	case ast.KindInt:
		return strconv.FormatInt(int64(int32(v)), 10)
	default:
		return strconv.FormatInt(v, 10)
	}
}
