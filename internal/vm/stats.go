package vm

import "strings"

// ExecStats is the per-run execution metrics record collected when
// Config.CollectStats is set: how much work the run did in each
// execution mode, how the JIT was exercised, and how the heap behaved.
// It is the observability counterpart of the JIT trace — the trace
// says *which* temperature vectors a run took (Definition 3.2/3.3),
// ExecStats says how much of the compilation machinery it actually
// touched, so a campaign can prove it explored the compilation space
// rather than degenerating into plain differential testing.
//
// Every field except CompileNanos is deterministic for a deterministic
// program: campaigns aggregate ExecStats into byte-identical metrics
// for any worker count. CompileNanos is wall clock and is therefore
// excluded from JSON export (`json:"-"`).
type ExecStats struct {
	// InterpSteps / CompiledSteps split Result.Steps by execution
	// mode: abstract steps consumed by the interpreter loop vs. by
	// compiled code charging through Env.Step.
	InterpSteps   int64 `json:"interp_steps"`
	CompiledSteps int64 `json:"compiled_steps"`

	// CompilationsByTier[t-1] counts successful compilations at tier t
	// (regular and OSR entries combined).
	CompilationsByTier []int64 `json:"compilations_by_tier"`
	// OSRCompilations counts the subset of compilations that produced
	// an on-stack-replacement entry.
	OSRCompilations int64 `json:"osr_compilations"`
	// FailedCompilations counts benign compilation failures (the
	// method fell back to the interpreter or a lower tier).
	FailedCompilations int64 `json:"failed_compilations"`

	// UncommonTraps counts uncommon-trap hits in compiled code and
	// Deopts the deoptimizations they forced. In this VM every trap
	// hit that does not crash the trap stub deoptimizes, so the two
	// coincide by construction; both are kept because real VMs (and
	// future policies) can retrap without invalidating.
	UncommonTraps int64 `json:"uncommon_traps"`
	Deopts        int64 `json:"deopts"`
	// DeoptsByReason buckets deopts by the reason template (digits and
	// method names stripped, so cardinality stays bounded).
	DeoptsByReason map[string]int64 `json:"deopts_by_reason,omitempty"`

	// GCCycles is the number of stop-the-world collections;
	// PeakHeapWords the high-water mark of allocated payload words.
	GCCycles      int64 `json:"gc_cycles"`
	PeakHeapWords int64 `json:"peak_heap_words"`

	// OptsByPass counts optimizations applied per JIT pass across all
	// compilations of the run (pass name -> rewrites applied).
	OptsByPass map[string]int64 `json:"opts_by_pass,omitempty"`

	// CompileNanos is total wall-clock compile time. Wall clock is not
	// deterministic, so it never appears in exported metrics.
	CompileNanos int64 `json:"-"`
}

// Merge folds o into s. Counters add; PeakHeapWords takes the max.
// Merge is commutative and associative over every exported field, so
// campaign aggregation is order-independent (the harness still merges
// in seed order for uniformity with finding dedup).
func (s *ExecStats) Merge(o *ExecStats) {
	if o == nil {
		return
	}
	s.InterpSteps += o.InterpSteps
	s.CompiledSteps += o.CompiledSteps
	for len(s.CompilationsByTier) < len(o.CompilationsByTier) {
		s.CompilationsByTier = append(s.CompilationsByTier, 0)
	}
	for i, n := range o.CompilationsByTier {
		s.CompilationsByTier[i] += n
	}
	s.OSRCompilations += o.OSRCompilations
	s.FailedCompilations += o.FailedCompilations
	s.UncommonTraps += o.UncommonTraps
	s.Deopts += o.Deopts
	for k, n := range o.DeoptsByReason {
		if s.DeoptsByReason == nil {
			s.DeoptsByReason = map[string]int64{}
		}
		s.DeoptsByReason[k] += n
	}
	s.GCCycles += o.GCCycles
	if o.PeakHeapWords > s.PeakHeapWords {
		s.PeakHeapWords = o.PeakHeapWords
	}
	for k, n := range o.OptsByPass {
		if s.OptsByPass == nil {
			s.OptsByPass = map[string]int64{}
		}
		s.OptsByPass[k] += n
	}
	s.CompileNanos += o.CompileNanos
}

// TotalCompilations sums CompilationsByTier.
func (s *ExecStats) TotalCompilations() int64 {
	var n int64
	for _, c := range s.CompilationsByTier {
		n += c
	}
	return n
}

// deoptReasonBucket reduces a free-form deopt reason to its template
// ("speculation failed in foo at bytecode 12" -> "speculation failed")
// so per-reason aggregation across thousands of seeds keeps a small,
// deterministic key set.
func deoptReasonBucket(reason string) string {
	if i := strings.Index(reason, " in "); i >= 0 {
		return reason[:i]
	}
	if i := strings.Index(reason, " at "); i >= 0 {
		return reason[:i]
	}
	return reason
}

// recordCompile accounts one successful compilation in stats.
func (s *ExecStats) recordCompile(code CompiledCode, tier int, osr bool) {
	for len(s.CompilationsByTier) < tier {
		s.CompilationsByTier = append(s.CompilationsByTier, 0)
	}
	if tier >= 1 {
		s.CompilationsByTier[tier-1]++
	}
	if osr {
		s.OSRCompilations++
	}
	if p, ok := code.(CompileStatsProvider); ok {
		if cs := p.CompileStats(); cs != nil {
			for pass, n := range cs.OptsByPass {
				if n == 0 {
					continue
				}
				if s.OptsByPass == nil {
					s.OptsByPass = map[string]int64{}
				}
				s.OptsByPass[pass] += n
			}
			s.CompileNanos += cs.Nanos
		}
	}
}

// recordDeopt accounts one uncommon-trap deoptimization.
func (s *ExecStats) recordDeopt(reason string) {
	s.UncommonTraps++
	s.Deopts++
	if s.DeoptsByReason == nil {
		s.DeoptsByReason = map[string]int64{}
	}
	s.DeoptsByReason[deoptReasonBucket(reason)]++
}
