package vm

import (
	"fmt"

	"artemis/internal/bytecode"
	"artemis/internal/lang/ast"
)

// Config parameterizes a VM instance. Profiles (internal/profiles)
// provide ready-made configs that mimic HotSpot-, OpenJ9-, and
// ART-like tier setups.
type Config struct {
	// Name identifies the configuration in reports ("hotspotlike"...).
	Name string

	// EntryThresholds are the method-counter compilation thresholds
	// Z_1..Z_N (Definition 3.1). Empty means interpret-only.
	EntryThresholds []int64
	// OSRThresholds are back-edge thresholds per tier (same length as
	// EntryThresholds).
	OSRThresholds []int64

	// JIT is the compiler back end; nil disables compilation.
	JIT JITCompiler
	// Policy overrides the default counter policy when non-nil.
	Policy Policy

	// DisablePasses names optimizing-tier passes the JIT must skip
	// (see jit.PassNames); threaded into every CompileRequest. This is
	// the per-VM knob pass bisection uses: concurrent VMs can each
	// disable a different set without interfering.
	DisablePasses []string
	// ValidateIR makes the JIT check SSA invariants between passes;
	// violations surface as compiler crashes naming the guilty pass.
	ValidateIR bool

	// HeapWords bounds the array heap payload (default 1<<20 words).
	HeapWords int64
	// GCInterval collects every this many allocations (default 256).
	GCInterval int64
	// StepLimit bounds abstract execution steps (default 200M),
	// standing in for the paper's 2-minute wall-clock cutoff.
	StepLimit int64
	// MaxDepth bounds the call stack (default 400).
	MaxDepth int

	// RecordTrace enables JIT-trace (temperature vector) recording.
	RecordTrace bool
	// CollectStats enables ExecStats collection (Result.Stats). The
	// disabled path costs one nil check per compilation/deopt/GC event
	// and nothing per interpreted step.
	CollectStats bool
	// TraceLimit caps recorded vectors (default 4096).
	TraceLimit int
	// MaxOutputLines caps retained print lines (default 256); the
	// rolling hash always covers everything.
	MaxOutputLines int

	// Speculate lets the optimizing tier use profile-guided
	// speculation with uncommon traps (default true when JIT != nil;
	// set via NoSpeculation).
	NoSpeculation bool
	// DeoptLimit disables speculation for a method after this many
	// deopts (default 4).
	DeoptLimit int

	// Scratch, when non-nil, supplies reusable per-worker memory
	// (frame arena, heap backing, per-method state). It must not be
	// shared between concurrently running VMs. Purely a performance
	// knob: results are byte-identical with or without it.
	Scratch *Scratch
}

func (c Config) withDefaults() Config {
	if c.HeapWords == 0 {
		c.HeapWords = 1 << 20
	}
	if c.GCInterval == 0 {
		c.GCInterval = 256
	}
	if c.StepLimit == 0 {
		c.StepLimit = 200_000_000
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 400
	}
	if c.TraceLimit == 0 {
		c.TraceLimit = 4096
	}
	if c.MaxOutputLines == 0 {
		c.MaxOutputLines = 256
	}
	if c.DeoptLimit == 0 {
		c.DeoptLimit = 4
	}
	return c
}

// maxTiers bounds the tier index space of the per-method code caches.
// Real tier numbers come from threshold vectors (at most 3 entries in
// every profile) and are clamped to JITCompiler.MaxTier, so 8 is far
// above anything reachable.
const maxTiers = 8

// MethodState is the VM's per-method runtime state: counters,
// profiling data, and compiled code caches. The caches are dense
// arrays/slices rather than maps: tier and loop-id spaces are tiny and
// known up front, and OnEntry/OnBackEdge consult them on every call
// and back edge.
type MethodState struct {
	Name     string
	Index    int
	Counters Counters
	Profile  *MethodProfile

	compiled    [maxTiers]CompiledCode // tier -> regular entry
	hiTier      int                    // highest tier with cached code (0 = none)
	failedTiers [maxTiers]bool         // tiers that failed to compile (non-crash)
	osr         []CompiledCode         // loopID -> OSR entry (best tier)
	osrTiers    []int                  // loopID -> tier of cached OSR code

	DeoptCount   int
	Compilations int64
	specDisabled bool
}

// HighestTier returns the highest tier with cached compiled code
// (0 = none).
func (st *MethodState) HighestTier() int { return st.hiTier }

func (st *MethodState) best() CompiledCode {
	if st.hiTier > 0 {
		return st.compiled[st.hiTier]
	}
	return nil
}

func (st *MethodState) osrTier(loopID int) int { return st.osrTiers[loopID] }

// osrCode returns the cached OSR entry for loopID (nil when none was
// compiled yet, or when the cached compilation failed benignly).
func (st *MethodState) osrCode(loopID int) CompiledCode { return st.osr[loopID] }

// Result is what Run returns: observable output plus bookkeeping that
// the harness and benchmarks consume.
type Result struct {
	Output *Output
	Trace  *JITTrace  // nil unless Config.RecordTrace
	Stats  *ExecStats // nil unless Config.CollectStats

	Compilations int64 // total JIT compilations performed
	Deopts       int64 // total uncommon-trap deoptimizations
	OSREntries   int64 // OSR transitions interpreter -> compiled
	GCRuns       int64
	Steps        int64
}

// VM executes one program run. A VM is single-use: create, Run, read
// results.
type VM struct {
	cfg    Config
	prog   *bytecode.Program
	fields []int64
	heap   *Heap
	out    *Output
	trace  *JITTrace
	stats  *ExecStats

	methods []*MethodState
	policy  Policy

	// disablePasses is Config.DisablePasses as a set, built once and
	// shared read-only by every CompileRequest of the run.
	disablePasses map[string]bool

	steps         int64
	compiledSteps int64 // subset of steps charged via Env.Step
	stepLimit     int64
	depth         int

	roots   []func(yield func(int64)) // active compiled-frame root scanners
	frames  []interpFrame             // active interpreter frames (GC roots)
	unwound *Unwind                   // sticky first unwind (for crash precedence)

	compilations int64
	deopts       int64
	osrEntries   int64

	arena   *frameArena // interpreter locals/stack allocator
	scratch *Scratch    // nil unless Config.Scratch was set
}

// New creates a VM for prog.
func New(cfg Config, prog *bytecode.Program) *VM {
	cfg = cfg.withDefaults()
	// Compiler-built programs are already pre-decoded; this covers
	// hand-assembled programs (tests). Programs shared across worker
	// goroutines always come from Compile, so this is never a write
	// race in parallel campaigns.
	prog.Predecode()
	vm := &VM{
		cfg:       cfg,
		prog:      prog,
		out:       newOutput(cfg.MaxOutputLines),
		stepLimit: cfg.StepLimit,
	}
	if cfg.RecordTrace {
		vm.trace = newJITTrace(cfg.TraceLimit)
	}
	if cfg.CollectStats {
		vm.stats = &ExecStats{}
	}
	if s := cfg.Scratch; s != nil {
		vm.scratch = s
		vm.arena = &s.arena
		vm.arena.reset()
		vm.fields = s.fieldsFor(len(prog.Fields))
		vm.heap = s.heapFor(cfg.HeapWords)
		vm.frames = s.frames[:0]
		vm.methods = s.statesFor(prog)
	} else {
		vm.arena = &frameArena{}
		vm.fields = make([]int64, len(prog.Fields))
		vm.heap = NewHeap(cfg.HeapWords)
		vm.methods = make([]*MethodState, len(prog.Methods))
		for i, m := range prog.Methods {
			st := &MethodState{}
			resetMethodState(st, m, i)
			vm.methods[i] = st
		}
	}
	vm.policy = cfg.Policy
	if vm.policy == nil {
		vm.policy = &CounterPolicy{EntryThresholds: cfg.EntryThresholds, OSRThresholds: cfg.OSRThresholds}
	}
	if len(cfg.DisablePasses) > 0 {
		vm.disablePasses = make(map[string]bool, len(cfg.DisablePasses))
		for _, p := range cfg.DisablePasses {
			vm.disablePasses[p] = true
		}
	}
	return vm
}

// Run executes a compiled program and returns a fresh Config's result.
// Convenience wrapper over New + (*VM).Run.
func Run(cfg Config, prog *bytecode.Program) *Result {
	return New(cfg, prog).Run()
}

// Run executes the program to completion.
func (vm *VM) Run() *Result {
	func() {
		// Any panic below is a VM-internal fault (the analogue of a
		// JVM SIGSEGV). Injected bug code is allowed to panic; a
		// correct configuration must never reach this.
		defer func() {
			if r := recover(); r != nil {
				vm.out.Term = TermCrash
				vm.out.Detail = fmt.Sprintf("fatal error: %v", r)
			}
		}()
		vm.runMain()
	}()
	res := &Result{
		Output:       vm.out,
		Trace:        vm.trace,
		Compilations: vm.compilations,
		Deopts:       vm.deopts,
		OSREntries:   vm.osrEntries,
		GCRuns:       vm.heap.Collections,
		Steps:        vm.steps,
	}
	if vm.stats != nil {
		// Split the abstract step budget by execution mode: Env.Step
		// is the only path compiled code charges through, so the
		// interpreter share is the remainder — no per-step accounting
		// is ever needed on the interpreter hot loop.
		vm.stats.CompiledSteps = vm.compiledSteps
		vm.stats.InterpSteps = vm.steps - vm.compiledSteps
		vm.stats.GCCycles = vm.heap.Collections
		vm.stats.PeakHeapWords = vm.heap.PeakWords()
		res.Stats = vm.stats
	}
	vm.out.Steps = vm.steps
	if vm.scratch != nil {
		// Hand grown frame capacity back for the next run.
		vm.scratch.frames = vm.frames[:0]
	}
	return res
}

func (vm *VM) runMain() {
	// Default array fields to empty arrays (the language has no null).
	for i, f := range vm.prog.Fields {
		if f.Type.IsArray() {
			vm.fields[i] = vm.heap.Alloc(f.Type.Elem, 0)
		}
	}
	if ci := vm.prog.ClinitIndex; ci >= 0 {
		if uw := vm.interpOnly(ci); uw != nil {
			vm.finish(uw)
			return
		}
	}
	_, uw := vm.CallMethod(vm.prog.MainIndex, nil)
	vm.finish(uw)
}

func (vm *VM) finish(uw *Unwind) {
	switch {
	case uw == nil:
		vm.out.Term = TermNormal
	case uw.Crash != "":
		vm.out.Term = TermCrash
		vm.out.Detail = uw.Crash
	case uw.Err != nil && uw.Err.Kind == trapTimeout:
		vm.out.Term = TermTimeout
		vm.out.Detail = "step limit exceeded"
	case uw.Err != nil:
		vm.out.Term = TermException
		vm.out.Detail = uw.Err.Error()
	}
}

// trapTimeout is an internal pseudo-trap used to thread step-limit
// exhaustion through the normal unwind path.
const trapTimeout TrapKind = -1

func (vm *VM) timeoutUnwind() *Unwind {
	return &Unwind{Err: &RuntimeError{Kind: trapTimeout}}
}

// interpOnly runs a method in the interpreter with no profiling
// consequences (used for <clinit>).
func (vm *VM) interpOnly(mi int) *Unwind {
	m := vm.prog.Methods[mi]
	mark := vm.arena.mark()
	locals := vm.arena.alloc(len(m.Locals))
	clear(locals)
	_, uw := vm.interpLoop(vm.methods[mi], 0, locals, nil, nil, false)
	vm.arena.release(mark)
	return uw
}

// MethodStateByName exposes per-method state for tests and tools.
func (vm *VM) MethodStateByName(name string) *MethodState {
	for _, st := range vm.methods {
		if st.Name == name {
			return st
		}
	}
	return nil
}

// Heap exposes the heap (tests).
func (vm *VM) Heap() *Heap { return vm.heap }

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

// CallMethod dispatches one method call, deciding between interpreter
// and compiled code via the policy. It implements Env for compiled
// callers.
func (vm *VM) CallMethod(mi int, args []int64) (int64, *Unwind) {
	if vm.depth >= vm.cfg.MaxDepth {
		return 0, &Unwind{Err: &RuntimeError{Kind: TrapStackOverflow}}
	}
	st := vm.methods[mi]
	st.Counters.Invocations++

	var tv *TempVector
	if vm.trace != nil {
		tv = &TempVector{Method: st.Name, CallIndex: st.Counters.Invocations}
	}

	dec := vm.policy.OnEntry(st)
	var code CompiledCode
	switch dec.Action {
	case ActInterpret:
		code = nil
	case ActUseCompiled:
		code = st.best()
	case ActCompile:
		c, uw := vm.ensureCompiled(st, dec.Tier)
		if uw != nil {
			return 0, uw
		}
		code = c
		if code == nil {
			code = st.best()
		}
	}

	vm.depth++
	defer func() { vm.depth-- }()

	var ret int64
	var uw *Unwind
	if code != nil {
		ret, uw = vm.runCompiled(st, code, args, tv)
	} else {
		if tv != nil {
			tv.Temps = append(tv.Temps, 0)
		}
		m := vm.prog.Methods[mi]
		mark := vm.arena.mark()
		locals := vm.arena.alloc(len(m.Locals))
		clear(locals)
		copy(locals, args)
		ret, uw = vm.interpLoop(st, 0, locals, nil, tv, true)
		vm.arena.release(mark)
	}
	if tv != nil && vm.trace != nil {
		vm.trace.add(*tv)
	}
	return ret, uw
}

// ensureCompiled compiles st at tier if not cached. Returns (nil, nil)
// when compilation failed benignly (caller falls back).
func (vm *VM) ensureCompiled(st *MethodState, tier int) (CompiledCode, *Unwind) {
	if vm.cfg.JIT == nil {
		return nil, nil
	}
	if tier > vm.cfg.JIT.MaxTier() {
		tier = vm.cfg.JIT.MaxTier()
	}
	if tier >= maxTiers {
		tier = maxTiers - 1
	}
	if c := st.compiled[tier]; c != nil {
		return c, nil
	}
	if st.failedTiers[tier] {
		return nil, nil
	}
	req := CompileRequest{
		Prog:          vm.prog,
		MethodIndex:   st.Index,
		Tier:          tier,
		OSRLoopID:     -1,
		Profile:       st.Profile.Snapshot(),
		Speculate:     !vm.cfg.NoSpeculation && !st.specDisabled,
		Recompiles:    st.Compilations,
		DisablePasses: vm.disablePasses,
		ValidateIR:    vm.cfg.ValidateIR,
	}
	code, cerr := vm.cfg.JIT.Compile(req)
	vm.compilations++
	st.Compilations++
	if cerr != nil {
		if cerr.Crash {
			// A compiler assertion failure takes the whole VM down,
			// like a fatal error in a JVM compiler thread.
			return nil, &Unwind{Crash: fmt.Sprintf("JIT compiler crash (tier %d, method %s): %s", tier, st.Name, cerr.Msg)}
		}
		if vm.stats != nil {
			vm.stats.FailedCompilations++
		}
		st.failedTiers[tier] = true
		return nil, nil
	}
	if vm.stats != nil {
		vm.stats.recordCompile(code, code.Tier(), false)
	}
	st.compiled[tier] = code
	if tier > st.hiTier {
		st.hiTier = tier
	}
	return code, nil
}

// ensureOSR compiles an OSR entry for (method, loop) at tier.
func (vm *VM) ensureOSR(st *MethodState, loopID, tier int) (CompiledCode, *Unwind) {
	if vm.cfg.JIT == nil {
		return nil, nil
	}
	if tier > vm.cfg.JIT.MaxTier() {
		tier = vm.cfg.JIT.MaxTier()
	}
	if tier >= maxTiers {
		tier = maxTiers - 1
	}
	if st.osrTiers[loopID] >= tier {
		return st.osr[loopID], nil
	}
	req := CompileRequest{
		Prog:          vm.prog,
		MethodIndex:   st.Index,
		Tier:          tier,
		OSRLoopID:     loopID,
		Profile:       st.Profile.Snapshot(),
		Speculate:     !vm.cfg.NoSpeculation && !st.specDisabled,
		Recompiles:    st.Compilations,
		DisablePasses: vm.disablePasses,
		ValidateIR:    vm.cfg.ValidateIR,
	}
	code, cerr := vm.cfg.JIT.Compile(req)
	vm.compilations++
	st.Compilations++
	if cerr != nil {
		if cerr.Crash {
			return nil, &Unwind{Crash: fmt.Sprintf("JIT compiler crash (OSR tier %d, method %s, loop %d): %s", tier, st.Name, loopID, cerr.Msg)}
		}
		// Benign failure: remember the tier so we stop retrying.
		if vm.stats != nil {
			vm.stats.FailedCompilations++
		}
		st.osrTiers[loopID] = tier
		st.osr[loopID] = nil
		return nil, nil
	}
	if vm.stats != nil {
		vm.stats.recordCompile(code, code.Tier(), true)
	}
	st.osrTiers[loopID] = tier
	st.osr[loopID] = code
	return code, nil
}

// runCompiled executes compiled code for a regular method entry and
// handles deopt by resuming interpretation.
func (vm *VM) runCompiled(st *MethodState, code CompiledCode, args []int64, tv *TempVector) (int64, *Unwind) {
	if tv != nil {
		tv.Temps = append(tv.Temps, code.Tier())
	}
	res := code.Run(vm, args)
	switch res.Kind {
	case ExecReturn:
		return res.Value, nil
	case ExecUnwind:
		return 0, res.Unwind
	case ExecDeopt:
		return vm.handleDeopt(st, res.Deopt, tv)
	}
	panic("vm: bad ExecResult kind")
}

// handleDeopt processes an uncommon trap: invalidate the speculative
// code, cool the method down (Definition 3.2: traps cool temperature
// to t0), and resume in the interpreter at the trap's frame state.
func (vm *VM) handleDeopt(st *MethodState, d *Deopt, tv *TempVector) (int64, *Unwind) {
	vm.deopts++
	st.DeoptCount++
	if vm.stats != nil {
		vm.stats.recordDeopt(d.Reason)
	}
	if st.DeoptCount >= vm.cfg.DeoptLimit {
		st.specDisabled = true
	}
	// Throw away every compiled version of the method: the profile it
	// was built from was wrong. Recompilation will happen naturally
	// when thresholds are crossed again, with a corrected profile.
	// (failedTiers is deliberately kept: benign compile failures are
	// permanent for the run.)
	st.compiled = [maxTiers]CompiledCode{}
	st.hiTier = 0
	clear(st.osr)
	clear(st.osrTiers)
	if tv != nil {
		tv.Temps = append(tv.Temps, 0)
	}
	return vm.interpLoop(st, d.PC, d.Locals, d.Stack, tv, true)
}

// ---------------------------------------------------------------------------
// Env implementation (runtime services for compiled code)
// ---------------------------------------------------------------------------

var _ Env = (*VM)(nil)

// GetField implements Env.
func (vm *VM) GetField(i int) int64 { return vm.fields[i] }

// SetField implements Env.
func (vm *VM) SetField(i int, v int64) { vm.fields[i] = v }

// Print implements Env.
func (vm *VM) Print(kind ast.Kind, v int64) { vm.out.addLine(formatValue(kind, v)) }

// Step implements Env: consume abstract execution budget. Only
// compiled code charges through here (the interpreter counts inline),
// which is what lets ExecStats split steps by execution mode for free.
func (vm *VM) Step(n int64) *Unwind {
	vm.steps += n
	vm.compiledSteps += n
	if vm.steps > vm.stepLimit {
		return vm.timeoutUnwind()
	}
	return nil
}

// NewArray implements Env: allocate, collecting (and checking the
// heap) when needed.
func (vm *VM) NewArray(elem ast.Kind, n int64) (int64, *RuntimeError) {
	if n < 0 {
		return 0, &RuntimeError{Kind: TrapNegativeArraySize, Msg: fmt.Sprintf("%d", n)}
	}
	if vm.heap.WouldExceed(n) || vm.heap.AllocsSinceGC() >= vm.cfg.GCInterval {
		if err := vm.collect(); err != nil {
			// Heap corruption: surface as a crash via panic, caught at
			// the Run boundary. (Returning a RuntimeError would make
			// it look like program behaviour.)
			panic(err.Error())
		}
		if vm.heap.WouldExceed(n) {
			return 0, &RuntimeError{Kind: TrapOutOfMemory}
		}
	}
	return vm.heap.Alloc(elem, n), nil
}

func (vm *VM) collect() error {
	return vm.heap.Collect(func(yield func(int64)) {
		for _, v := range vm.fields {
			yield(v)
		}
		for i := range vm.frames {
			f := &vm.frames[i]
			for _, v := range f.locals {
				yield(v)
			}
			for _, v := range f.stack[:f.sp] {
				yield(v)
			}
		}
		for _, scan := range vm.roots {
			scan(yield)
		}
	})
}

// ArrayLoad implements Env.
func (vm *VM) ArrayLoad(ref, idx int64) (int64, *RuntimeError) {
	a := vm.heap.Get(ref)
	if a == nil {
		panic(fmt.Sprintf("invalid array handle %d", ref))
	}
	if idx < 0 || idx >= a.Len() {
		return 0, &RuntimeError{Kind: TrapIndexOutOfBounds, Msg: fmt.Sprintf("index %d, length %d", idx, a.Len())}
	}
	return a.Data[idx], nil
}

// ArrayStore implements Env.
func (vm *VM) ArrayStore(ref, idx, val int64) *RuntimeError {
	a := vm.heap.Get(ref)
	if a == nil {
		panic(fmt.Sprintf("invalid array handle %d", ref))
	}
	if idx < 0 || idx >= a.Len() {
		return &RuntimeError{Kind: TrapIndexOutOfBounds, Msg: fmt.Sprintf("index %d, length %d", idx, a.Len())}
	}
	a.Data[idx] = truncate(a.Elem, val)
	return nil
}

// ArrayStoreRaw implements Env; see the interface comment — only
// reachable through injected compiler bugs.
func (vm *VM) ArrayStoreRaw(ref, idx, val int64) {
	a := vm.heap.Get(ref)
	if a == nil {
		panic(fmt.Sprintf("invalid array handle %d", ref))
	}
	if idx < 0 || idx >= int64(len(a.Data)) {
		// Even the buggy store cannot escape the Go slice; clamp to
		// the canary word to model adjacent-object corruption.
		idx = int64(len(a.Data)) - 1
	}
	a.Data[idx] = truncate(a.Elem, val)
}

// ArrayLen implements Env.
func (vm *VM) ArrayLen(ref int64) (int64, *RuntimeError) {
	a := vm.heap.Get(ref)
	if a == nil {
		panic(fmt.Sprintf("invalid array handle %d", ref))
	}
	return a.Len(), nil
}

// RegisterRoots adds a frame root scanner for the GC; the returned
// function removes it. Compiled code registers its register file and
// spill slots here.
func (vm *VM) RegisterRoots(scan func(yield func(int64))) func() {
	vm.roots = append(vm.roots, scan)
	idx := len(vm.roots) - 1
	return func() { vm.roots = vm.roots[:idx] }
}

// truncate stores a value with the element width of an array.
func truncate(elem ast.Kind, v int64) int64 {
	switch elem {
	case ast.KindInt:
		return int64(int32(v))
	case ast.KindBoolean:
		return v & 1
	default:
		return v
	}
}
