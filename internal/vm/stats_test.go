package vm

import (
	"testing"
)

// TestTraceMaxTempBeyondCap is the regression test for the trace
// truncation bug: MaxTemp used to scan only the retained Vectors
// prefix, so a trace whose hottest vector arrived after maxKeep
// reported a tiered run as interpreter-only. It is now tracked
// incrementally in add and must cover the whole run.
func TestTraceMaxTempBeyondCap(t *testing.T) {
	tr := newJITTrace(2)
	tr.add(TempVector{Method: "cold", CallIndex: 1, Temps: []int{0}})
	tr.add(TempVector{Method: "cold", CallIndex: 2, Temps: []int{0}})
	// Retention cap reached; the hot vectors below are dropped from
	// Vectors but must still drive MaxTemp/HottestMethod.
	tr.add(TempVector{Method: "warm", CallIndex: 3, Temps: []int{0, 1}})
	tr.add(TempVector{Method: "hot", CallIndex: 4, Temps: []int{1, 2}})
	if len(tr.Vectors) != 2 {
		t.Fatalf("retained %d vectors, want 2 (cap)", len(tr.Vectors))
	}
	if got := tr.MaxTemp(); got != 2 {
		t.Errorf("MaxTemp = %d, want 2 (hottest vector is beyond the cap)", got)
	}
	if got := tr.HottestMethod(); got != "hot" {
		t.Errorf("HottestMethod = %q, want \"hot\"", got)
	}

	// Interpreter-only trace: MaxTemp 0, no hottest method.
	cold := newJITTrace(2)
	cold.add(TempVector{Method: "f", CallIndex: 1, Temps: []int{0}})
	if cold.MaxTemp() != 0 || cold.HottestMethod() != "" {
		t.Errorf("interpreter-only trace: MaxTemp=%d HottestMethod=%q, want 0 and \"\"",
			cold.MaxTemp(), cold.HottestMethod())
	}
}

func TestExecStatsMerge(t *testing.T) {
	a := &ExecStats{
		InterpSteps:        10,
		CompiledSteps:      5,
		CompilationsByTier: []int64{2},
		PeakHeapWords:      100,
		DeoptsByReason:     map[string]int64{"speculation failed": 1},
	}
	b := &ExecStats{
		InterpSteps:        1,
		CompiledSteps:      2,
		CompilationsByTier: []int64{1, 3},
		OSRCompilations:    1,
		PeakHeapWords:      40,
		Deopts:             2,
		UncommonTraps:      2,
		DeoptsByReason:     map[string]int64{"speculation failed": 2},
		OptsByPass:         map[string]int64{"gvn": 4},
		GCCycles:           7,
	}
	a.Merge(b)
	a.Merge(nil) // must be a no-op
	if a.InterpSteps != 11 || a.CompiledSteps != 7 {
		t.Errorf("step sums wrong: %+v", a)
	}
	if len(a.CompilationsByTier) != 2 || a.CompilationsByTier[0] != 3 || a.CompilationsByTier[1] != 3 {
		t.Errorf("CompilationsByTier = %v, want [3 3]", a.CompilationsByTier)
	}
	if a.TotalCompilations() != 6 {
		t.Errorf("TotalCompilations = %d, want 6", a.TotalCompilations())
	}
	if a.PeakHeapWords != 100 {
		t.Errorf("PeakHeapWords = %d, want max(100,40)=100", a.PeakHeapWords)
	}
	if a.DeoptsByReason["speculation failed"] != 3 {
		t.Errorf("DeoptsByReason = %v", a.DeoptsByReason)
	}
	if a.OptsByPass["gvn"] != 4 || a.GCCycles != 7 || a.OSRCompilations != 1 {
		t.Errorf("merged stats wrong: %+v", a)
	}
}

func TestDeoptReasonBucket(t *testing.T) {
	cases := map[string]string{
		"speculation failed in foo at bytecode 12": "speculation failed",
		"speculation failed in bar at bytecode 99": "speculation failed",
		"trap at pc 3": "trap",
		"plain reason": "plain reason",
	}
	for in, want := range cases {
		if got := deoptReasonBucket(in); got != want {
			t.Errorf("deoptReasonBucket(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestInterpExecStats: an interpreter-only run with CollectStats set
// charges every step to InterpSteps, none to CompiledSteps, and tracks
// heap behaviour; with CollectStats unset the stats pointer stays nil
// (the near-zero-cost disabled path).
func TestInterpExecStats(t *testing.T) {
	src := `class T { void main() {
        long a = 0;
        for (int i = 0; i < 2000; i++) {
            int[] junk = new int[16];
            junk[0] = i;
            a += junk[0];
        }
        print(a);
    } }`
	bp := compileSrc(t, src)

	res := Run(Config{CollectStats: true, HeapWords: 1 << 12}, bp)
	if res.Stats == nil {
		t.Fatal("CollectStats run returned nil Stats")
	}
	s := res.Stats
	if s.InterpSteps != res.Steps || s.CompiledSteps != 0 {
		t.Errorf("interp-only split: InterpSteps=%d CompiledSteps=%d, run Steps=%d",
			s.InterpSteps, s.CompiledSteps, res.Steps)
	}
	if s.TotalCompilations() != 0 {
		t.Errorf("no JIT configured but TotalCompilations=%d", s.TotalCompilations())
	}
	if s.PeakHeapWords == 0 {
		t.Error("allocating run reported PeakHeapWords=0")
	}
	if s.GCCycles == 0 {
		t.Error("small-heap allocating loop reported zero GC cycles")
	}

	off := Run(Config{HeapWords: 1 << 12}, bp)
	if off.Stats != nil {
		t.Error("Stats must be nil when CollectStats is off")
	}
	if off.Output.Term != res.Output.Term || off.Output.Key() != res.Output.Key() {
		t.Error("CollectStats changed observable behaviour")
	}
}
