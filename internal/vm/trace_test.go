package vm

import "testing"

func traceOf(vecs ...TempVector) *JITTrace {
	tr := newJITTrace(16)
	for _, v := range vecs {
		tr.add(v)
	}
	return tr
}

// TestTraceHashFraming is the regression test for the unframed trace
// hash: the old digest concatenated method name and temperature bytes
// with no length prefix and dropped CallIndex, so distinct vector
// sequences — distinct compilation-space points under Definition 3.3 —
// could serialize to the same byte stream and silently merge. The
// framed hash must separate every such pair.
func TestTraceHashFraming(t *testing.T) {
	cases := []struct {
		name string
		a, b *JITTrace
	}{
		{
			// The original collision: the temperature byte 1 read as
			// part of the method name.
			"method/temps boundary",
			traceOf(TempVector{Method: "a", Temps: []int{1}}),
			traceOf(TempVector{Method: "a\x01", Temps: []int{}}),
		},
		{
			// Bytes migrating across adjacent vectors.
			"vector boundary",
			traceOf(TempVector{Method: "ab"}, TempVector{Method: "c"}),
			traceOf(TempVector{Method: "a"}, TempVector{Method: "bc"}),
		},
		{
			// Same method and temps, different call index: a method's
			// 1st and 5th calls are different trace positions.
			"call index",
			traceOf(TempVector{Method: "m", CallIndex: 1, Temps: []int{2}}),
			traceOf(TempVector{Method: "m", CallIndex: 5, Temps: []int{2}}),
		},
		{
			// Temps splitting across vectors of the same method.
			"temps split",
			traceOf(TempVector{Method: "m", Temps: []int{1, 2}}),
			traceOf(TempVector{Method: "m", Temps: []int{1}}, TempVector{Method: "m", Temps: []int{2}}),
		},
	}
	for _, tc := range cases {
		if tc.a.Hash() == tc.b.Hash() {
			t.Errorf("%s: traces %q and %q hash identically (%016x)",
				tc.name, tc.a, tc.b, tc.a.Hash())
		}
	}
}

// TestTraceHashDeterministic pins that the hash depends only on the
// added vectors, not on retention: a trace whose Vectors were
// truncated at maxKeep must still digest every added vector.
func TestTraceHashDeterministic(t *testing.T) {
	vecs := []TempVector{
		{Method: "f", CallIndex: 1, Temps: []int{0}},
		{Method: "g", CallIndex: 1, Temps: []int{0, 2}},
		{Method: "f", CallIndex: 2, Temps: []int{2}},
	}
	full := traceOf(vecs...)
	capped := newJITTrace(1)
	for _, v := range vecs {
		capped.add(v)
	}
	if full.Hash() != capped.Hash() {
		t.Errorf("truncation changed the hash: %016x vs %016x", full.Hash(), capped.Hash())
	}
	if full.Hash() == traceOf(vecs[:2]...).Hash() {
		t.Error("prefix trace hashes like the full trace")
	}
}
