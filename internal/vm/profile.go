package vm

// BranchProfile counts the outcomes of one bytecode branch.
type BranchProfile struct {
	Taken    int64
	NotTaken int64
}

// MethodProfile is the interpreter-collected profile of one method.
// The optimizing JIT consumes it to decide speculative optimizations:
// a branch that has only ever gone one way is compiled as a straight
// line with an uncommon trap on the other edge — exactly the mechanism
// JoNM mutations exploit (Section 3.3 of the paper).
type MethodProfile struct {
	// Branches maps bytecode pc of OpIfTrue/OpIfFalse/OpIfCmp to
	// outcome counts. "Taken" means the branch to A was followed.
	Branches map[int]*BranchProfile
	// SwitchHits maps bytecode pc of OpSwitch to per-target hit
	// counts keyed by target pc.
	SwitchHits map[int]map[int]int64
}

func newMethodProfile() *MethodProfile {
	return &MethodProfile{
		Branches:   map[int]*BranchProfile{},
		SwitchHits: map[int]map[int]int64{},
	}
}

// reset empties the profile in place, keeping map allocations for the
// next run (Scratch reuse).
func (p *MethodProfile) reset() {
	clear(p.Branches)
	clear(p.SwitchHits)
}

func (p *MethodProfile) branch(pc int, taken bool) {
	b := p.Branches[pc]
	if b == nil {
		b = &BranchProfile{}
		p.Branches[pc] = b
	}
	if taken {
		b.Taken++
	} else {
		b.NotTaken++
	}
}

func (p *MethodProfile) switchHit(pc, target int) {
	m := p.SwitchHits[pc]
	if m == nil {
		m = map[int]int64{}
		p.SwitchHits[pc] = m
	}
	m[target]++
}

// Snapshot returns a deep copy so the JIT sees a stable profile.
func (p *MethodProfile) Snapshot() *MethodProfile {
	s := newMethodProfile()
	for pc, b := range p.Branches {
		cp := *b
		s.Branches[pc] = &cp
	}
	for pc, m := range p.SwitchHits {
		cm := map[int]int64{}
		for t, n := range m {
			cm[t] = n
		}
		s.SwitchHits[pc] = cm
	}
	return s
}

// Counters is the per-method counter set C_m of Definition 3.2:
// c0 is the method (invocation) counter, Backedge[i] is the back-edge
// counter of loop i.
type Counters struct {
	Invocations int64
	Backedge    []int64
}

// Max returns the hottest counter value.
func (c *Counters) Max() int64 {
	m := c.Invocations
	for _, b := range c.Backedge {
		if b > m {
			m = b
		}
	}
	return m
}

// Temperature computes τ(m) under thresholds Z[0..N-1] (Z_1..Z_N of
// Definition 3.1): the result is i such that the hottest counter lies
// in [Z_i, Z_{i+1}), with 0 meaning "interpreted".
func (c *Counters) Temperature(thresholds []int64) int {
	return temperatureOf(c.Max(), thresholds)
}

func temperatureOf(v int64, thresholds []int64) int {
	t := 0
	for i, z := range thresholds {
		if v >= z {
			t = i + 1
		}
	}
	return t
}
