package vm

import (
	"testing"
	"testing/quick"
)

func TestCounterPolicyEntry(t *testing.T) {
	p := &CounterPolicy{EntryThresholds: []int64{100, 1000}, OSRThresholds: []int64{150, 1500}}
	st := &MethodState{Name: "m", osrTiers: []int{0}}
	st.Counters.Backedge = []int64{0}

	st.Counters.Invocations = 50
	if d := p.OnEntry(st); d.Action != ActUseCompiled {
		t.Errorf("cold method: %+v", d)
	}
	st.Counters.Invocations = 100
	if d := p.OnEntry(st); d.Action != ActCompile || d.Tier != 1 {
		t.Errorf("tier-1 threshold: %+v", d)
	}
	st.Counters.Invocations = 5000
	if d := p.OnEntry(st); d.Action != ActCompile || d.Tier != 2 {
		t.Errorf("tier-2 threshold: %+v", d)
	}
	// Already compiled at tier 2: no recompilation needed.
	st.hiTier = 2
	if d := p.OnEntry(st); d.Action != ActUseCompiled {
		t.Errorf("already hot: %+v", d)
	}
}

func TestCounterPolicyBackEdge(t *testing.T) {
	p := &CounterPolicy{EntryThresholds: []int64{100, 1000}, OSRThresholds: []int64{150, 1500}}
	st := &MethodState{Name: "m", osrTiers: []int{0}}
	st.Counters.Backedge = []int64{0}

	st.Counters.Backedge[0] = 10
	if d := p.OnBackEdge(st, 0); d.Action != ActInterpret {
		t.Errorf("cold loop: %+v", d)
	}
	st.Counters.Backedge[0] = 200
	if d := p.OnBackEdge(st, 0); d.Action != ActCompile || d.Tier != 1 {
		t.Errorf("OSR tier 1: %+v", d)
	}
	st.Counters.Backedge[0] = 2000
	if d := p.OnBackEdge(st, 0); d.Action != ActCompile || d.Tier != 2 {
		t.Errorf("OSR tier 2: %+v", d)
	}
}

func TestForcedPolicy(t *testing.T) {
	st := &MethodState{Name: "f"}
	p := &ForcedPolicy{Methods: map[string]ForceChoice{"f": ForceCompile}}
	if d := p.OnEntry(st); d.Action != ActCompile || d.Tier != 1 {
		t.Errorf("forced compile: %+v", d)
	}
	p2 := &ForcedPolicy{Tier: 2, Methods: map[string]ForceChoice{"f": ForceInterpret}}
	if d := p2.OnEntry(st); d.Action != ActInterpret {
		t.Errorf("forced interpret: %+v", d)
	}
	// Unlisted methods default to interpret without a fallback.
	other := &MethodState{Name: "g"}
	if d := p.OnEntry(other); d.Action != ActInterpret {
		t.Errorf("default: %+v", d)
	}
	// Per-call choice overrides.
	p3 := &ForcedPolicy{Choice: func(m string, call int64) ForceChoice {
		if call%2 == 0 {
			return ForceCompile
		}
		return ForceInterpret
	}}
	st.Counters.Invocations = 2
	if d := p3.OnEntry(st); d.Action != ActCompile {
		t.Errorf("even call: %+v", d)
	}
	st.Counters.Invocations = 3
	if d := p3.OnEntry(st); d.Action != ActInterpret {
		t.Errorf("odd call: %+v", d)
	}
}

// TestTemperatureTotalOrder is the Definition 3.1/3.2 property:
// temperature is monotone in counter values for any sorted threshold
// vector.
func TestTemperatureTotalOrder(t *testing.T) {
	thr := []int64{10, 100, 1000}
	check := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return temperatureOf(x, thr) <= temperatureOf(y, thr)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestTempVectorString(t *testing.T) {
	v := TempVector{Method: "foo", CallIndex: 3, Temps: []int{0, 2, 0}}
	want := "⟨t0,t2,t0⟩3_foo"
	if got := v.String(); got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestJITTraceHashing(t *testing.T) {
	a := newJITTrace(10)
	b := newJITTrace(10)
	a.add(TempVector{Method: "f", CallIndex: 1, Temps: []int{0}})
	b.add(TempVector{Method: "f", CallIndex: 1, Temps: []int{0}})
	if a.Key() != b.Key() {
		t.Error("identical traces must hash equal")
	}
	b.add(TempVector{Method: "f", CallIndex: 2, Temps: []int{1}})
	if a.Key() == b.Key() {
		t.Error("different traces must hash different")
	}
	// Capped retention still hashes everything.
	c := newJITTrace(1)
	d := newJITTrace(1)
	for i := int64(1); i <= 5; i++ {
		c.add(TempVector{Method: "f", CallIndex: i, Temps: []int{0}})
		d.add(TempVector{Method: "f", CallIndex: i, Temps: []int{0}})
	}
	d.add(TempVector{Method: "f", CallIndex: 6, Temps: []int{2}})
	if c.Key() == d.Key() {
		t.Error("hash must cover vectors beyond the retention cap")
	}
	if len(c.Vectors) != 1 || c.NTotal != 5 {
		t.Errorf("cap bookkeeping: kept=%d total=%d", len(c.Vectors), c.NTotal)
	}
}

func TestHeapHandleBasics(t *testing.T) {
	h := NewHeap(1 << 16)
	a := h.Alloc(2 /* KindInt */, 4)
	if !h.IsHandle(a) || h.IsHandle(a+100) || h.IsHandle(0) || h.IsHandle(-1) {
		t.Error("handle validity wrong")
	}
	if h.Get(a).Len() != 4 {
		t.Errorf("len = %d", h.Get(a).Len())
	}
	if err := h.VerifyAll(); err != nil {
		t.Errorf("fresh heap corrupt: %v", err)
	}
	// Corrupt the canary: VerifyAll and Collect must notice.
	h.Get(a).Data[4] = 12345
	if err := h.VerifyAll(); err == nil {
		t.Error("corruption not detected")
	}
	if err := h.Collect(func(yield func(int64)) { yield(a) }); err == nil {
		t.Error("collect missed corruption")
	}
}

func TestHeapCollectFreesUnreachable(t *testing.T) {
	h := NewHeap(1 << 16)
	live := h.Alloc(2, 8)
	dead := h.Alloc(2, 8)
	if err := h.Collect(func(yield func(int64)) { yield(live) }); err != nil {
		t.Fatal(err)
	}
	if h.Get(live) == nil {
		t.Error("live object freed")
	}
	if h.Get(dead) != nil {
		t.Error("dead object retained")
	}
	if h.Freed != 1 {
		t.Errorf("freed = %d", h.Freed)
	}
}
