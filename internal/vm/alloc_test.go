package vm

import "testing"

// TestSteadyStateRunAllocations pins the allocation cost of the
// steady-state run path: once a worker's Scratch has been sized by a
// first run, repeat runs of a program must allocate only a small,
// fixed number of objects (the VM struct, the Result/Output pair, and
// a handful of bookkeeping slices) — no per-step or per-frame
// allocation. A regression here silently erodes campaign throughput
// long before any benchmark is rerun, so the bound fails loudly.
func TestSteadyStateRunAllocations(t *testing.T) {
	bp := compileSrc(t, `class T {
        int f;
        int work(int n) {
            int a = 0;
            for (int i = 0; i < n; i++) { a += i ^ (a >> 3); f = a; }
            return a;
        }
        void main() {
            int s = 0;
            for (int i = 0; i < 40; i++) { s += work(500); }
            print(s);
        }
    }`)

	scratch := &Scratch{}
	cfg := Config{Name: "steady", Scratch: scratch}
	if res := Run(cfg, bp); res.Output.Term != TermNormal {
		t.Fatalf("warm-up run: term = %v (%s)", res.Output.Term, res.Output.Detail)
	}

	avg := testing.AllocsPerRun(20, func() {
		Run(cfg, bp)
	})
	// Measured ~8 allocs/run on the pure-interpreter path; 32 leaves
	// room for small bookkeeping changes while still catching any
	// per-frame or per-step allocation (hundreds per run).
	if avg > 32 {
		t.Errorf("steady-state run allocates %.0f objects/run, want <= 32", avg)
	}
}
