package vm

// Action tells the dispatcher how to execute a method call or react to
// a hot back edge.
type Action int

const (
	// ActInterpret: run (or keep running) in the interpreter.
	ActInterpret Action = iota
	// ActCompile: ensure a compiled version at Tier exists and run it.
	ActCompile
	// ActUseCompiled: run the best already-compiled version, if any.
	ActUseCompiled
)

// Decision is a policy verdict.
type Decision struct {
	Action Action
	Tier   int
}

// Policy decides when methods are compiled and whether calls execute
// compiled code. The default CounterPolicy realizes ordinary
// threshold-driven tiered compilation; ForcedPolicy gives complete
// external control, which is the "ideal realization" of compilation
// space exploration that Section 3.2 describes (possible here because
// we own the VM).
type Policy interface {
	// OnEntry is consulted at every method call, after the invocation
	// counter has been incremented.
	OnEntry(st *MethodState) Decision
	// OnBackEdge is consulted at every interpreted loop back edge,
	// after the back-edge counter has been incremented. ActCompile
	// triggers OSR compilation at the returned tier; ActUseCompiled
	// enters the already-cached OSR entry for the loop (a no-op when
	// none is cached).
	OnBackEdge(st *MethodState, loopID int) Decision
}

// CounterPolicy implements classic threshold-based tiered compilation:
// crossing Z_i at a method entry compiles at tier i; crossing the OSR
// threshold at a back edge OSR-compiles the enclosing loop.
type CounterPolicy struct {
	// EntryThresholds are Z_1..Z_N for method invocation counters.
	EntryThresholds []int64
	// OSRThresholds are the back-edge thresholds per tier (same
	// length).
	OSRThresholds []int64
}

// OnEntry implements Policy.
func (p *CounterPolicy) OnEntry(st *MethodState) Decision {
	inv := st.Counters.Invocations
	tier := temperatureOf(inv, p.EntryThresholds)
	if tier == 0 {
		return Decision{Action: ActUseCompiled}
	}
	if st.HighestTier() >= tier {
		return Decision{Action: ActUseCompiled}
	}
	return Decision{Action: ActCompile, Tier: tier}
}

// OnBackEdge implements Policy.
func (p *CounterPolicy) OnBackEdge(st *MethodState, loopID int) Decision {
	be := st.Counters.Backedge[loopID]
	tier := temperatureOf(be, p.OSRThresholds)
	if tier == 0 {
		return Decision{Action: ActInterpret}
	}
	if st.osrTier(loopID) >= tier {
		// Reuse the cached version: requesting ActCompile here would
		// ask for a redundant OSR recompilation on every hot back edge.
		return Decision{Action: ActUseCompiled, Tier: tier}
	}
	return Decision{Action: ActCompile, Tier: tier}
}

// ForceChoice says how one specific method must execute.
type ForceChoice int

const (
	ForceDefault   ForceChoice = iota // fall back to counters
	ForceInterpret                    // always interpret
	ForceCompile                      // always run compiled code
)

// ForcedPolicy grants complete control over the interleaving between
// interpretation and compilation: per method, or per (method, call
// index) via Choice. It is used to enumerate compilation spaces
// exhaustively (Figure 1) and by the "traditional approach" baseline
// (-Xjit:count=0 in Section 4.3, i.e. ForceCompile for everything).
type ForcedPolicy struct {
	// Tier used for forced compilations (defaults to 1 when zero).
	Tier int
	// Methods maps method name to a fixed choice.
	Methods map[string]ForceChoice
	// Choice, when non-nil, decides per dynamic call (callIndex is
	// 1-based); it overrides Methods.
	Choice func(method string, callIndex int64) ForceChoice
	// Fallback handles ForceDefault decisions; nil means interpret.
	Fallback Policy
	// DisableOSR suppresses OSR compilation entirely.
	DisableOSR bool
}

func (p *ForcedPolicy) tier() int {
	if p.Tier <= 0 {
		return 1
	}
	return p.Tier
}

func (p *ForcedPolicy) choiceFor(st *MethodState) ForceChoice {
	if p.Choice != nil {
		if c := p.Choice(st.Name, st.Counters.Invocations); c != ForceDefault {
			return c
		}
	}
	if p.Methods != nil {
		return p.Methods[st.Name]
	}
	return ForceDefault
}

// OnEntry implements Policy.
func (p *ForcedPolicy) OnEntry(st *MethodState) Decision {
	switch p.choiceFor(st) {
	case ForceInterpret:
		return Decision{Action: ActInterpret}
	case ForceCompile:
		return Decision{Action: ActCompile, Tier: p.tier()}
	}
	if p.Fallback != nil {
		return p.Fallback.OnEntry(st)
	}
	return Decision{Action: ActInterpret}
}

// OnBackEdge implements Policy.
func (p *ForcedPolicy) OnBackEdge(st *MethodState, loopID int) Decision {
	if p.DisableOSR {
		return Decision{Action: ActInterpret}
	}
	if p.Fallback != nil && p.choiceFor(st) == ForceDefault {
		return p.Fallback.OnBackEdge(st, loopID)
	}
	return Decision{Action: ActInterpret}
}
