package vm

import (
	"artemis/internal/bytecode"
)

// Scratch is reusable per-worker VM memory. A campaign worker creates
// one Scratch and threads it through every vm.Config it builds; each
// vm.New resets and adopts it, so steady-state execution reuses the
// previous run's frame arena, heap backing arrays, field slice, and
// per-method state instead of reallocating them millions of times.
//
// A Scratch must never be shared between concurrently running VMs: it
// is exactly as single-threaded as the VM using it. Reuse is invisible
// to program semantics — every reused buffer is reset to the state a
// fresh allocation would have had — so results, traces, stats, and
// metrics are byte-identical with or without a Scratch.
type Scratch struct {
	arena  frameArena
	heap   *Heap
	flds   []int64
	states []MethodState
	ptrs   []*MethodState
	frames []interpFrame
}

// fieldsFor returns a zeroed field slice of length n, reusing backing.
func (s *Scratch) fieldsFor(n int) []int64 {
	if cap(s.flds) < n {
		s.flds = make([]int64, n)
	} else {
		s.flds = s.flds[:n]
		clear(s.flds)
	}
	return s.flds
}

// heapFor returns the reusable heap, reset to an empty heap with the
// given limit and with data-slice pooling enabled.
func (s *Scratch) heapFor(limitWords int64) *Heap {
	if s.heap == nil {
		s.heap = NewHeap(limitWords)
		s.heap.enablePool()
		return s.heap
	}
	s.heap.Reset(limitWords)
	return s.heap
}

// statesFor returns per-method states for prog, reusing the previous
// run's allocations (including profile maps and counter slices).
func (s *Scratch) statesFor(prog *bytecode.Program) []*MethodState {
	n := len(prog.Methods)
	if cap(s.states) < n {
		s.states = make([]MethodState, n)
		s.ptrs = make([]*MethodState, n)
	} else {
		s.states = s.states[:n]
		s.ptrs = s.ptrs[:n]
	}
	for i := range s.states {
		s.ptrs[i] = &s.states[i]
		resetMethodState(&s.states[i], prog.Methods[i], i)
	}
	return s.ptrs
}

// resetMethodState (re)initializes one MethodState in place to exactly
// the state New would have built fresh for method m.
func resetMethodState(st *MethodState, m *bytecode.Method, i int) {
	st.Name = m.Name
	st.Index = i
	st.Counters.Invocations = 0
	st.Counters.Backedge = resizeZero(st.Counters.Backedge, len(m.Loops))
	if st.Profile == nil {
		st.Profile = newMethodProfile()
	} else {
		st.Profile.reset()
	}
	st.compiled = [maxTiers]CompiledCode{}
	st.hiTier = 0
	st.failedTiers = [maxTiers]bool{}
	st.osr = resizeNil(st.osr, len(m.Loops))
	st.osrTiers = resizeZeroInt(st.osrTiers, len(m.Loops))
	st.DeoptCount = 0
	st.Compilations = 0
	st.specDisabled = false
}

func resizeZero(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func resizeZeroInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func resizeNil(s []CompiledCode, n int) []CompiledCode {
	if cap(s) < n {
		return make([]CompiledCode, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// ---------------------------------------------------------------------------
// Frame arena
// ---------------------------------------------------------------------------

// frameArena hands out locals and operand-stack slices for interpreter
// frames from chunked blocks that never move (so slices stay valid for
// the frame's whole lifetime) with LIFO mark/release. Allocation does
// NOT zero: every caller either clears the slice (locals) or writes
// each slot before it becomes observable (operand stacks are only read
// below sp, and only written slots are ever below sp).
type frameArena struct {
	blocks [][]int64
	block  int // index of the block currently allocated from
	off    int // next free word in blocks[block]
}

const arenaBlockWords = 16384

type arenaMark struct{ block, off int }

func (a *frameArena) reset() { a.block, a.off = 0, 0 }

func (a *frameArena) mark() arenaMark { return arenaMark{a.block, a.off} }

// release returns the arena to a previous mark. Marks must be released
// in LIFO order (guaranteed by the strictly nested call structure).
func (a *frameArena) release(m arenaMark) { a.block, a.off = m.block, m.off }

// alloc returns an n-word slice with capacity clamped to n (so an
// accidental append cannot grow into a neighbouring frame).
func (a *frameArena) alloc(n int) []int64 {
	if n > arenaBlockWords {
		// Oversized frame (pathological MaxStack/locals): fall back to
		// a dedicated allocation rather than growing the block size.
		return make([]int64, n)
	}
	for {
		if a.block < len(a.blocks) {
			b := a.blocks[a.block]
			if a.off+n <= len(b) {
				s := b[a.off : a.off+n : a.off+n]
				a.off += n
				return s
			}
			a.block++
			a.off = 0
			continue
		}
		a.blocks = append(a.blocks, make([]int64, arenaBlockWords))
	}
}

// interpFrame is one live interpreter frame, scanned by the GC: locals
// in full, stack up to sp. The interpreter syncs sp into the frame
// before every operation that can trigger a collection.
type interpFrame struct {
	locals []int64
	stack  []int64
	sp     int
}
