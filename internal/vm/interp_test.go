package vm

import (
	"strings"
	"testing"

	"artemis/internal/bytecode"
	"artemis/internal/lang/parser"
	"artemis/internal/lang/sem"
)

// compileSrc parses, checks, and compiles MJ source.
func compileSrc(t *testing.T, src string) *bytecode.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	bp, err := bytecode.Compile(info)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return bp
}

// runInterp runs src on a pure interpreter and returns the output.
func runInterp(t *testing.T, src string) *Output {
	t.Helper()
	bp := compileSrc(t, src)
	res := Run(Config{Name: "interp-only"}, bp)
	return res.Output
}

// expectLines asserts a normal run printing exactly the given lines.
func expectLines(t *testing.T, src string, want ...string) {
	t.Helper()
	out := runInterp(t, src)
	if out.Term != TermNormal {
		t.Fatalf("term = %v (%s), want normal", out.Term, out.Detail)
	}
	if out.NLines != len(want) {
		t.Fatalf("printed %d lines %v, want %d", out.NLines, out.Lines, len(want))
	}
	for i, w := range want {
		if out.Lines[i] != w {
			t.Errorf("line %d = %q, want %q", i, out.Lines[i], w)
		}
	}
}

func TestArithmetic(t *testing.T) {
	expectLines(t, `class T { void main() {
        print(1 + 2 * 3);
        print(10 / 3);
        print(-10 / 3);
        print(10 % 3);
        print(-10 % 3);
        print(7 & 3);
        print(7 | 8);
        print(7 ^ 5);
        print(1 << 5);
        print(-16 >> 2);
        print(-16 >>> 28);
        print(~5);
        print(-(3));
    } }`,
		"7", "3", "-3", "1", "-1", "3", "15", "2", "32", "-4", "15", "-6", "-3")
}

func TestInt32Wrapping(t *testing.T) {
	expectLines(t, `class T { void main() {
        int max = 2147483647;
        print(max + 1);
        print(max * 2);
        int min = -2147483647 - 1;
        print(min - 1);
        print(min / -1);
        print(min % -1);
        print(min * -1);
    } }`,
		"-2147483648", "-2", "2147483647", "-2147483648", "0", "-2147483648")
}

func TestLongArithmetic(t *testing.T) {
	expectLines(t, `class T { void main() {
        long max = 9223372036854775807L;
        print(max + 1L);
        long x = 1000000000L * 1000000000L;
        print(x);
        print(x >> 10);
        print(x >>> 10);
        long neg = -1L;
        print(neg >>> 1);
    } }`,
		"-9223372036854775808", "1000000000000000000",
		"976562500000000", "976562500000000", "9223372036854775807")
}

func TestShiftCountMasking(t *testing.T) {
	expectLines(t, `class T { void main() {
        int one = 1;
        print(one << 32);
        print(one << 33);
        long l = 1L;
        print(l << 64);
        print(l << 65);
    } }`,
		"1", "2", "1", "2")
}

func TestPromotionAndCast(t *testing.T) {
	expectLines(t, `class T { void main() {
        int i = -1;
        long l = 4294967296L;
        print(i + l);
        print((int)l);
        print((int)(l + 5L));
        print((long)i);
        long big = 2147483648L;
        print((int)big);
    } }`,
		"4294967295", "0", "5", "-1", "-2147483648")
}

func TestBooleansAndShortCircuit(t *testing.T) {
	expectLines(t, `class T {
        int calls = 0;
        boolean side() { calls++; return true; }
        void main() {
            boolean f = false;
            print(f && side());
            print(calls);
            print(true || side());
            print(calls);
            print(f | side());
            print(calls);
            print(!f);
            print(f ^ true);
        }
    }`,
		"false", "0", "true", "0", "true", "1", "true", "true")
}

func TestControlFlow(t *testing.T) {
	expectLines(t, `class T { void main() {
        int sum = 0;
        for (int i = 0; i < 10; i++) {
            if (i % 2 == 0) { continue; }
            if (i == 9) { break; }
            sum += i;
        }
        print(sum);
        int n = 0;
        while (n < 5) { n += 2; }
        print(n);
        int j = 3;
        print(j > 2 ? 100 : 200);
    } }`,
		"16", "6", "100")
}

func TestSwitchFallthrough(t *testing.T) {
	expectLines(t, `class T {
        int f(int x) {
            int r = 0;
            switch (x) {
            case 1:
                r += 1;
            case 2:
                r += 2;
                break;
            case 3:
                r += 3;
                break;
            default:
                r += 100;
            }
            return r;
        }
        void main() {
            print(f(1));
            print(f(2));
            print(f(3));
            print(f(4));
        }
    }`,
		"3", "2", "3", "100")
}

func TestArrays(t *testing.T) {
	expectLines(t, `class T { void main() {
        int[] a = new int[5];
        for (int i = 0; i < a.length; i++) { a[i] = i * i; }
        print(a[4]);
        print(a.length);
        int[] b = new int[]{10, 20, 30};
        b[1] += 5;
        print(b[1]);
        long[] c = new long[]{1L << 40};
        print(c[0]);
        boolean[] d = new boolean[2];
        d[0] = true;
        print(d[0]);
        print(d[1]);
    } }`,
		"16", "5", "25", "1099511627776", "true", "false")
}

func TestFieldsAndClinit(t *testing.T) {
	expectLines(t, `class T {
        int a = 5;
        long b = a + 10;
        int[] arr = new int[]{1, 2, 3};
        int noinit;
        int[] defarr;
        void main() {
            print(a);
            print(b);
            print(arr[2]);
            print(noinit);
            print(defarr.length);
            a = 42;
            print(a);
        }
    }`,
		"5", "15", "3", "0", "0", "42")
}

func TestMethodCallsAndRecursion(t *testing.T) {
	expectLines(t, `class T {
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        long mix(int a, long b, boolean c) {
            if (c) { return a + b; }
            return a - b;
        }
        void main() {
            print(fib(15));
            print(mix(3, 4L, true));
            print(mix(3, 4L, false));
        }
    }`,
		"610", "7", "-1")
}

func TestCompoundAssignNarrowing(t *testing.T) {
	expectLines(t, `class T { void main() {
        int i = 2147483647;
        i += 1L;
        print(i);
        int j = 10;
        long big = 4294967296L;
        j += big;
        print(j);
        int k = -8;
        k >>>= 1;
        print(k);
        long l = 7L;
        l <<= 62;
        print(l);
    } }`,
		"-2147483648", "10", "2147483644", "-4611686018427387904")
}

func TestExceptions(t *testing.T) {
	cases := []struct {
		name, src, wantDetail string
	}{
		{"div by zero", `class T { int z = 0; void main() { print(1 / z); } }`, "ArithmeticException"},
		{"mod by zero", `class T { long z = 0L; void main() { print(1L % z); } }`, "ArithmeticException"},
		{"index oob", `class T { void main() { int[] a = new int[3]; print(a[3]); } }`, "ArrayIndexOutOfBoundsException"},
		{"index negative", `class T { void main() { int[] a = new int[3]; int i = -1; a[i] = 5; } }`, "ArrayIndexOutOfBoundsException"},
		{"negative size", `class T { void main() { int n = -2; int[] a = new int[n]; print(a.length); } }`, "NegativeArraySizeException"},
		{"stack overflow", `class T { int f(int n) { return f(n + 1); } void main() { print(f(0)); } }`, "StackOverflowError"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := runInterp(t, tc.src)
			if out.Term != TermException {
				t.Fatalf("term = %v (%s), want exception", out.Term, out.Detail)
			}
			if !strings.Contains(out.Detail, tc.wantDetail) {
				t.Errorf("detail %q, want containing %q", out.Detail, tc.wantDetail)
			}
		})
	}
}

func TestPrintsBeforeException(t *testing.T) {
	out := runInterp(t, `class T { int z = 0; void main() { print(1); print(2); print(3 / z); } }`)
	if out.Term != TermException || out.NLines != 2 {
		t.Fatalf("term=%v lines=%d, want exception after 2 lines", out.Term, out.NLines)
	}
}

func TestStepLimitTimeout(t *testing.T) {
	bp := compileSrc(t, `class T { void main() { int x = 0; while (true) { x++; } } }`)
	res := Run(Config{StepLimit: 10000}, bp)
	if res.Output.Term != TermTimeout {
		t.Fatalf("term = %v, want timeout", res.Output.Term)
	}
}

func TestGCReclaimsGarbage(t *testing.T) {
	bp := compileSrc(t, `class T {
        long f() { long[] a = new long[100]; a[99] = 7; return a[99]; }
        void main() {
            long sum = 0;
            for (int i = 0; i < 1000; i++) { sum += f(); }
            print(sum);
        }
    }`)
	res := Run(Config{HeapWords: 4096, GCInterval: 16}, bp)
	if res.Output.Term != TermNormal {
		t.Fatalf("term = %v (%s)", res.Output.Term, res.Output.Detail)
	}
	if res.Output.Lines[0] != "7000" {
		t.Errorf("output %v", res.Output.Lines)
	}
	if res.GCRuns == 0 {
		t.Error("expected at least one GC run")
	}
}

func TestGCKeepsLiveArrays(t *testing.T) {
	bp := compileSrc(t, `class T {
        int[] keep = new int[]{1, 2, 3};
        void main() {
            int[] local = new int[]{9, 8, 7};
            for (int i = 0; i < 500; i++) {
                int[] junk = new int[50];
                junk[0] = i;
            }
            print(keep[2] + local[0]);
        }
    }`)
	res := Run(Config{HeapWords: 8192, GCInterval: 8}, bp)
	if res.Output.Term != TermNormal || res.Output.Lines[0] != "12" {
		t.Fatalf("term=%v out=%v (%s)", res.Output.Term, res.Output.Lines, res.Output.Detail)
	}
	if res.GCRuns == 0 {
		t.Error("expected GC activity")
	}
}

func TestOutOfMemory(t *testing.T) {
	bp := compileSrc(t, `class T {
        void main() {
            long[] a = new long[1000];   // fits
            long[] b = new long[10000];  // cannot fit even after GC
            print(a[0] + b[0]);
        }
    }`)
	res := Run(Config{HeapWords: 5000}, bp)
	if res.Output.Term != TermException || !strings.Contains(res.Output.Detail, "OutOfMemoryError") {
		t.Fatalf("term=%v detail=%q, want OOM", res.Output.Term, res.Output.Detail)
	}
}

func TestOutputHashCoversAllLines(t *testing.T) {
	bp := compileSrc(t, `class T { void main() { for (int i = 0; i < 100; i++) { print(i); } } }`)
	a := Run(Config{MaxOutputLines: 10}, bp).Output
	b := Run(Config{MaxOutputLines: 10}, bp).Output
	if !a.Equivalent(b) {
		t.Error("identical runs should be equivalent")
	}
	bp2 := compileSrc(t, `class T { void main() { for (int i = 0; i < 100; i++) { print(i == 50 ? -1 : i); } } }`)
	c := Run(Config{MaxOutputLines: 10}, bp2).Output
	if a.Equivalent(c) {
		t.Error("runs differing past the retained prefix must not be equivalent")
	}
}

func TestDeterminism(t *testing.T) {
	src := `class T {
        int[] data = new int[]{5, 3, 8, 1, 9, 2, 7};
        void sort() {
            for (int i = 0; i < data.length; i++) {
                for (int j = i + 1; j < data.length; j++) {
                    if (data[j] < data[i]) {
                        int tmp = data[i]; data[i] = data[j]; data[j] = tmp;
                    }
                }
            }
        }
        void main() {
            sort();
            for (int i = 0; i < data.length; i++) { print(data[i]); }
        }
    }`
	a := runInterp(t, src)
	b := runInterp(t, src)
	if a.Key() != b.Key() {
		t.Errorf("non-deterministic interpreter: %q vs %q", a.Key(), b.Key())
	}
	if a.Lines[0] != "1" || a.Lines[6] != "9" {
		t.Errorf("sort output wrong: %v", a.Lines)
	}
}

func TestTemperatureMath(t *testing.T) {
	thr := []int64{100, 1000}
	cases := []struct {
		v    int64
		want int
	}{{0, 0}, {99, 0}, {100, 1}, {999, 1}, {1000, 2}, {1 << 40, 2}}
	for _, tc := range cases {
		if got := temperatureOf(tc.v, thr); got != tc.want {
			t.Errorf("temperatureOf(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	c := Counters{Invocations: 50, Backedge: []int64{200, 30}}
	if got := c.Temperature(thr); got != 1 {
		t.Errorf("method temperature = %d, want 1 (hottest counter rules)", got)
	}
}

func TestBranchProfileCollected(t *testing.T) {
	bp := compileSrc(t, `class T {
        int f(int x) { if (x > 0) { return 1; } return 0; }
        void main() {
            int s = 0;
            for (int i = 0; i < 20; i++) { s += f(i); }
            print(s);
        }
    }`)
	v := New(Config{}, bp)
	v.Run()
	st := v.MethodStateByName("f")
	if st.Counters.Invocations != 20 {
		t.Errorf("f invocations = %d", st.Counters.Invocations)
	}
	total := int64(0)
	for _, b := range st.Profile.Branches {
		total += b.Taken + b.NotTaken
	}
	if total != 20 {
		t.Errorf("branch profile total = %d, want 20", total)
	}
	mainSt := v.MethodStateByName("main")
	if mainSt.Counters.Backedge[0] != 20 {
		t.Errorf("main loop backedges = %d, want 20", mainSt.Counters.Backedge[0])
	}
}
