package vm

import (
	"fmt"
	"math/bits"

	"artemis/internal/lang/ast"
)

// Array is one heap-allocated array object. Data carries one extra
// trailing canary word that the GC verifies during sweep; a JIT bug
// that emits an out-of-bounds store corrupts the canary and surfaces
// as a crash inside the garbage collector — the failure mode the paper
// reports as dominant for OpenJ9 (Table 2).
type Array struct {
	Elem   ast.Kind
	Data   []int64 // length Len+1; Data[Len] is the canary
	marked bool
}

// Len returns the program-visible array length.
func (a *Array) Len() int64 { return int64(len(a.Data) - 1) }

func canaryFor(handle int64) int64 { return 0x5ca1ab1e ^ handle }

// Heap is a non-moving mark-sweep heap of arrays. Handles are opaque
// positive int64 values (index+1) and are never compacted, so the
// conservative root scan used for compiled frames is safe.
type Heap struct {
	objects    []*Array
	free       []int
	limitWords int64
	usedWords  int64
	peakWords  int64 // high-water mark of usedWords
	allocs     int64 // allocations since last GC

	// gcStats
	Collections int64
	Freed       int64

	// pool, when non-nil, recycles Data backing slices (bucketed by
	// power-of-two capacity) and Array headers across frees and runs.
	// Recycled memory is fully re-zeroed on reuse, so a pooled heap is
	// observably identical to a fresh one. Enabled for Scratch-owned
	// heaps (campaign workers); plain NewHeap heaps never pool.
	pool *heapPool
}

// heapPool holds retired allocations for reuse.
type heapPool struct {
	data [48][][]int64 // bucket i holds slices with cap == 1<<i
	arrs []*Array
}

// poolClass returns the bucket index for an allocation of need words:
// the smallest c with 1<<c >= need.
func poolClass(need int64) int {
	return bits.Len64(uint64(need - 1))
}

func (h *Heap) enablePool() {
	if h.pool == nil {
		h.pool = &heapPool{}
	}
}

// allocData returns a zeroed data slice of length need, recycling from
// the pool when possible.
func (h *Heap) allocData(need int64) []int64 {
	if h.pool != nil {
		c := poolClass(need)
		if l := h.pool.data[c]; len(l) > 0 {
			d := l[len(l)-1][:need]
			h.pool.data[c] = l[:len(l)-1]
			clear(d)
			return d
		}
		return make([]int64, need, int64(1)<<c)
	}
	return make([]int64, need)
}

// retire returns a freed object's memory to the pool.
func (h *Heap) retire(a *Array) {
	if h.pool == nil {
		return
	}
	if c := cap(a.Data); c > 0 && c&(c-1) == 0 {
		h.pool.data[poolClass(int64(c))] = append(h.pool.data[poolClass(int64(c))], a.Data[:0])
	}
	a.Data = nil
	h.pool.arrs = append(h.pool.arrs, a)
}

// Reset empties the heap for a fresh run, retiring every object's
// backing memory into the pool and zeroing all accounting, so the heap
// behaves exactly like NewHeap(limitWords) from the program's point of
// view.
func (h *Heap) Reset(limitWords int64) {
	for i, o := range h.objects {
		if o != nil {
			h.retire(o)
			h.objects[i] = nil
		}
	}
	h.objects = h.objects[:0]
	h.free = h.free[:0]
	h.limitWords = limitWords
	h.usedWords = 0
	h.peakWords = 0
	h.allocs = 0
	h.Collections = 0
	h.Freed = 0
}

// NewHeap returns a heap limited to limitWords payload words
// (1 word = 8 bytes; the paper's setup uses a 1 GiB Java heap, the
// default here is far smaller since test programs are tiny).
func NewHeap(limitWords int64) *Heap {
	return &Heap{limitWords: limitWords}
}

// Used returns the payload words currently allocated.
func (h *Heap) Used() int64 { return h.usedWords }

// PeakWords returns the allocation high-water mark in payload words.
func (h *Heap) PeakWords() int64 { return h.peakWords }

// NumObjects returns the number of live (non-freed) slots.
func (h *Heap) NumObjects() int {
	n := 0
	for _, o := range h.objects {
		if o != nil {
			n++
		}
	}
	return n
}

// AllocsSinceGC returns allocations since the last collection.
func (h *Heap) AllocsSinceGC() int64 { return h.allocs }

// Alloc creates a new array and returns its handle. The caller is
// responsible for triggering GC / OOM policy; Alloc only tracks
// accounting.
func (h *Heap) Alloc(elem ast.Kind, n int64) int64 {
	var a *Array
	if h.pool != nil && len(h.pool.arrs) > 0 {
		a = h.pool.arrs[len(h.pool.arrs)-1]
		h.pool.arrs = h.pool.arrs[:len(h.pool.arrs)-1]
		*a = Array{Elem: elem, Data: h.allocData(n + 1)}
	} else {
		a = &Array{Elem: elem, Data: h.allocData(n + 1)}
	}
	var idx int
	if len(h.free) > 0 {
		idx = h.free[len(h.free)-1]
		h.free = h.free[:len(h.free)-1]
		h.objects[idx] = a
	} else {
		idx = len(h.objects)
		h.objects = append(h.objects, a)
	}
	handle := int64(idx + 1)
	a.Data[n] = canaryFor(handle)
	h.usedWords += n + 1
	if h.usedWords > h.peakWords {
		h.peakWords = h.usedWords
	}
	h.allocs++
	return handle
}

// WouldExceed reports whether allocating n more words would exceed the
// heap limit.
func (h *Heap) WouldExceed(n int64) bool {
	return h.usedWords+n+1 > h.limitWords
}

// Get returns the array for a handle, or nil for invalid/freed handles.
func (h *Heap) Get(handle int64) *Array {
	idx := handle - 1
	if idx < 0 || idx >= int64(len(h.objects)) {
		return nil
	}
	return h.objects[idx]
}

// IsHandle reports whether v currently names a live object
// (used by the conservative root scan).
func (h *Heap) IsHandle(v int64) bool { return h.Get(v) != nil }

// CorruptionError is returned by Collect when heap verification fails;
// the VM reports it as a crash attributed to the garbage collector.
type CorruptionError struct {
	Handle int64
	Detail string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("GC: heap corruption detected on object %d: %s", e.Handle, e.Detail)
}

// Collect runs a stop-the-world mark-sweep collection. roots must call
// the yield function for every potential root value; non-handle values
// are ignored (conservative scanning). During sweep every live object's
// canary is verified, modeling the crash-in-GC symptom of heap
// corruption by miscompiled code.
func (h *Heap) Collect(roots func(yield func(v int64))) error {
	for _, o := range h.objects {
		if o != nil {
			o.marked = false
		}
	}
	roots(func(v int64) {
		if a := h.Get(v); a != nil {
			a.marked = true
		}
	})
	var corrupt *CorruptionError
	for i, o := range h.objects {
		if o == nil {
			continue
		}
		handle := int64(i + 1)
		n := int64(len(o.Data) - 1)
		if o.Data[n] != canaryFor(handle) {
			if corrupt == nil {
				corrupt = &CorruptionError{Handle: handle,
					Detail: fmt.Sprintf("canary %#x != %#x", o.Data[n], canaryFor(handle))}
			}
			continue // keep the object; the VM is about to crash anyway
		}
		if !o.marked {
			h.objects[i] = nil
			h.free = append(h.free, i)
			h.usedWords -= n + 1
			h.Freed++
			h.retire(o)
		}
	}
	h.allocs = 0
	h.Collections++
	if corrupt != nil {
		return corrupt
	}
	return nil
}

// VerifyAll checks every live object's canary without collecting
// (used by tests).
func (h *Heap) VerifyAll() error {
	for i, o := range h.objects {
		if o == nil {
			continue
		}
		handle := int64(i + 1)
		n := int64(len(o.Data) - 1)
		if o.Data[n] != canaryFor(handle) {
			return &CorruptionError{Handle: handle, Detail: "canary mismatch"}
		}
	}
	return nil
}
