package bytecode

import (
	"fmt"

	"artemis/internal/lang/sem"
)

// CompileDelta lowers a mutant program using its seed's compiled
// program as a method-granular cache: methods whose bodies the
// mutation left untouched (not in changed) reuse the seed's compiled,
// verified, and pre-decoded *Method objects outright; only changed
// methods are lowered and verified anew.
//
// Reuse is sound because JoNM never renames, reorders, or re-signs
// methods and never edits existing fields — it only rewrites method
// bodies and appends fresh fields. Method and field indices are
// therefore stable between seed and mutant, which is asserted below
// rather than assumed. Per-method verification depends on other
// methods only through NParams/Ret (both stable), so a reused method's
// verification verdict and MaxStack carry over unchanged, and the
// result is instruction-identical to a cold Compile of the mutant.
//
// The synthetic <clinit> is reused only when no fields were appended:
// a new field with an initializer (MI's control field) changes the
// initializer sequence, so <clinit> is recompiled in that case.
func CompileDelta(info *sem.Info, base *Program, changed map[string]bool) (*Program, error) {
	cls := info.Prog.Class

	nbase := len(base.Methods)
	if base.ClinitIndex >= 0 {
		nbase--
	}
	if len(cls.Methods) != nbase {
		return nil, fmt.Errorf("bytecode: delta compile: method count changed (%d -> %d)", nbase, len(cls.Methods))
	}
	if len(cls.Fields) < len(base.Fields) {
		return nil, fmt.Errorf("bytecode: delta compile: fields removed (%d -> %d)", len(base.Fields), len(cls.Fields))
	}
	for i, bf := range base.Fields {
		if cls.Fields[i].Name != bf.Name || !cls.Fields[i].Type.Equal(bf.Type) {
			return nil, fmt.Errorf("bytecode: delta compile: field %d changed (%s -> %s)", i, bf.Name, cls.Fields[i].Name)
		}
	}

	p := &Program{ClassName: cls.Name, MainIndex: base.MainIndex, ClinitIndex: -1}
	for _, f := range cls.Fields {
		p.Fields = append(p.Fields, Field{Name: f.Name, Type: f.Type})
	}

	var fresh []*Method
	for i, m := range cls.Methods {
		bm := base.Methods[i]
		if bm.Name != m.Name {
			return nil, fmt.Errorf("bytecode: delta compile: method %d renamed (%s -> %s)", i, bm.Name, m.Name)
		}
		if !changed[m.Name] {
			if bm.NParams != len(m.Params) || !bm.Ret.Equal(m.Ret) {
				return nil, fmt.Errorf("bytecode: delta compile: signature of %s changed", m.Name)
			}
			p.Methods = append(p.Methods, bm)
			continue
		}
		cm, err := compileMethod(info, m, i)
		if err != nil {
			return nil, err
		}
		p.Methods = append(p.Methods, cm)
		fresh = append(fresh, cm)
	}

	if len(cls.Fields) == len(base.Fields) {
		// No fields appended: the initializer sequence is the seed's.
		if base.ClinitIndex >= 0 {
			p.ClinitIndex = base.ClinitIndex
			p.Methods = append(p.Methods, base.Methods[base.ClinitIndex])
		}
	} else if cl := compileClinit(cls); cl != nil {
		cl.Index = len(p.Methods)
		p.ClinitIndex = cl.Index
		p.Methods = append(p.Methods, cl)
		fresh = append(fresh, cl)
	}

	for _, m := range fresh {
		if err := verifyMethod(p, m); err != nil {
			return nil, fmt.Errorf("bytecode: method %s: %w", m.Name, err)
		}
		p.predecode(m)
	}
	return p, nil
}

// MustCompileDelta is CompileDelta for mutants known to be valid
// (JoNM output); it panics on error.
func MustCompileDelta(info *sem.Info, base *Program, changed map[string]bool) *Program {
	p, err := CompileDelta(info, base, changed)
	if err != nil {
		panic(fmt.Sprintf("bytecode: internal delta compile error: %v", err))
	}
	return p
}
