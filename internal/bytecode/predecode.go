package bytecode

import (
	"fmt"

	"artemis/internal/lang/ast"
)

// DOp enumerates decoded opcodes: the Instr opcode space flattened so
// that every per-step decision the interpreter used to make from Instr
// flags (Wide arithmetic width, Cond comparison codes, callee arity and
// void-ness, loop-head -> loop-id lookup) is folded into the opcode or
// an immediate at Program construction time. The interpreter dispatch
// loop — the hottest loop in the repo, bounded only by StepLimit —
// then runs on a dense 16-byte instruction word with no re-decoding.
type DOp uint8

const (
	DNop DOp = iota

	DConst // push A
	DLoad  // push locals[A]
	DStore // locals[A] = pop
	DPop
	DDup
	DDup2

	DGetField // push fields[A]
	DPutField // fields[A] = pop

	DNewArr // pop len; push new array handle (elem kind in Kind)
	DALoad
	DAStore
	DArrLen

	// Arithmetic fused by width: the L forms are 64-bit (long), the I
	// forms 32-bit wrapping (int), replicating EvalBinary exactly.
	DAddL
	DAddI
	DSubL
	DSubI
	DMulL
	DMulI
	DDivL
	DDivI
	DRemL
	DRemI
	DAndL
	DAndI
	DOrL
	DOrI
	DXorL
	DXorI
	DShlL
	DShlI
	DShrL
	DShrI
	DUshrL
	DUshrI

	DNegL
	DNegI
	DBitNotL
	DBitNotI
	DL2I

	// CmpSet fused by condition (width-independent, like Cond.Eval).
	DCmpEQ
	DCmpNE
	DCmpLT
	DCmpLE
	DCmpGT
	DCmpGE

	DGoto    // jump to A
	DIfTrue  // pop v; jump to A if v != 0
	DIfFalse // pop v; jump to A if v == 0

	// IfCmp fused by condition: pop b, a; jump to A if a Cond b.
	DIfCmpEQ
	DIfCmpNE
	DIfCmpLT
	DIfCmpLE
	DIfCmpGT
	DIfCmpGE

	DSwitch   // pop v; jump via Switches[A]
	DLoopBack // back-edge to A; B is the resolved loop id

	DCall  // call Methods[A] (B = NParams), push result
	DCallV // call Methods[A] (B = NParams), void

	DRet
	DRetV

	DPrint // pop v, print (value kind in Kind)
)

// DInstr is one pre-decoded instruction: a dense 16-byte word with all
// operands resolved. The decoded stream maps 1:1 onto Method.Code (same
// pc for every instruction), so deopt resume points, profile keys, and
// disassembly line numbers carry over unchanged.
type DInstr struct {
	A    int64 // immediate / slot / field / pc target / method or table index
	B    int32 // loop id (DLoopBack) / callee NParams (DCall, DCallV)
	Op   DOp
	Kind uint8 // ast.Kind for DNewArr / DPrint
}

// widePick returns l for wide (long) instructions and i for int ones.
func widePick(wide bool, l, i DOp) DOp {
	if wide {
		return l
	}
	return i
}

// Predecode fills in the decoded instruction stream of every method
// that does not have one yet. Compile and CompileDelta predecode
// eagerly (so shared programs are never mutated after construction);
// this exported hook exists for hand-assembled test programs.
func (p *Program) Predecode() {
	for _, m := range p.Methods {
		if m.Decoded == nil {
			p.predecode(m)
		}
	}
}

// predecode builds m.Decoded from m.Code. The method must already be
// verified: branch targets and call indices are trusted.
func (p *Program) predecode(m *Method) {
	byHead := map[int]int{}
	for _, l := range m.Loops {
		byHead[l.HeadPC] = l.ID
	}
	d := make([]DInstr, len(m.Code))
	for pc, in := range m.Code {
		o := DInstr{A: in.A, Kind: uint8(in.Kind)}
		switch in.Op {
		case OpNop:
			o.Op = DNop
		case OpConst:
			o.Op = DConst
		case OpLoad:
			o.Op = DLoad
		case OpStore:
			o.Op = DStore
		case OpPop:
			o.Op = DPop
		case OpDup:
			o.Op = DDup
		case OpDup2:
			o.Op = DDup2
		case OpGetField:
			o.Op = DGetField
		case OpPutField:
			o.Op = DPutField
		case OpNewArr:
			o.Op = DNewArr
		case OpALoad:
			o.Op = DALoad
		case OpAStore:
			o.Op = DAStore
		case OpArrLen:
			o.Op = DArrLen
		case OpAdd:
			o.Op = widePick(in.Wide, DAddL, DAddI)
		case OpSub:
			o.Op = widePick(in.Wide, DSubL, DSubI)
		case OpMul:
			o.Op = widePick(in.Wide, DMulL, DMulI)
		case OpDiv:
			o.Op = widePick(in.Wide, DDivL, DDivI)
		case OpRem:
			o.Op = widePick(in.Wide, DRemL, DRemI)
		case OpAnd:
			o.Op = widePick(in.Wide, DAndL, DAndI)
		case OpOr:
			o.Op = widePick(in.Wide, DOrL, DOrI)
		case OpXor:
			o.Op = widePick(in.Wide, DXorL, DXorI)
		case OpShl:
			o.Op = widePick(in.Wide, DShlL, DShlI)
		case OpShr:
			o.Op = widePick(in.Wide, DShrL, DShrI)
		case OpUshr:
			o.Op = widePick(in.Wide, DUshrL, DUshrI)
		case OpNeg:
			o.Op = widePick(in.Wide, DNegL, DNegI)
		case OpBitNot:
			o.Op = widePick(in.Wide, DBitNotL, DBitNotI)
		case OpL2I:
			o.Op = DL2I
		case OpCmpSet:
			o.Op = DCmpEQ + DOp(in.Cond)
		case OpGoto:
			o.Op = DGoto
		case OpIfTrue:
			o.Op = DIfTrue
		case OpIfFalse:
			o.Op = DIfFalse
		case OpIfCmp:
			o.Op = DIfCmpEQ + DOp(in.Cond)
		case OpSwitch:
			o.Op = DSwitch
		case OpLoopBack:
			o.Op = DLoopBack
			o.B = int32(byHead[int(in.A)])
		case OpCall:
			callee := p.Methods[in.A]
			o.B = int32(callee.NParams)
			if callee.Ret.Kind == ast.KindVoid {
				o.Op = DCallV
			} else {
				o.Op = DCall
			}
		case OpRet:
			o.Op = DRet
		case OpRetV:
			o.Op = DRetV
		case OpPrint:
			o.Op = DPrint
		default:
			panic(fmt.Sprintf("bytecode: predecode of unknown opcode %v at pc %d in %s", in.Op, pc, m.Name))
		}
		d[pc] = o
	}
	m.Decoded = d
}
