package bytecode

import (
	"strings"
	"testing"

	"artemis/internal/lang/ast"
	"artemis/internal/lang/parser"
	"artemis/internal/lang/sem"
)

func compile(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	bp, err := Compile(info)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return bp
}

func TestCompileStructure(t *testing.T) {
	bp := compile(t, `class T {
        int f = 3;
        int[] arr = new int[]{1, 2};
        int g(int a, long b) { return a + (int)b; }
        void main() { print(g(1, 2L)); }
    }`)
	if bp.ClassName != "T" {
		t.Errorf("class name %q", bp.ClassName)
	}
	if len(bp.Fields) != 2 {
		t.Errorf("fields %d", len(bp.Fields))
	}
	if bp.MainIndex < 0 || bp.Methods[bp.MainIndex].Name != "main" {
		t.Error("main not found")
	}
	if bp.ClinitIndex < 0 {
		t.Error("clinit expected (explicit field initializers)")
	}
	g := bp.Method("g")
	if g == nil || g.NParams != 2 {
		t.Fatalf("method g: %+v", g)
	}
	if g.MaxStack == 0 {
		t.Error("MaxStack not computed")
	}
}

func TestNoClinitWithoutInitializers(t *testing.T) {
	bp := compile(t, `class T { int a; void main() { print(a); } }`)
	if bp.ClinitIndex != -1 {
		t.Error("no clinit expected for default-initialized fields")
	}
}

func TestLoopsRecorded(t *testing.T) {
	bp := compile(t, `class T { void main() {
        for (int i = 0; i < 3; i++) {
            for (int j = 0; j < 3; j++) { print(i + j); }
        }
        while (false) { }
    } }`)
	m := bp.Method("main")
	if len(m.Loops) != 3 {
		t.Fatalf("loops = %d, want 3", len(m.Loops))
	}
	if m.Loops[0].Depth != 1 || m.Loops[1].Depth != 2 || m.Loops[2].Depth != 1 {
		t.Errorf("loop depths %+v", m.Loops)
	}
	// Every back edge must be an OpLoopBack targeting a recorded head.
	heads := map[int]bool{}
	for _, l := range m.Loops {
		heads[l.HeadPC] = true
	}
	backs := 0
	for _, in := range m.Code {
		if in.Op == OpLoopBack {
			backs++
			if !heads[int(in.A)] {
				t.Errorf("loopback to unrecorded head %d", in.A)
			}
		}
	}
	if backs != 3 {
		t.Errorf("loopback count %d", backs)
	}
}

func TestSwitchTable(t *testing.T) {
	bp := compile(t, `class T { void main() {
        switch (2) {
        case 1: print(1); break;
        case 2: print(2);
        case 3: print(3); break;
        default: print(9);
        }
    } }`)
	m := bp.Method("main")
	if len(m.Switches) != 1 {
		t.Fatalf("switch tables %d", len(m.Switches))
	}
	tab := m.Switches[0]
	if len(tab.Entries) != 3 {
		t.Errorf("entries %d", len(tab.Entries))
	}
	if tab.Lookup(2) == tab.Default {
		t.Error("case 2 should have its own target")
	}
	if tab.Lookup(42) != tab.Default {
		t.Error("unknown value should hit default")
	}
	// Fallthrough: case 2's target block must flow into case 3's.
	if tab.Lookup(2) >= tab.Lookup(3) {
		t.Errorf("case 2 target %d should precede case 3 target %d (fallthrough)", tab.Lookup(2), tab.Lookup(3))
	}
}

func TestDisasmMentionsEverything(t *testing.T) {
	bp := compile(t, `class T {
        long acc = 1L;
        void main() {
            int[] a = new int[4];
            a[0] = 7;
            acc += a[0];
            print(acc);
        }
    }`)
	d := Disasm(bp)
	for _, want := range []string{"class T", "field 0: long acc", "method", "newarr", "astore", "aload", "print", "getfield", "putfield"} {
		if !strings.Contains(d, want) {
			t.Errorf("disasm missing %q:\n%s", want, d)
		}
	}
}

func TestStackDepths(t *testing.T) {
	bp := compile(t, `class T {
        int f(int a) { return a * 2 + 1; }
        void main() { print(f(3) + f(4)); }
    }`)
	m := bp.Method("main")
	depths := StackDepths(bp, m)
	if depths[0] != 0 {
		t.Errorf("entry depth %d", depths[0])
	}
	for pc, in := range m.Code {
		if in.Op == OpRet && depths[pc] >= 0 && depths[pc] != 0 {
			t.Errorf("pc %d: ret at depth %d", pc, depths[pc])
		}
	}
}

func TestVerifierRejectsBadCode(t *testing.T) {
	// Hand-build broken methods and ensure the verifier rejects them.
	mk := func(code []Instr) *Program {
		m := &Method{Name: "main", Ret: ast.TypeVoid, Code: code, Locals: []ast.Type{ast.TypeInt}}
		return &Program{ClassName: "X", Methods: []*Method{m}, MainIndex: 0, ClinitIndex: -1}
	}
	cases := []struct {
		name string
		code []Instr
	}{
		{"underflow", []Instr{{Op: OpPop}, {Op: OpRet}}},
		{"bad target", []Instr{{Op: OpGoto, A: 99}, {Op: OpRet}}},
		{"bad slot", []Instr{{Op: OpLoad, A: 7}, {Op: OpPop}, {Op: OpRet}}},
		{"ret with stack", []Instr{{Op: OpConst, A: 1}, {Op: OpRet}}},
		{"inconsistent depth", []Instr{
			{Op: OpConst, A: 1},
			{Op: OpIfTrue, A: 3},
			{Op: OpConst, A: 5}, // fallthrough pushes, branch target below expects empty
			{Op: OpRet},
		}},
	}
	for _, tc := range cases {
		p := mk(tc.code)
		if err := verifyMethod(p, p.Methods[0]); err == nil {
			t.Errorf("%s: verifier accepted bad code", tc.name)
		}
	}
}

func TestCondHelpers(t *testing.T) {
	conds := []Cond{CondEQ, CondNE, CondLT, CondLE, CondGT, CondGE}
	for _, c := range conds {
		n := c.Negate()
		for a := int64(-2); a <= 2; a++ {
			for b := int64(-2); b <= 2; b++ {
				if c.Eval(a, b) == n.Eval(a, b) {
					t.Errorf("cond %v and negation agree on (%d,%d)", c, a, b)
				}
			}
		}
	}
}

func TestCompoundArrayAssignBytecode(t *testing.T) {
	bp := compile(t, `class T { void main() {
        int[] a = new int[]{5};
        a[0] += 3;
        print(a[0]);
    } }`)
	m := bp.Method("main")
	hasDup2 := false
	for _, in := range m.Code {
		if in.Op == OpDup2 {
			hasDup2 = true
		}
	}
	if !hasDup2 {
		t.Error("compound array assignment should use dup2")
	}
}
