package bytecode_test

import (
	"math/rand"
	"testing"

	"artemis/internal/bytecode"
	"artemis/internal/fuzz"
	"artemis/internal/jonm"
	"artemis/internal/lang/ast"
	"artemis/internal/lang/sem"
)

// TestCompileDeltaMatchesColdCompile is the golden equivalence check
// for the incremental front-end: across many fuzzed seed x mutant
// pairs, CompileDelta (method-granular reuse of the seed's compiled
// program) must produce a program whose disassembly — instructions,
// switch tables, loop metadata, MaxStack, field table, method indices
// — is byte-identical to a cold full compile of the same mutant.
func TestCompileDeltaMatchesColdCompile(t *testing.T) {
	const wantPairs = 100
	pairs := 0
	for seedID := int64(1); pairs < wantPairs; seedID++ {
		seedProg := fuzz.Generate(fuzz.Options{Seed: seedID})
		seedInfo := sem.MustAnalyze(seedProg)
		seedBP := bytecode.MustCompile(seedInfo)
		seedText := ast.Print(seedProg)

		rng := rand.New(rand.NewSource(seedID * 7919))
		for iter := 0; iter < 4 && pairs < wantPairs; iter++ {
			mutant, rep, err := jonm.Mutate(seedProg, &jonm.Config{
				Rand: rng, SeedInfo: seedInfo,
			})
			if err != nil {
				t.Fatalf("seed %d iter %d: mutate: %v", seedID, iter, err)
			}

			inc := bytecode.MustCompileDelta(rep.Info, seedBP, rep.Mutated)
			// Cold path: re-analyze a deep clone so the shared seed
			// nodes are never re-annotated, then compile from scratch.
			cold := bytecode.MustCompile(sem.MustAnalyze(ast.CloneProgram(mutant)))

			if got, want := bytecode.Disasm(inc), bytecode.Disasm(cold); got != want {
				t.Fatalf("seed %d iter %d: incremental and cold compiles diverge\n--- incremental ---\n%s\n--- cold ---\n%s",
					seedID, iter, got, want)
			}
			pairs++
		}

		if ast.Print(seedProg) != seedText {
			t.Fatalf("seed %d: mutation modified the shared seed AST", seedID)
		}
	}
}
