package bytecode

import (
	"fmt"

	"artemis/internal/lang/ast"
)

// verifyMethod checks structural well-formedness of a compiled method
// (branch targets in range, consistent operand stack depths along all
// paths) and computes MaxStack. It is run on everything the compiler
// produces, so the interpreter and JIT can assume valid code.
func verifyMethod(p *Program, m *Method) error {
	n := len(m.Code)
	if n == 0 {
		return fmt.Errorf("empty code")
	}
	depth := make([]int, n) // -1 = unvisited
	for i := range depth {
		depth[i] = -1
	}

	// stackEffect returns (pops, pushes) for the instruction.
	stackEffect := func(in Instr) (int, int, error) {
		switch in.Op {
		case OpNop:
			return 0, 0, nil
		case OpConst, OpLoad, OpGetField:
			return 0, 1, nil
		case OpStore, OpPutField, OpPop, OpIfTrue, OpIfFalse, OpSwitch, OpPrint, OpRetV:
			return 1, 0, nil
		case OpDup:
			return 1, 2, nil
		case OpDup2:
			return 2, 4, nil
		case OpNewArr, OpArrLen, OpNeg, OpBitNot, OpL2I:
			return 1, 1, nil
		case OpALoad, OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor,
			OpShl, OpShr, OpUshr, OpCmpSet:
			return 2, 1, nil
		case OpAStore:
			return 3, 0, nil
		case OpIfCmp:
			return 2, 0, nil
		case OpGoto, OpLoopBack, OpRet:
			return 0, 0, nil
		case OpCall:
			mi := int(in.A)
			if mi < 0 || mi >= len(p.Methods) {
				return 0, 0, fmt.Errorf("call target %d out of range", mi)
			}
			callee := p.Methods[mi]
			push := 0
			if callee.Ret.Kind != ast.KindVoid {
				push = 1
			}
			return callee.NParams, push, nil
		}
		return 0, 0, fmt.Errorf("unknown opcode %v", in.Op)
	}

	type workItem struct{ pc, d int }
	work := []workItem{{0, 0}}
	maxDepth := 0
	push := func(pc, d int) error {
		if pc < 0 || pc >= n {
			return fmt.Errorf("branch target %d out of range", pc)
		}
		if depth[pc] == -1 {
			depth[pc] = d
			work = append(work, workItem{pc, d})
		} else if depth[pc] != d {
			return fmt.Errorf("inconsistent stack depth at pc %d: %d vs %d", pc, depth[pc], d)
		}
		return nil
	}
	depth[0] = 0
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		in := m.Code[it.pc]
		pops, pushes, err := stackEffect(in)
		if err != nil {
			return fmt.Errorf("pc %d: %w", it.pc, err)
		}
		if it.d < pops {
			return fmt.Errorf("pc %d: stack underflow (%d < %d)", it.pc, it.d, pops)
		}
		d := it.d - pops + pushes
		if d > maxDepth {
			maxDepth = d
		}
		switch in.Op {
		case OpGoto, OpLoopBack:
			if err := push(int(in.A), d); err != nil {
				return err
			}
		case OpIfTrue, OpIfFalse, OpIfCmp:
			if err := push(int(in.A), d); err != nil {
				return err
			}
			if err := push(it.pc+1, d); err != nil {
				return err
			}
		case OpSwitch:
			ti := int(in.A)
			if ti < 0 || ti >= len(m.Switches) {
				return fmt.Errorf("pc %d: switch table %d out of range", it.pc, ti)
			}
			t := m.Switches[ti]
			if err := push(t.Default, d); err != nil {
				return err
			}
			for _, e := range t.Entries {
				if err := push(e.Target, d); err != nil {
					return err
				}
			}
		case OpRet:
			if d != 0 {
				return fmt.Errorf("pc %d: return with non-empty stack (%d)", it.pc, d)
			}
		case OpRetV:
			if d != 0 {
				return fmt.Errorf("pc %d: retv leaves %d extra words", it.pc, d)
			}
		default:
			if err := push(it.pc+1, d); err != nil {
				return err
			}
		}
		// Back-edges must occur at empty-stack points (statement
		// boundaries); the OSR machinery depends on this.
		if in.Op == OpLoopBack && d != 0 {
			return fmt.Errorf("pc %d: back-edge with non-empty stack", it.pc)
		}
	}

	// Validate slot and field indices.
	for pc, in := range m.Code {
		switch in.Op {
		case OpLoad, OpStore:
			if in.A < 0 || int(in.A) >= len(m.Locals) {
				return fmt.Errorf("pc %d: local slot %d out of range", pc, in.A)
			}
		case OpGetField, OpPutField:
			if in.A < 0 || int(in.A) >= len(p.Fields) {
				return fmt.Errorf("pc %d: field %d out of range", pc, in.A)
			}
		}
	}
	m.MaxStack = maxDepth
	return nil
}

// StackDepths recomputes the operand stack depth at every pc of a
// verified method (-1 for unreachable code). The JIT front end uses
// this when building SSA and deopt frame states.
func StackDepths(p *Program, m *Method) []int {
	n := len(m.Code)
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	type workItem struct{ pc, d int }
	work := []workItem{{0, 0}}
	depth[0] = 0
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		in := m.Code[it.pc]
		d := it.d + stackDelta(p, in)
		enqueue := func(pc int) {
			if depth[pc] == -1 {
				depth[pc] = d
				work = append(work, workItem{pc, d})
			}
		}
		switch in.Op {
		case OpGoto, OpLoopBack:
			enqueue(int(in.A))
		case OpIfTrue, OpIfFalse, OpIfCmp:
			enqueue(int(in.A))
			enqueue(it.pc + 1)
		case OpSwitch:
			t := m.Switches[in.A]
			enqueue(t.Default)
			for _, e := range t.Entries {
				enqueue(e.Target)
			}
		case OpRet, OpRetV:
		default:
			enqueue(it.pc + 1)
		}
	}
	return depth
}

// stackDelta returns pushes-pops for in (method must be valid).
func stackDelta(p *Program, in Instr) int {
	switch in.Op {
	case OpConst, OpLoad, OpGetField, OpDup:
		return 1
	case OpDup2:
		return 2
	case OpStore, OpPutField, OpPop, OpIfTrue, OpIfFalse, OpSwitch, OpPrint, OpRetV,
		OpALoad, OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpUshr, OpCmpSet:
		return -1
	case OpAStore:
		return -3
	case OpIfCmp:
		return -2
	case OpCall:
		callee := p.Methods[in.A]
		d := -callee.NParams
		if callee.Ret.Kind != ast.KindVoid {
			d++
		}
		return d
	}
	return 0
}
