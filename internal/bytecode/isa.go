// Package bytecode defines the stack-based bytecode of our language
// VM and the compiler from type-checked MJ ASTs to bytecode.
//
// The ISA is deliberately JVM-shaped: an operand stack, local slots,
// field access, checked array operations, fused compare-and-branch
// instructions, and a dedicated loop back-edge instruction
// (OpLoopBack) that the VM uses to drive back-edge profiling counters
// and OSR compilation, mirroring how real JVMs attribute hotness to
// loop back-jumps (Section 3.1 of the paper).
//
// Value model: every stack slot and local is an int64 word. int values
// are stored sign-extended (so int->long widening is a no-op), boolean
// is 0/1, and array references are opaque positive heap handles.
package bytecode

import (
	"fmt"
	"strings"

	"artemis/internal/lang/ast"
)

// Op enumerates bytecode opcodes.
type Op uint8

const (
	OpNop Op = iota

	OpConst // push A
	OpLoad  // push locals[A]
	OpStore // locals[A] = pop
	OpPop   // drop top
	OpDup   // duplicate top
	OpDup2  // duplicate top two words (a b -> a b a b)

	OpGetField // push fields[A]
	OpPutField // fields[A] = pop

	OpNewArr // pop len, push new array handle (elem kind in Kind)
	OpALoad  // pop idx, ref; push ref[idx] (bounds-checked)
	OpAStore // pop val, idx, ref; ref[idx] = val (bounds-checked)
	OpArrLen // pop ref, push length

	// Binary arithmetic: pop b, a; push a OP b. Wide selects 64-bit
	// (long) vs 32-bit wrapping (int) semantics.
	OpAdd
	OpSub
	OpMul
	OpDiv // raises ArithmeticException on division by zero
	OpRem // raises ArithmeticException on division by zero
	OpAnd
	OpOr
	OpXor
	OpShl // shift count masked &31 / &63 as in Java
	OpShr
	OpUshr

	OpNeg    // pop a, push -a (wrapping)
	OpBitNot // pop a, push ^a
	OpL2I    // pop a, push sign-extended int32(a) (narrowing cast)

	OpCmpSet // pop b, a; push 1 if a Cond b else 0

	OpGoto     // jump to A
	OpIfTrue   // pop v; jump to A if v != 0
	OpIfFalse  // pop v; jump to A if v == 0
	OpIfCmp    // pop b, a; jump to A if a Cond b
	OpSwitch   // pop v; jump via Switches[A]
	OpLoopBack // back-edge: jump to A; B is the loop id (profiled)

	OpCall // call Methods[A]; pops arity args, pushes result if non-void
	OpRet  // return void
	OpRetV // pop v, return v

	OpPrint // pop v, append to output (formatted per Kind)
)

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpLoad: "load", OpStore: "store",
	OpPop: "pop", OpDup: "dup", OpDup2: "dup2",
	OpGetField: "getfield", OpPutField: "putfield",
	OpNewArr: "newarr", OpALoad: "aload", OpAStore: "astore", OpArrLen: "arrlen",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr", OpUshr: "ushr",
	OpNeg: "neg", OpBitNot: "bitnot", OpL2I: "l2i",
	OpCmpSet: "cmpset",
	OpGoto:   "goto", OpIfTrue: "iftrue", OpIfFalse: "iffalse", OpIfCmp: "ifcmp",
	OpSwitch: "switch", OpLoopBack: "loopback",
	OpCall: "call", OpRet: "ret", OpRetV: "retv", OpPrint: "print",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// Cond enumerates comparison condition codes for OpCmpSet/OpIfCmp.
type Cond uint8

const (
	CondEQ Cond = iota
	CondNE
	CondLT
	CondLE
	CondGT
	CondGE
)

var condNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge"}

func (c Cond) String() string { return condNames[c] }

// Negate returns the opposite condition.
func (c Cond) Negate() Cond {
	switch c {
	case CondEQ:
		return CondNE
	case CondNE:
		return CondEQ
	case CondLT:
		return CondGE
	case CondLE:
		return CondGT
	case CondGT:
		return CondLE
	case CondGE:
		return CondLT
	}
	panic("bytecode: bad cond")
}

// Eval applies the condition to two values.
func (c Cond) Eval(a, b int64) bool {
	switch c {
	case CondEQ:
		return a == b
	case CondNE:
		return a != b
	case CondLT:
		return a < b
	case CondLE:
		return a <= b
	case CondGT:
		return a > b
	case CondGE:
		return a >= b
	}
	panic("bytecode: bad cond")
}

// Instr is one bytecode instruction.
type Instr struct {
	Op   Op
	A    int64    // immediate / slot / field / pc target / method or table index
	Wide bool     // 64-bit variant for arithmetic
	Cond Cond     // for OpCmpSet / OpIfCmp
	Kind ast.Kind // element kind for OpNewArr, value kind for OpPrint
	Line int      // 1-based source line (0 if synthesized)
}

func (in Instr) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	if in.Wide {
		b.WriteString(".l")
	}
	switch in.Op {
	case OpCmpSet, OpIfCmp:
		fmt.Fprintf(&b, ".%s", in.Cond)
	}
	switch in.Op {
	case OpConst, OpLoad, OpStore, OpGetField, OpPutField,
		OpGoto, OpIfTrue, OpIfFalse, OpIfCmp, OpSwitch, OpCall:
		fmt.Fprintf(&b, " %d", in.A)
	case OpLoopBack:
		fmt.Fprintf(&b, " %d", in.A)
	case OpNewArr, OpPrint:
		fmt.Fprintf(&b, " %s", in.Kind)
	}
	return b.String()
}

// SwitchEntry is one (value, target) pair of a switch table.
type SwitchEntry struct {
	Value  int64
	Target int
}

// SwitchTable is the jump table of one OpSwitch instruction.
type SwitchTable struct {
	Entries []SwitchEntry
	Default int
}

// Lookup returns the target pc for v.
func (t *SwitchTable) Lookup(v int64) int {
	for _, e := range t.Entries {
		if e.Value == v {
			return e.Target
		}
	}
	return t.Default
}

// LoopInfo describes one source loop in a method.
type LoopInfo struct {
	ID     int
	HeadPC int // pc of the loop header (OpLoopBack target)
	Depth  int // nesting depth, 1 = outermost
}

// Method is one compiled method.
type Method struct {
	Name     string
	Index    int
	NParams  int
	Ret      ast.Type
	Locals   []ast.Type // slot types; params in slots 0..NParams-1
	Code     []Instr
	Switches []SwitchTable
	Loops    []LoopInfo
	MaxStack int

	// Decoded is the pre-decoded instruction stream (1:1 with Code),
	// built once after verification; the interpreter dispatches on it.
	Decoded []DInstr
}

// IsRefSlot reports whether local slot i holds an array reference
// (consumed by the GC when scanning interpreter frames).
func (m *Method) IsRefSlot(i int) bool { return m.Locals[i].IsArray() }

// Field describes one class field.
type Field struct {
	Name string
	Type ast.Type
}

// Program is a fully compiled MJ program.
type Program struct {
	ClassName string
	Fields    []Field
	Methods   []*Method
	MainIndex int
	// ClinitIndex is the synthetic field-initializer method run before
	// main, or -1 when all fields use default values.
	ClinitIndex int
}

// Method returns the method with the given name, or nil.
func (p *Program) Method(name string) *Method {
	for _, m := range p.Methods {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Disasm returns a textual disassembly of the whole program.
func Disasm(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "class %s\n", p.ClassName)
	for i, f := range p.Fields {
		fmt.Fprintf(&b, "  field %d: %s %s\n", i, f.Type, f.Name)
	}
	for _, m := range p.Methods {
		fmt.Fprintf(&b, "\nmethod %d: %s %s (%d params, %d locals, maxstack %d)\n",
			m.Index, m.Ret, m.Name, m.NParams, len(m.Locals), m.MaxStack)
		for pc, in := range m.Code {
			fmt.Fprintf(&b, "  %4d: %s\n", pc, in)
		}
		for i, t := range m.Switches {
			fmt.Fprintf(&b, "  table %d: default=%d", i, t.Default)
			for _, e := range t.Entries {
				fmt.Fprintf(&b, " %d->%d", e.Value, e.Target)
			}
			b.WriteByte('\n')
		}
		for _, l := range m.Loops {
			fmt.Fprintf(&b, "  loop %d: head=%d depth=%d\n", l.ID, l.HeadPC, l.Depth)
		}
	}
	return b.String()
}
