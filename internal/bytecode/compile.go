package bytecode

import (
	"fmt"

	"artemis/internal/lang/ast"
	"artemis/internal/lang/sem"
)

// Compile lowers a type-checked program to bytecode. The tree must
// have been analyzed by sem (expression types and resolutions filled
// in).
func Compile(info *sem.Info) (*Program, error) {
	cls := info.Prog.Class
	p := &Program{ClassName: cls.Name, MainIndex: -1, ClinitIndex: -1}
	for _, f := range cls.Fields {
		p.Fields = append(p.Fields, Field{Name: f.Name, Type: f.Type})
	}
	for i, m := range cls.Methods {
		cm, err := compileMethod(info, m, i)
		if err != nil {
			return nil, err
		}
		p.Methods = append(p.Methods, cm)
		if m.Name == "main" {
			p.MainIndex = i
		}
	}
	if p.MainIndex < 0 {
		return nil, fmt.Errorf("bytecode: no main method")
	}
	if cl := compileClinit(cls); cl != nil {
		cl.Index = len(p.Methods)
		p.ClinitIndex = cl.Index
		p.Methods = append(p.Methods, cl)
	}
	for _, m := range p.Methods {
		if err := verifyMethod(p, m); err != nil {
			return nil, fmt.Errorf("bytecode: method %s: %w", m.Name, err)
		}
	}
	p.Predecode()
	return p, nil
}

// MustCompile compiles a program known to be valid, panicking on error.
func MustCompile(info *sem.Info) *Program {
	p, err := Compile(info)
	if err != nil {
		panic(fmt.Sprintf("bytecode: internal compile error: %v", err))
	}
	return p
}

// compileClinit builds the synthetic field-initializer method, or
// returns nil when no field has an explicit initializer. Array fields
// without initializers are defaulted to empty arrays by the VM itself.
func compileClinit(cls *ast.Class) *Method {
	any := false
	for _, f := range cls.Fields {
		if f.Init != nil {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	c := &compiler{m: &Method{Name: "<clinit>", Ret: ast.TypeVoid}}
	for i, f := range cls.Fields {
		if f.Init == nil {
			continue
		}
		c.expr(f.Init)
		c.emit(Instr{Op: OpPutField, A: int64(i)})
	}
	c.emit(Instr{Op: OpRet})
	return c.m
}

type loopCtx struct {
	breakL    *label
	continueL *label // nil for switch contexts
}

type compiler struct {
	info *sem.Info
	m    *Method

	loops     []loopCtx // innermost last; switch entries have nil continueL
	loopDepth int
}

type label struct {
	pc      int   // -1 until bound
	patches []int // instruction indices whose A awaits this label
}

func compileMethod(info *sem.Info, m *ast.Method, index int) (*Method, error) {
	mi := info.Methods[m.Name]
	c := &compiler{
		info: info,
		m: &Method{
			Name:    m.Name,
			Index:   index,
			NParams: len(m.Params),
			Ret:     m.Ret,
			Locals:  append([]ast.Type(nil), mi.Locals...),
		},
	}
	c.block(m.Body)
	if m.Ret.Kind == ast.KindVoid {
		c.emit(Instr{Op: OpRet})
	} else {
		// Unreachable backstop (sem guarantees all paths return);
		// keeps the interpreter loop total.
		c.emit(Instr{Op: OpConst, A: 0})
		c.emit(Instr{Op: OpRetV})
	}
	return c.m, nil
}

func (c *compiler) emit(in Instr) int {
	c.m.Code = append(c.m.Code, in)
	return len(c.m.Code) - 1
}

func (c *compiler) newLabel() *label { return &label{pc: -1} }

// jump emits a branch instruction whose target is l.
func (c *compiler) jump(in Instr, l *label) {
	if l.pc >= 0 {
		in.A = int64(l.pc)
		c.emit(in)
		return
	}
	in.A = -1
	idx := c.emit(in)
	l.patches = append(l.patches, idx)
}

// bind sets l to the current pc and patches pending branches.
func (c *compiler) bind(l *label) {
	l.pc = len(c.m.Code)
	for _, idx := range l.patches {
		c.m.Code[idx].A = int64(l.pc)
	}
	l.patches = nil
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

func (c *compiler) block(b *ast.Block) {
	for _, s := range b.Stmts {
		c.stmt(s)
	}
}

func (c *compiler) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		c.block(s)
	case *ast.DeclStmt:
		if s.Init != nil {
			c.expr(s.Init)
		} else {
			c.emit(Instr{Op: OpConst, A: 0})
		}
		c.emit(Instr{Op: OpStore, A: int64(s.Slot)})
	case *ast.AssignStmt:
		c.assign(s)
	case *ast.IfStmt:
		elseL, endL := c.newLabel(), c.newLabel()
		c.condJump(s.Cond, false, elseL)
		c.block(s.Then)
		if s.Else != nil {
			c.jump(Instr{Op: OpGoto}, endL)
			c.bind(elseL)
			c.stmt(s.Else)
			c.bind(endL)
		} else {
			c.bind(elseL)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.loop(s.Cond, s.Body, s.Post)
	case *ast.WhileStmt:
		c.loop(s.Cond, s.Body, nil)
	case *ast.SwitchStmt:
		c.switchStmt(s)
	case *ast.BreakStmt:
		c.jump(Instr{Op: OpGoto}, c.loops[len(c.loops)-1].breakL)
	case *ast.ContinueStmt:
		for i := len(c.loops) - 1; i >= 0; i-- {
			if c.loops[i].continueL != nil {
				c.jump(Instr{Op: OpGoto}, c.loops[i].continueL)
				return
			}
		}
		panic("bytecode: continue outside loop (sem should reject)")
	case *ast.ReturnStmt:
		if s.Value == nil {
			c.emit(Instr{Op: OpRet})
		} else {
			c.expr(s.Value)
			c.emit(Instr{Op: OpRetV})
		}
	case *ast.ExprStmt:
		call := s.X.(*ast.CallExpr)
		c.expr(call)
		if call.Type().Kind != ast.KindVoid {
			c.emit(Instr{Op: OpPop})
		}
	case *ast.PrintStmt:
		c.expr(s.X)
		c.emit(Instr{Op: OpPrint, Kind: s.X.Type().Kind})
	default:
		panic(fmt.Sprintf("bytecode: unknown statement %T", s))
	}
}

// loop compiles the canonical loop shape shared by for and while:
//
//	head: if !cond goto exit
//	      body
//	cont: post
//	      loopback head
//	exit:
//
// All back edges are OpLoopBack instructions, so the VM can attribute
// back-edge counter increments and OSR entry points to loop ids.
func (c *compiler) loop(cond ast.Expr, body *ast.Block, post ast.Stmt) {
	loopID := len(c.m.Loops)
	c.loopDepth++
	c.m.Loops = append(c.m.Loops, LoopInfo{ID: loopID, HeadPC: len(c.m.Code), Depth: c.loopDepth})

	headPC := len(c.m.Code)
	exitL, contL := c.newLabel(), c.newLabel()
	if cond != nil {
		c.condJump(cond, false, exitL)
	}
	c.loops = append(c.loops, loopCtx{breakL: exitL, continueL: contL})
	c.block(body)
	c.loops = c.loops[:len(c.loops)-1]
	c.bind(contL)
	if post != nil {
		c.stmt(post)
	}
	// The loop id is recovered from Loops by header pc at run time
	// (header pcs are unique per loop).
	c.emit(Instr{Op: OpLoopBack, A: int64(headPC)})
	c.bind(exitL)
	c.loopDepth--
}

func (c *compiler) switchStmt(s *ast.SwitchStmt) {
	c.expr(s.Tag)
	tableIdx := len(c.m.Switches)
	c.m.Switches = append(c.m.Switches, SwitchTable{})
	c.emit(Instr{Op: OpSwitch, A: int64(tableIdx)})

	exitL := c.newLabel()
	c.loops = append(c.loops, loopCtx{breakL: exitL})
	table := SwitchTable{Default: -1}
	for _, arm := range s.Cases {
		pc := len(c.m.Code)
		if arm.Values == nil {
			table.Default = pc
		} else {
			for _, v := range arm.Values {
				table.Entries = append(table.Entries, SwitchEntry{Value: v, Target: pc})
			}
		}
		for _, bs := range arm.Body {
			c.stmt(bs)
		}
	}
	c.loops = c.loops[:len(c.loops)-1]
	c.bind(exitL)
	if table.Default < 0 {
		table.Default = exitL.pc
	}
	c.m.Switches[tableIdx] = table
}

func (c *compiler) assign(s *ast.AssignStmt) {
	switch t := s.Target.(type) {
	case *ast.Ident:
		if s.Op == ast.AsnSet {
			c.expr(s.Value)
			c.storeIdent(t)
			return
		}
		c.loadIdent(t)
		c.compoundOp(s, t.Type())
		c.storeIdent(t)
	case *ast.IndexExpr:
		if s.Op == ast.AsnSet {
			c.expr(t.Arr)
			c.expr(t.Index)
			c.expr(s.Value)
			c.emit(Instr{Op: OpAStore})
			return
		}
		c.expr(t.Arr)
		c.expr(t.Index)
		c.emit(Instr{Op: OpDup2})
		c.emit(Instr{Op: OpALoad})
		c.compoundOp(s, t.Type())
		c.emit(Instr{Op: OpAStore})
	default:
		panic(fmt.Sprintf("bytecode: bad assignment target %T", s.Target))
	}
}

// compoundOp assumes the current target value is on the stack,
// evaluates the RHS, applies the compound operator, and narrows the
// result back to the target type (Java compound-assignment implicit
// cast).
func (c *compiler) compoundOp(s *ast.AssignStmt, targetType ast.Type) {
	c.expr(s.Value)
	op := s.Op.BinOp()
	var wide bool
	if op.IsShift() {
		// Shift width follows the left operand (the target).
		wide = targetType.Kind == ast.KindLong
	} else {
		wide = targetType.Kind == ast.KindLong || s.Value.Type().Kind == ast.KindLong
	}
	c.emit(Instr{Op: binInstrOp(op), Wide: wide})
	if targetType.Kind == ast.KindInt && wide {
		c.emit(Instr{Op: OpL2I})
	}
}

func (c *compiler) loadIdent(t *ast.Ident) {
	switch t.Ref {
	case ast.RefLocal:
		c.emit(Instr{Op: OpLoad, A: int64(t.Index)})
	case ast.RefField:
		c.emit(Instr{Op: OpGetField, A: int64(t.Index)})
	default:
		panic("bytecode: unresolved identifier " + t.Name)
	}
}

func (c *compiler) storeIdent(t *ast.Ident) {
	switch t.Ref {
	case ast.RefLocal:
		c.emit(Instr{Op: OpStore, A: int64(t.Index)})
	case ast.RefField:
		c.emit(Instr{Op: OpPutField, A: int64(t.Index)})
	default:
		panic("bytecode: unresolved identifier " + t.Name)
	}
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

func binInstrOp(op ast.BinOp) Op {
	switch op {
	case ast.OpAdd:
		return OpAdd
	case ast.OpSub:
		return OpSub
	case ast.OpMul:
		return OpMul
	case ast.OpDiv:
		return OpDiv
	case ast.OpRem:
		return OpRem
	case ast.OpAnd:
		return OpAnd
	case ast.OpOr:
		return OpOr
	case ast.OpXor:
		return OpXor
	case ast.OpShl:
		return OpShl
	case ast.OpShr:
		return OpShr
	case ast.OpUshr:
		return OpUshr
	}
	panic(fmt.Sprintf("bytecode: op %v is not an arithmetic instruction", op))
}

func condOf(op ast.BinOp) Cond {
	switch op {
	case ast.OpEq:
		return CondEQ
	case ast.OpNe:
		return CondNE
	case ast.OpLt:
		return CondLT
	case ast.OpLe:
		return CondLE
	case ast.OpGt:
		return CondGT
	case ast.OpGe:
		return CondGE
	}
	panic("bytecode: not a comparison")
}

// expr compiles e, leaving its value on the stack.
func (c *compiler) expr(e ast.Expr) {
	switch e := e.(type) {
	case *ast.IntLit:
		v := e.Value
		if !e.IsLong {
			v = int64(int32(v))
		}
		c.emit(Instr{Op: OpConst, A: v})
	case *ast.BoolLit:
		v := int64(0)
		if e.Value {
			v = 1
		}
		c.emit(Instr{Op: OpConst, A: v})
	case *ast.Ident:
		c.loadIdent(e)
	case *ast.IndexExpr:
		c.expr(e.Arr)
		c.expr(e.Index)
		c.emit(Instr{Op: OpALoad})
	case *ast.LenExpr:
		c.expr(e.Arr)
		c.emit(Instr{Op: OpArrLen})
	case *ast.CallExpr:
		for _, a := range e.Args {
			c.expr(a)
		}
		c.emit(Instr{Op: OpCall, A: int64(e.MethodIndex)})
	case *ast.UnaryExpr:
		switch e.Op {
		case ast.OpNeg:
			c.expr(e.X)
			c.emit(Instr{Op: OpNeg, Wide: e.Type().Kind == ast.KindLong})
		case ast.OpBitNot:
			c.expr(e.X)
			c.emit(Instr{Op: OpBitNot, Wide: e.Type().Kind == ast.KindLong})
		case ast.OpNot:
			c.expr(e.X)
			c.emit(Instr{Op: OpConst, A: 0})
			c.emit(Instr{Op: OpCmpSet, Cond: CondEQ})
		}
	case *ast.BinaryExpr:
		op := e.Op
		switch {
		case op.IsLogical():
			c.boolValue(e)
		case op.IsComparison():
			c.expr(e.X)
			c.expr(e.Y)
			c.emit(Instr{Op: OpCmpSet, Cond: condOf(op)})
		default:
			c.expr(e.X)
			c.expr(e.Y)
			var wide bool
			if op.IsShift() {
				wide = e.X.Type().Kind == ast.KindLong
			} else {
				wide = e.Type().Kind == ast.KindLong
			}
			c.emit(Instr{Op: binInstrOp(op), Wide: wide})
		}
	case *ast.CondExpr:
		elseL, endL := c.newLabel(), c.newLabel()
		c.condJump(e.Cond, false, elseL)
		c.expr(e.Then)
		c.jump(Instr{Op: OpGoto}, endL)
		c.bind(elseL)
		c.expr(e.Else)
		c.bind(endL)
	case *ast.NewArrayExpr:
		if e.Elems != nil {
			c.emit(Instr{Op: OpConst, A: int64(len(e.Elems))})
			c.emit(Instr{Op: OpNewArr, Kind: e.Elem})
			for i, el := range e.Elems {
				c.emit(Instr{Op: OpDup})
				c.emit(Instr{Op: OpConst, A: int64(i)})
				c.expr(el)
				c.emit(Instr{Op: OpAStore})
			}
		} else {
			c.expr(e.Len)
			c.emit(Instr{Op: OpNewArr, Kind: e.Elem})
		}
	case *ast.CastExpr:
		c.expr(e.X)
		if e.To.Kind == ast.KindInt && e.X.Type().Kind == ast.KindLong {
			c.emit(Instr{Op: OpL2I})
		}
		// int -> long widening is a no-op under the sign-extended
		// value model.
	default:
		panic(fmt.Sprintf("bytecode: unknown expression %T", e))
	}
}

// boolValue materializes a boolean expression as 0/1 using branches
// (used for && and || which must short-circuit).
func (c *compiler) boolValue(e ast.Expr) {
	falseL, endL := c.newLabel(), c.newLabel()
	c.condJump(e, false, falseL)
	c.emit(Instr{Op: OpConst, A: 1})
	c.jump(Instr{Op: OpGoto}, endL)
	c.bind(falseL)
	c.emit(Instr{Op: OpConst, A: 0})
	c.bind(endL)
}

// condJump compiles e as a condition: jump to l when e == want,
// fall through otherwise. Fuses comparisons into OpIfCmp and expands
// short-circuit operators.
func (c *compiler) condJump(e ast.Expr, want bool, l *label) {
	switch e := e.(type) {
	case *ast.BoolLit:
		if e.Value == want {
			c.jump(Instr{Op: OpGoto}, l)
		}
		return
	case *ast.UnaryExpr:
		if e.Op == ast.OpNot {
			c.condJump(e.X, !want, l)
			return
		}
	case *ast.BinaryExpr:
		switch {
		case e.Op.IsComparison():
			c.expr(e.X)
			c.expr(e.Y)
			cond := condOf(e.Op)
			if !want {
				cond = cond.Negate()
			}
			c.jump(Instr{Op: OpIfCmp, Cond: cond}, l)
			return
		case e.Op == ast.OpLAnd:
			if want {
				// jump to l iff both true
				skip := c.newLabel()
				c.condJump(e.X, false, skip)
				c.condJump(e.Y, true, l)
				c.bind(skip)
			} else {
				// jump to l iff either false
				c.condJump(e.X, false, l)
				c.condJump(e.Y, false, l)
			}
			return
		case e.Op == ast.OpLOr:
			if want {
				c.condJump(e.X, true, l)
				c.condJump(e.Y, true, l)
			} else {
				skip := c.newLabel()
				c.condJump(e.X, true, skip)
				c.condJump(e.Y, false, l)
				c.bind(skip)
			}
			return
		}
	}
	// Generic: evaluate to 0/1 and branch.
	c.expr(e)
	op := OpIfTrue
	if !want {
		op = OpIfFalse
	}
	c.jump(Instr{Op: op}, l)
}
