// Package jonm implements JIT-Op Neutral Mutation (Section 3.3-3.4 of
// the paper): semantics-preserving, source-level mutations built
// around JIT-relevant operations (loops and method calls) that steer
// the VM to different JIT compilation choices for the same observable
// behaviour. It is the Artemis mutation engine: three mutators — Loop
// Inserter (LI), Statement Wrapper (SW), and Method Invocator (MI) —
// driven by sketch-based loop synthesis (Algorithm 2).
//
// Neutrality is guaranteed by construction:
//
//   - synthesized loops have bounded, value-dependent trip counts
//     (the min(MIN,·)/max(MAX,·) headers of Figure 3, with a modulo
//     clamp so mutants stay within the step budget);
//   - every pre-existing variable the synthesized code writes is
//     backed up before the loop and restored after (the V' set of
//     Algorithm 2);
//   - synthesized code never prints (the paper redirects System.out;
//     MJ's only output channel is print, which we simply never emit);
//   - synthesized expressions cannot throw: divisions are |1-guarded
//     and array indexes are masked and taken modulo the length
//     (replacing the paper's catch-and-discard wrapping);
//   - MI's early-return prologue writes only fresh locals, so the
//     thousands of pre-invocations it triggers are pure heat.
package jonm

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"artemis/internal/lang/ast"
	"artemis/internal/lang/sem"
)

// MutatorName identifies one of the three mutators.
type MutatorName string

const (
	LI MutatorName = "LI" // Loop Inserter
	SW MutatorName = "SW" // Statement Wrapper
	MI MutatorName = "MI" // Method Invocator
)

// Config tunes mutation; Min/Max/StepMax are the loop-synthesis
// hyper-parameters of Figure 3, set per target VM (Section 4.1).
type Config struct {
	// Min and Max are the MIN/MAX loop-header bounds.
	Min, Max int64
	// StepMax bounds the random STEP (paper: 1..10).
	StepMax int64
	// Rand is the mutation RNG (required).
	Rand *rand.Rand
	// MethodProb is the FlipCoin probability of mutating each method
	// (Algorithm 1, line 11). Default 0.5.
	MethodProb float64
	// Mutators restricts the mutator set (default all three) — used
	// by the ablation benchmarks.
	Mutators []MutatorName
	// DisableSkeletons turns off statement-skeleton synthesis inside
	// loops (<stmts> holes stay empty) — used by the ablation
	// benchmarks; Section 3.4 argues skeletons diversify the control
	// and data flow of synthesized loops.
	DisableSkeletons bool
	// SeedInfo, when non-nil, must be the sem analysis of exactly the
	// seed program passed to Mutate (same AST object graph). It enables
	// the incremental validity check: only mutated methods are
	// re-analyzed, everything else reuses the seed's results. Mutation
	// behaviour (RNG consumption, produced mutants) is identical either
	// way.
	SeedInfo *sem.Info
}

func (c *Config) withDefaults() *Config {
	out := *c
	if out.Min == 0 {
		out.Min = 5000
	}
	if out.Max == 0 {
		out.Max = 10000
	}
	if out.StepMax == 0 {
		out.StepMax = 10
	}
	if out.MethodProb == 0 {
		out.MethodProb = 0.5
	}
	if len(out.Mutators) == 0 {
		out.Mutators = []MutatorName{LI, SW, MI}
	}
	return &out
}

// Application records one applied mutation for reports.
type Application struct {
	Mutator MutatorName
	Method  string
	Detail  string
}

// Report summarizes one Mutate call.
type Report struct {
	Applied []Application
	// Info is the mutant's semantic analysis, computed as part of the
	// validity check. Callers compile straight from it instead of
	// re-running sem on a program Mutate just analyzed.
	Info *sem.Info
	// Mutated is the set of method names whose bodies differ from the
	// seed. It is a superset of the Applied[].Method names: MI edits
	// both its target method and the method containing the chosen call
	// site. Methods outside this set are byte-identical to the seed's
	// and safe to reuse compiled.
	Mutated map[string]bool
}

// Changed reports whether any mutation was applied.
func (r *Report) Changed() bool { return len(r.Applied) > 0 }

func (r *Report) String() string {
	if len(r.Applied) == 0 {
		return "no mutations"
	}
	parts := make([]string, len(r.Applied))
	for i, a := range r.Applied {
		parts[i] = fmt.Sprintf("%s@%s", a.Mutator, a.Method)
	}
	return strings.Join(parts, ", ")
}

// Mutate implements the JoNM function of Algorithm 1: clone the seed,
// visit every method, flip a coin, and apply a random mutator at a
// random program point. The result is always a valid program that is
// observably equivalent to the seed; if no method got mutated, one
// forced mutation is applied so every call yields a distinct JIT
// trace.
func Mutate(seed *ast.Program, cfg *Config) (*ast.Program, *Report, error) {
	cfg = cfg.withDefaults()
	var p *ast.Program
	cow := cfg.SeedInfo != nil
	if cow {
		// Copy-on-write clone: the program shell (class, field and
		// method tables) is fresh, but a method body is deep-cloned
		// only when a mutator actually edits it (ensureCloned).
		// Untouched methods stay shared with the seed — safe because
		// the incremental analysis (AnalyzeDelta) never writes to
		// unchanged methods, and mutant ASTs are read-only downstream.
		cls := *seed.Class
		cls.Fields = append([]*ast.Field(nil), seed.Class.Fields...)
		cls.Methods = append([]*ast.Method(nil), seed.Class.Methods...)
		p = &ast.Program{Class: &cls}
	} else {
		// Full analysis re-annotates every method in place, so the
		// mutant must not share any node with the seed.
		p = ast.CloneProgram(seed)
	}
	mc := newMutationCtx(p, cfg)
	if !cow {
		for i := range mc.cloned {
			mc.cloned[i] = true
		}
	}
	report := &Report{}

	n := len(p.Class.Methods)
	for i := 0; i < n; i++ {
		if mc.rng.Float64() >= cfg.MethodProb {
			continue
		}
		if app, ok := mc.mutateMethod(i); ok {
			report.Applied = append(report.Applied, app)
		}
	}
	if len(report.Applied) == 0 {
		// Force at least one mutation (LI on a random method) so the
		// mutant is never identical to the seed.
		i := mc.rng.Intn(n)
		if app, ok := mc.applyMutator(LI, i); ok {
			report.Applied = append(report.Applied, app)
		}
	}

	var info *sem.Info
	var err error
	if cfg.SeedInfo != nil {
		info, err = sem.AnalyzeDelta(p, cfg.SeedInfo, mc.mutated)
	} else {
		info, err = sem.Analyze(p)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("jonm: mutation produced an invalid program (%s): %w", report, err)
	}
	report.Info = info
	report.Mutated = mc.mutated
	return p, report, nil
}

// mutationCtx carries shared state across one Mutate call.
type mutationCtx struct {
	prog *ast.Program
	cfg  *Config
	rng  *rand.Rand

	used    map[string]bool // every identifier in the program
	mutated map[string]bool // methods whose bodies were edited
	counter int

	// cloned[i] marks prog.Class.Methods[i] as privately owned (deep
	// cloned); ensureCloned flips it on first edit. Reusable buffers
	// keep collectPoints allocation-free in the steady state.
	cloned   []bool
	ptsBuf   []progPoint
	scopeBuf []scopeVar
}

func newMutationCtx(p *ast.Program, cfg *Config) *mutationCtx {
	mc := &mutationCtx{prog: p, cfg: cfg, rng: cfg.Rand, used: map[string]bool{}, mutated: map[string]bool{},
		cloned: make([]bool, len(p.Class.Methods))}
	if mc.rng == nil {
		mc.rng = rand.New(rand.NewSource(1))
	}
	for _, f := range p.Class.Fields {
		mc.used[f.Name] = true
	}
	for _, m := range p.Class.Methods {
		mc.used[m.Name] = true
		for _, prm := range m.Params {
			mc.used[prm.Name] = true
		}
		ast.WalkStmts(m, func(s ast.Stmt) bool {
			if d, ok := s.(*ast.DeclStmt); ok {
				mc.used[d.Name] = true
			}
			return true
		})
	}
	return mc
}

// touch records that a method's body was edited (feeds Report.Mutated
// and the incremental re-analysis set).
func (mc *mutationCtx) touch(methodName string) { mc.mutated[methodName] = true }

// fresh returns a new identifier unused anywhere in the program
// (the paper's final renaming step, done eagerly).
func (mc *mutationCtx) fresh(hint string) string {
	for {
		mc.counter++
		name := "jx" + hint + strconv.Itoa(mc.counter)
		if !mc.used[name] {
			mc.used[name] = true
			return name
		}
	}
}

// ensureCloned replaces method i with a deep clone on first edit and
// returns it (copy-on-write). Mutators must only ever write through
// the returned clone; the original stays shared with the seed.
func (mc *mutationCtx) ensureCloned(i int) *ast.Method {
	if !mc.cloned[i] {
		mc.prog.Class.Methods[i] = ast.CloneMethod(mc.prog.Class.Methods[i])
		mc.cloned[i] = true
	}
	return mc.prog.Class.Methods[i]
}

func (mc *mutationCtx) mutateMethod(i int) (Application, bool) {
	mut := mc.cfg.Mutators[mc.rng.Intn(len(mc.cfg.Mutators))]
	return mc.applyMutator(mut, i)
}

func (mc *mutationCtx) applyMutator(mut MutatorName, i int) (Application, bool) {
	switch mut {
	case LI:
		return mc.loopInserter(i)
	case SW:
		if app, ok := mc.statementWrapper(i); ok {
			return app, true
		}
		return mc.loopInserter(i) // no wrappable statement: fall back
	case MI:
		if app, ok := mc.methodInvocator(i); ok {
			return app, true
		}
		return mc.loopInserter(i) // no call site: fall back
	}
	return Application{}, false
}

// ---------------------------------------------------------------------------
// Program points and scopes
// ---------------------------------------------------------------------------

// scopeVar is a variable visible at a program point.
type scopeVar struct {
	name string
	typ  ast.Type
}

// progPoint is an insertion point ρ: a position inside a statement
// list. The variables in scope at a point are computed on demand for
// the one point a mutator actually picks (scopeAt) — materializing a
// scope snapshot per point was the mutation pipeline's largest
// allocation source.
type progPoint struct {
	list  *[]ast.Stmt
	index int
}

// insert places stmts at the point (before the statement currently at
// index).
func (pp *progPoint) insert(stmts ...ast.Stmt) {
	l := *pp.list
	out := make([]ast.Stmt, 0, len(l)+len(stmts))
	out = append(out, l[:pp.index]...)
	out = append(out, stmts...)
	out = append(out, l[pp.index:]...)
	*pp.list = out
}

// next returns the statement just after the point, or nil.
func (pp *progPoint) next() ast.Stmt {
	l := *pp.list
	if pp.index < len(l) {
		return l[pp.index]
	}
	return nil
}

// replaceNext swaps the statement after the point for repl.
func (pp *progPoint) replaceNext(repl ast.Stmt) {
	(*pp.list)[pp.index] = repl
}

// walkPoints enumerates m's insertion points in a fixed order (the
// ordinal space shared by collectPoints and scopeAt), maintaining the
// scope incrementally. visit receives the current scope slice — shared
// and only valid during that visit call — and returns false to stop
// the walk early.
func (mc *mutationCtx) walkPoints(m *ast.Method, visit func(list *[]ast.Stmt, index int, scope []scopeVar) bool) {
	scope := mc.scopeBuf[:0]
	for _, p := range m.Params {
		scope = append(scope, scopeVar{p.Name, p.Type})
	}

	stopped := false
	var walkList func(list *[]ast.Stmt)
	var walkStmt func(s ast.Stmt)

	walkList = func(list *[]ast.Stmt) {
		mark := len(scope)
		for i := 0; i <= len(*list); i++ {
			if !visit(list, i, scope) {
				stopped = true
				return
			}
			if i < len(*list) {
				s := (*list)[i]
				if d, ok := s.(*ast.DeclStmt); ok {
					scope = append(scope, scopeVar{d.Name, d.Type})
				}
				walkStmt(s)
				if stopped {
					return
				}
			}
		}
		scope = scope[:mark]
	}

	walkStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.Block:
			walkList(&s.Stmts)
		case *ast.IfStmt:
			walkList(&s.Then.Stmts)
			if stopped {
				return
			}
			switch e := s.Else.(type) {
			case *ast.Block:
				walkList(&e.Stmts)
			case *ast.IfStmt:
				walkStmt(e)
			}
		case *ast.ForStmt:
			mark := len(scope)
			if d, ok := s.Init.(*ast.DeclStmt); ok {
				scope = append(scope, scopeVar{d.Name, d.Type})
			}
			walkList(&s.Body.Stmts)
			if stopped {
				return
			}
			scope = scope[:mark]
		case *ast.WhileStmt:
			walkList(&s.Body.Stmts)
		case *ast.SwitchStmt:
			for _, c := range s.Cases {
				walkList(&c.Body)
				if stopped {
					return
				}
			}
		}
	}

	walkList(&m.Body.Stmts)
	mc.scopeBuf = scope[:0]
}

// collectPoints enumerates every insertion point in m's body. The
// returned slice is owned by the mutationCtx and reused by the next
// collectPoints call: callers must be done with (or have copied)
// everything they keep before collecting again.
func (mc *mutationCtx) collectPoints(m *ast.Method) []progPoint {
	points := mc.ptsBuf[:0]
	mc.walkPoints(m, func(list *[]ast.Stmt, index int, _ []scopeVar) bool {
		points = append(points, progPoint{list: list, index: index})
		return true
	})
	mc.ptsBuf = points
	return points
}

// scopeAt returns a copy of the variables in scope at point ordinal
// idx of m (same ordinal space as collectPoints).
func (mc *mutationCtx) scopeAt(m *ast.Method, idx int) []scopeVar {
	var out []scopeVar
	ord := 0
	mc.walkPoints(m, func(_ *[]ast.Stmt, _ int, scope []scopeVar) bool {
		if ord == idx {
			out = append([]scopeVar(nil), scope...)
			return false
		}
		ord++
		return true
	})
	return out
}

// scopeWithFields extends a point's scope with all class fields
// (always visible).
func (mc *mutationCtx) scopeWithFields(vars []scopeVar) []scopeVar {
	out := append([]scopeVar(nil), vars...)
	for _, f := range mc.prog.Class.Fields {
		out = append(out, scopeVar{f.Name, f.Type})
	}
	return out
}
