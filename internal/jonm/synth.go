package jonm

import (
	"artemis/internal/lang/ast"
)

// synth is the loop-synthesis context of Algorithm 2: it fills
// expression holes (SynExpr) and statement holes (SynStmts) and tracks
// the reused-variable set V' whose values must be backed up around the
// synthesized loop.
type synth struct {
	mc    *mutationCtx
	scope []scopeVar // V: variables available at ρ
	// written is the subset of V' that synthesized code assigns to;
	// exactly these need the backup/restore of Algorithm 2 lines 9-10.
	// (Read-only reuses need no restore — and must not get one: under
	// SW the wrapped original statement runs inside the loop, and
	// restoring a variable it wrote would undo its effect.)
	written map[string]ast.Type

	// readOnly forbids writing scope variables entirely (used for MI
	// prologues, which run on every pre-invocation and must not touch
	// pre-existing state, and for SW loop bodies, which surround the
	// wrapped original statement).
	readOnly bool

	// fresh locals declared by synthesized statements (usable as
	// write targets and operands).
	locals []scopeVar
}

func newSynth(mc *mutationCtx, scope []scopeVar) *synth {
	return &synth{mc: mc, scope: scope, written: map[string]ast.Type{}}
}

func (s *synth) rng() int              { return s.mc.rng.Int() }
func (s *synth) pick(n int) int        { return s.mc.rng.Intn(n) }
func (s *synth) chance(p float64) bool { return s.mc.rng.Float64() < p }

// ---------------------------------------------------------------------------
// SynExpr (Algorithm 2, lines 12-19)
// ---------------------------------------------------------------------------

// expr synthesizes an expression of the given type. Rule 1: a random
// literal; Rule 2: reuse a variable from V (recording it in V').
// Array-typed holes build fresh array literals with recursively
// synthesized elements.
func (s *synth) expr(t ast.Type) ast.Expr {
	if t.IsArray() {
		n := 1 + s.pick(5)
		lit := &ast.NewArrayExpr{Elem: t.Elem, Elems: []ast.Expr{}}
		for i := 0; i < n; i++ {
			lit.Elems = append(lit.Elems, s.expr(ast.Type{Kind: t.Elem}))
		}
		return lit
	}
	// Rule 2: reuse an in-scope variable of this type.
	if s.chance(0.5) {
		if v := s.reuse(t, true); v != nil {
			return v
		}
	}
	// Rule 1: random literal in the type's domain.
	switch t.Kind {
	case ast.KindBoolean:
		return &ast.BoolLit{Value: s.chance(0.5)}
	case ast.KindLong:
		v := s.mc.rng.Int63()
		if s.chance(0.5) {
			v = -v
		}
		if s.chance(0.6) {
			v %= 100000 // mostly small values
		}
		return &ast.IntLit{Value: v, IsLong: true}
	default:
		v := int64(int32(s.mc.rng.Uint64()))
		if s.chance(0.6) {
			v %= 10000
		}
		return &ast.IntLit{Value: v}
	}
}

// reuse returns a reference to an in-scope or synthesized variable of
// type t for reading (Rule 2 of SynExpr). Reads are always neutral and
// need no backup.
func (s *synth) reuse(t ast.Type, readAccess bool) ast.Expr {
	_ = readAccess
	var cands []scopeVar
	for _, v := range s.locals {
		if v.typ.Equal(t) {
			cands = append(cands, v)
		}
	}
	for _, v := range s.scope {
		if v.typ.Equal(t) {
			cands = append(cands, v)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	return &ast.Ident{Name: cands[s.pick(len(cands))].name}
}

// writeTarget returns a variable the synthesized code may assign to:
// a fresh local, or (when allowed) a reused scope variable.
func (s *synth) writeTarget(t ast.Type) ast.Expr {
	if !s.readOnly && s.chance(0.4) {
		var cands []scopeVar
		for _, v := range s.scope {
			if v.typ.Equal(t) && !v.typ.IsArray() {
				cands = append(cands, v)
			}
		}
		if len(cands) > 0 {
			v := cands[s.pick(len(cands))]
			s.written[v.name] = v.typ
			return &ast.Ident{Name: v.name}
		}
	}
	for _, v := range s.locals {
		if v.typ.Equal(t) && s.chance(0.5) {
			return &ast.Ident{Name: v.name}
		}
	}
	return nil
}

// declFresh declares a new local of type t initialized with a
// synthesized expression and returns (decl, name).
func (s *synth) declFresh(t ast.Type, hint string) (*ast.DeclStmt, string) {
	name := s.mc.fresh(hint)
	d := &ast.DeclStmt{Type: t, Name: name, Init: s.expr(t)}
	s.locals = append(s.locals, scopeVar{name, t})
	return d, name
}

// guardedDiv builds x / (y | 1) — exception-free by construction.
func (s *synth) guardedDiv(t ast.Type, x, y ast.Expr) ast.Expr {
	one := &ast.IntLit{Value: 1, IsLong: t.Kind == ast.KindLong}
	return &ast.BinaryExpr{Op: ast.OpDiv, X: x,
		Y: &ast.BinaryExpr{Op: ast.OpOr, X: y, Y: one}}
}

// guardedIndex builds (x & 0x7fffffff) % arr.length for arrays with
// length >= 1; synthesized arrays always have >= 1 element.
func (s *synth) guardedIndex(arrName string, x ast.Expr) ast.Expr {
	return &ast.BinaryExpr{Op: ast.OpRem,
		X: &ast.BinaryExpr{Op: ast.OpAnd, X: x, Y: &ast.IntLit{Value: 0x7fffffff}},
		Y: &ast.LenExpr{Arr: &ast.Ident{Name: arrName}}}
}

// ---------------------------------------------------------------------------
// SynStmts (Algorithm 2, lines 20-24): the statement-skeleton corpus
// ---------------------------------------------------------------------------

// stmts synthesizes a statement list by instantiating a random
// skeleton (Section 3.4: skeletons with expression holes, extracted
// from JVM test suites in the paper; a built-in corpus here).
func (s *synth) stmts() []ast.Stmt {
	if s.mc.cfg.DisableSkeletons {
		return nil
	}
	sk := skeletons[s.pick(len(skeletons))]
	return sk(s)
}

// skeleton builds a short statement sequence with expression holes
// filled by SynExpr.
type skeleton func(*synth) []ast.Stmt

var skeletons = []skeleton{
	// Arithmetic update chain on a fresh int.
	func(s *synth) []ast.Stmt {
		d, name := s.declFresh(ast.TypeInt, "a")
		id := func() ast.Expr { return &ast.Ident{Name: name} }
		return []ast.Stmt{
			d,
			&ast.AssignStmt{Target: id(), Op: ast.AsnAdd,
				Value: &ast.BinaryExpr{Op: ast.OpMul, X: s.expr(ast.TypeInt), Y: &ast.IntLit{Value: 3}}},
			&ast.AssignStmt{Target: id(), Op: ast.AsnXor,
				Value: &ast.BinaryExpr{Op: ast.OpShr, X: id(), Y: &ast.IntLit{Value: int64(1 + s.pick(15))}}},
		}
	},
	// Long mix with shifts (xorshift-style).
	func(s *synth) []ast.Stmt {
		d, name := s.declFresh(ast.TypeLong, "x")
		id := func() ast.Expr { return &ast.Ident{Name: name} }
		return []ast.Stmt{
			d,
			&ast.AssignStmt{Target: id(), Op: ast.AsnXor,
				Value: &ast.BinaryExpr{Op: ast.OpShl, X: id(), Y: &ast.IntLit{Value: 13}}},
			&ast.AssignStmt{Target: id(), Op: ast.AsnXor,
				Value: &ast.BinaryExpr{Op: ast.OpUshr, X: id(), Y: &ast.IntLit{Value: 7}}},
			&ast.AssignStmt{Target: id(), Op: ast.AsnAdd, Value: s.expr(ast.TypeLong)},
		}
	},
	// Conditional update of a (possibly reused) variable.
	func(s *synth) []ast.Stmt {
		t := ast.TypeInt
		target := s.writeTarget(t)
		var pre []ast.Stmt
		if target == nil {
			d, name := s.declFresh(t, "c")
			pre = append(pre, d)
			target = &ast.Ident{Name: name}
		}
		cond := &ast.BinaryExpr{Op: ast.OpLt, X: s.expr(t), Y: s.expr(t)}
		return append(pre, &ast.IfStmt{
			Cond: cond,
			Then: &ast.Block{Stmts: []ast.Stmt{
				&ast.AssignStmt{Target: ast.CloneExpr(target), Op: ast.AsnAdd, Value: s.expr(t)},
			}},
			Else: &ast.Block{Stmts: []ast.Stmt{
				&ast.AssignStmt{Target: ast.CloneExpr(target), Op: ast.AsnSub, Value: &ast.IntLit{Value: int64(s.pick(100))}},
			}},
		})
	},
	// A small inner loop accumulating into a fresh long — the nested
	// loop shape that drives deeper OSR behaviour.
	func(s *synth) []ast.Stmt {
		acc, accName := s.declFresh(ast.TypeLong, "s")
		idx := s.mc.fresh("k")
		bound := int64(2 + s.pick(12))
		return []ast.Stmt{
			acc,
			&ast.ForStmt{
				Init: &ast.DeclStmt{Type: ast.TypeInt, Name: idx, Init: &ast.IntLit{Value: 0}},
				Cond: &ast.BinaryExpr{Op: ast.OpLt, X: &ast.Ident{Name: idx}, Y: &ast.IntLit{Value: bound}},
				Post: &ast.AssignStmt{Target: &ast.Ident{Name: idx}, Op: ast.AsnAdd, Value: &ast.IntLit{Value: 1}},
				Body: &ast.Block{Stmts: []ast.Stmt{
					&ast.AssignStmt{Target: &ast.Ident{Name: accName}, Op: ast.AsnAdd,
						Value: &ast.BinaryExpr{Op: ast.OpMul,
							X: &ast.Ident{Name: idx},
							Y: s.expr(ast.TypeInt)}},
				}},
			},
		}
	},
	// Switch over a synthesized tag with fallthrough.
	func(s *synth) []ast.Stmt {
		d, name := s.declFresh(ast.TypeInt, "t")
		id := func() ast.Expr { return &ast.Ident{Name: name} }
		tag := &ast.BinaryExpr{Op: ast.OpRem,
			X: &ast.BinaryExpr{Op: ast.OpAnd, X: s.expr(ast.TypeInt), Y: &ast.IntLit{Value: 0x7fffffff}},
			Y: &ast.IntLit{Value: 4}}
		return []ast.Stmt{
			d,
			&ast.SwitchStmt{Tag: tag, Cases: []*ast.SwitchCase{
				{Values: []int64{0}, Body: []ast.Stmt{
					&ast.AssignStmt{Target: id(), Op: ast.AsnAdd, Value: s.expr(ast.TypeInt)},
				}},
				{Values: []int64{1}, Body: []ast.Stmt{
					&ast.AssignStmt{Target: id(), Op: ast.AsnXor, Value: &ast.IntLit{Value: int64(s.pick(1 << 16))}},
					&ast.BreakStmt{},
				}},
				{Values: []int64{2}, Body: []ast.Stmt{
					&ast.AssignStmt{Target: id(), Op: ast.AsnMul, Value: &ast.IntLit{Value: int64(2 + s.pick(7))}},
					&ast.BreakStmt{},
				}},
				{Values: nil, Body: []ast.Stmt{
					&ast.AssignStmt{Target: id(), Op: ast.AsnSub, Value: &ast.IntLit{Value: 1}},
				}},
			}},
		}
	},
	// Fresh array fill-and-fold.
	func(s *synth) []ast.Stmt {
		arrName := s.mc.fresh("ar")
		n := int64(2 + s.pick(6))
		accD, accName := s.declFresh(ast.TypeInt, "f")
		idx := s.mc.fresh("q")
		s.locals = append(s.locals, scopeVar{arrName, ast.ArrayOf(ast.KindInt)})
		return []ast.Stmt{
			&ast.DeclStmt{Type: ast.ArrayOf(ast.KindInt), Name: arrName,
				Init: &ast.NewArrayExpr{Elem: ast.KindInt, Len: &ast.IntLit{Value: n}}},
			accD,
			&ast.ForStmt{
				Init: &ast.DeclStmt{Type: ast.TypeInt, Name: idx, Init: &ast.IntLit{Value: 0}},
				Cond: &ast.BinaryExpr{Op: ast.OpLt, X: &ast.Ident{Name: idx},
					Y: &ast.LenExpr{Arr: &ast.Ident{Name: arrName}}},
				Post: &ast.AssignStmt{Target: &ast.Ident{Name: idx}, Op: ast.AsnAdd, Value: &ast.IntLit{Value: 1}},
				Body: &ast.Block{Stmts: []ast.Stmt{
					&ast.AssignStmt{
						Target: &ast.IndexExpr{Arr: &ast.Ident{Name: arrName}, Index: &ast.Ident{Name: idx}},
						Op:     ast.AsnSet,
						Value: &ast.BinaryExpr{Op: ast.OpAdd, X: &ast.Ident{Name: idx},
							Y: s.expr(ast.TypeInt)}},
					&ast.AssignStmt{Target: &ast.Ident{Name: accName}, Op: ast.AsnAdd,
						Value: &ast.IndexExpr{Arr: &ast.Ident{Name: arrName}, Index: &ast.Ident{Name: idx}}},
				}},
			},
		}
	},
	// Guarded division / remainder chain.
	func(s *synth) []ast.Stmt {
		d, name := s.declFresh(ast.TypeInt, "d")
		id := func() ast.Expr { return &ast.Ident{Name: name} }
		return []ast.Stmt{
			d,
			&ast.AssignStmt{Target: id(), Op: ast.AsnSet,
				Value: s.guardedDiv(ast.TypeInt, id(), s.expr(ast.TypeInt))},
			&ast.AssignStmt{Target: id(), Op: ast.AsnAdd,
				Value: &ast.BinaryExpr{Op: ast.OpRem,
					X: &ast.BinaryExpr{Op: ast.OpAnd, X: s.expr(ast.TypeInt), Y: &ast.IntLit{Value: 0x7fffffff}},
					Y: &ast.IntLit{Value: int64(3 + s.pick(97))}}},
		}
	},
	// Boolean cascade into a fresh flag (conditional flow diversity).
	func(s *synth) []ast.Stmt {
		d, name := s.declFresh(ast.TypeBoolean, "b")
		id := func() ast.Expr { return &ast.Ident{Name: name} }
		cmp := &ast.BinaryExpr{Op: ast.OpGe, X: s.expr(ast.TypeLong), Y: s.expr(ast.TypeLong)}
		return []ast.Stmt{
			d,
			&ast.AssignStmt{Target: id(), Op: ast.AsnSet,
				Value: &ast.BinaryExpr{Op: ast.OpLOr, X: id(),
					Y: &ast.BinaryExpr{Op: ast.OpLAnd, X: cmp, Y: s.expr(ast.TypeBoolean)}}},
		}
	},
	// Ternary pyramid.
	func(s *synth) []ast.Stmt {
		d, name := s.declFresh(ast.TypeInt, "y")
		id := func() ast.Expr { return &ast.Ident{Name: name} }
		inner := &ast.CondExpr{
			Cond: &ast.BinaryExpr{Op: ast.OpNe, X: s.expr(ast.TypeInt), Y: &ast.IntLit{Value: 0}},
			Then: s.expr(ast.TypeInt),
			Else: &ast.UnaryExpr{Op: ast.OpBitNot, X: s.expr(ast.TypeInt)},
		}
		return []ast.Stmt{
			d,
			&ast.AssignStmt{Target: id(), Op: ast.AsnSet, Value: &ast.CondExpr{
				Cond: &ast.BinaryExpr{Op: ast.OpLt, X: id(), Y: s.expr(ast.TypeInt)},
				Then: inner,
				Else: id(),
			}},
		}
	},
	// Cast round-trips (int <-> long narrowing behaviour).
	func(s *synth) []ast.Stmt {
		d, name := s.declFresh(ast.TypeLong, "w")
		id := func() ast.Expr { return &ast.Ident{Name: name} }
		return []ast.Stmt{
			d,
			&ast.AssignStmt{Target: id(), Op: ast.AsnAdd,
				Value: &ast.CastExpr{To: ast.TypeLong,
					X: &ast.CastExpr{To: ast.TypeInt, X: &ast.BinaryExpr{Op: ast.OpMul, X: id(), Y: s.expr(ast.TypeLong)}}}},
			&ast.AssignStmt{Target: id(), Op: ast.AsnUshr, Value: &ast.IntLit{Value: int64(1 + s.pick(30))}},
		}
	},
	// Nested conditional ladder over a reused comparison.
	func(s *synth) []ast.Stmt {
		d, name := s.declFresh(ast.TypeInt, "g")
		id := func() ast.Expr { return &ast.Ident{Name: name} }
		mk := func(op ast.BinOp, k int64) *ast.IfStmt {
			return &ast.IfStmt{
				Cond: &ast.BinaryExpr{Op: op, X: id(), Y: s.expr(ast.TypeInt)},
				Then: &ast.Block{Stmts: []ast.Stmt{
					&ast.AssignStmt{Target: id(), Op: ast.AsnAdd, Value: &ast.IntLit{Value: k}},
				}},
			}
		}
		inner := mk(ast.OpLt, 3)
		outer := mk(ast.OpGe, -7)
		outer.Else = &ast.Block{Stmts: []ast.Stmt{inner}}
		return []ast.Stmt{d, outer}
	},
	// Two interacting accumulators (classic induction-variable pair).
	func(s *synth) []ast.Stmt {
		d1, n1 := s.declFresh(ast.TypeInt, "u")
		d2, n2 := s.declFresh(ast.TypeInt, "v")
		id1 := func() ast.Expr { return &ast.Ident{Name: n1} }
		id2 := func() ast.Expr { return &ast.Ident{Name: n2} }
		return []ast.Stmt{
			d1, d2,
			&ast.AssignStmt{Target: id1(), Op: ast.AsnAdd, Value: id2()},
			&ast.AssignStmt{Target: id2(), Op: ast.AsnSub, Value: id1()},
			&ast.AssignStmt{Target: id1(), Op: ast.AsnXor, Value: id2()},
		}
	},
	// Long/int mixed-width arithmetic with explicit promotions.
	func(s *synth) []ast.Stmt {
		dl, nl := s.declFresh(ast.TypeLong, "ml")
		di, ni := s.declFresh(ast.TypeInt, "mi")
		return []ast.Stmt{
			dl, di,
			&ast.AssignStmt{Target: &ast.Ident{Name: nl}, Op: ast.AsnAdd,
				Value: &ast.BinaryExpr{Op: ast.OpMul,
					X: &ast.Ident{Name: ni},
					Y: s.expr(ast.TypeLong)}},
			&ast.AssignStmt{Target: &ast.Ident{Name: ni}, Op: ast.AsnSet,
				Value: &ast.CastExpr{To: ast.TypeInt,
					X: &ast.BinaryExpr{Op: ast.OpUshr, X: &ast.Ident{Name: nl},
						Y: &ast.IntLit{Value: int64(1 + s.pick(40))}}}},
		}
	},
	// A boolean-array flag table driving updates.
	func(s *synth) []ast.Stmt {
		arrName := s.mc.fresh("fl")
		s.locals = append(s.locals, scopeVar{arrName, ast.ArrayOf(ast.KindBoolean)})
		accD, accName := s.declFresh(ast.TypeInt, "h")
		idx := s.mc.fresh("j")
		n := int64(2 + s.pick(5))
		elems := make([]ast.Expr, n)
		for i := range elems {
			elems[i] = &ast.BoolLit{Value: s.chance(0.5)}
		}
		return []ast.Stmt{
			&ast.DeclStmt{Type: ast.ArrayOf(ast.KindBoolean), Name: arrName,
				Init: &ast.NewArrayExpr{Elem: ast.KindBoolean, Elems: elems}},
			accD,
			&ast.ForStmt{
				Init: &ast.DeclStmt{Type: ast.TypeInt, Name: idx, Init: &ast.IntLit{Value: 0}},
				Cond: &ast.BinaryExpr{Op: ast.OpLt, X: &ast.Ident{Name: idx},
					Y: &ast.LenExpr{Arr: &ast.Ident{Name: arrName}}},
				Post: &ast.AssignStmt{Target: &ast.Ident{Name: idx}, Op: ast.AsnAdd, Value: &ast.IntLit{Value: 1}},
				Body: &ast.Block{Stmts: []ast.Stmt{
					&ast.IfStmt{
						Cond: &ast.IndexExpr{Arr: &ast.Ident{Name: arrName}, Index: &ast.Ident{Name: idx}},
						Then: &ast.Block{Stmts: []ast.Stmt{
							&ast.AssignStmt{Target: &ast.Ident{Name: accName}, Op: ast.AsnAdd, Value: &ast.Ident{Name: idx}},
						}},
						Else: &ast.Block{Stmts: []ast.Stmt{
							&ast.AssignStmt{Target: &ast.Ident{Name: accName}, Op: ast.AsnSub, Value: &ast.IntLit{Value: 2}},
						}},
					},
				}},
			},
		}
	},
	// Early-break search loop (the uncommon-trap-shaped exit).
	func(s *synth) []ast.Stmt {
		accD, accName := s.declFresh(ast.TypeInt, "sr")
		idx := s.mc.fresh("p")
		bound := int64(4 + s.pick(12))
		return []ast.Stmt{
			accD,
			&ast.ForStmt{
				Init: &ast.DeclStmt{Type: ast.TypeInt, Name: idx, Init: &ast.IntLit{Value: 0}},
				Cond: &ast.BinaryExpr{Op: ast.OpLt, X: &ast.Ident{Name: idx}, Y: &ast.IntLit{Value: bound}},
				Post: &ast.AssignStmt{Target: &ast.Ident{Name: idx}, Op: ast.AsnAdd, Value: &ast.IntLit{Value: 1}},
				Body: &ast.Block{Stmts: []ast.Stmt{
					&ast.AssignStmt{Target: &ast.Ident{Name: accName}, Op: ast.AsnAdd,
						Value: &ast.BinaryExpr{Op: ast.OpMul, X: &ast.Ident{Name: idx}, Y: s.expr(ast.TypeInt)}},
					&ast.IfStmt{
						Cond: &ast.BinaryExpr{Op: ast.OpGt, X: &ast.Ident{Name: accName}, Y: s.expr(ast.TypeInt)},
						Then: &ast.Block{Stmts: []ast.Stmt{&ast.BreakStmt{}}},
					},
				}},
			},
		}
	},
	// Bit-counting loop (shifts with data-dependent trip behaviour).
	func(s *synth) []ast.Stmt {
		dv, nv := s.declFresh(ast.TypeInt, "bits")
		cnt := s.mc.fresh("c")
		wv := s.mc.fresh("wv")
		return []ast.Stmt{
			dv,
			&ast.DeclStmt{Type: ast.TypeInt, Name: cnt, Init: &ast.IntLit{Value: 0}},
			&ast.DeclStmt{Type: ast.TypeInt, Name: wv, Init: &ast.Ident{Name: nv}},
			&ast.WhileStmt{
				Cond: &ast.BinaryExpr{Op: ast.OpNe, X: &ast.Ident{Name: wv}, Y: &ast.IntLit{Value: 0}},
				Body: &ast.Block{Stmts: []ast.Stmt{
					&ast.AssignStmt{Target: &ast.Ident{Name: cnt}, Op: ast.AsnAdd,
						Value: &ast.BinaryExpr{Op: ast.OpAnd, X: &ast.Ident{Name: wv}, Y: &ast.IntLit{Value: 1}}},
					&ast.AssignStmt{Target: &ast.Ident{Name: wv}, Op: ast.AsnUshr, Value: &ast.IntLit{Value: 1}},
				}},
			},
			&ast.AssignStmt{Target: &ast.Ident{Name: nv}, Op: ast.AsnSet, Value: &ast.Ident{Name: cnt}},
		}
	},
	// Switch dispatch over a masked long.
	func(s *synth) []ast.Stmt {
		d, name := s.declFresh(ast.TypeLong, "sw")
		id := func() ast.Expr { return &ast.Ident{Name: name} }
		tag := &ast.CastExpr{To: ast.TypeInt,
			X: &ast.BinaryExpr{Op: ast.OpAnd, X: id(), Y: &ast.IntLit{Value: 7, IsLong: true}}}
		return []ast.Stmt{
			d,
			&ast.SwitchStmt{Tag: tag, Cases: []*ast.SwitchCase{
				{Values: []int64{0, 1}, Body: []ast.Stmt{
					&ast.AssignStmt{Target: id(), Op: ast.AsnAdd, Value: s.expr(ast.TypeLong)},
					&ast.BreakStmt{},
				}},
				{Values: []int64{2}, Body: []ast.Stmt{
					&ast.AssignStmt{Target: id(), Op: ast.AsnShl, Value: &ast.IntLit{Value: 3}},
				}},
				{Values: []int64{5}, Body: []ast.Stmt{
					&ast.AssignStmt{Target: id(), Op: ast.AsnSet,
						Value: s.guardedDiv(ast.TypeLong, id(), s.expr(ast.TypeLong))},
					&ast.BreakStmt{},
				}},
				{Values: nil, Body: []ast.Stmt{
					&ast.AssignStmt{Target: id(), Op: ast.AsnXor, Value: &ast.IntLit{Value: -1, IsLong: true}},
				}},
			}},
		}
	},
	// Ternary-driven strength reduction shapes.
	func(s *synth) []ast.Stmt {
		d, name := s.declFresh(ast.TypeInt, "tr")
		id := func() ast.Expr { return &ast.Ident{Name: name} }
		return []ast.Stmt{
			d,
			&ast.AssignStmt{Target: id(), Op: ast.AsnMul, Value: &ast.IntLit{Value: 8}},
			&ast.AssignStmt{Target: id(), Op: ast.AsnSet, Value: &ast.CondExpr{
				Cond: &ast.BinaryExpr{Op: ast.OpEq,
					X: &ast.BinaryExpr{Op: ast.OpAnd, X: id(), Y: &ast.IntLit{Value: 1}},
					Y: &ast.IntLit{Value: 0}},
				Then: &ast.BinaryExpr{Op: ast.OpShr, X: id(), Y: &ast.IntLit{Value: 1}},
				Else: &ast.BinaryExpr{Op: ast.OpAdd,
					X: &ast.BinaryExpr{Op: ast.OpMul, X: id(), Y: &ast.IntLit{Value: 3}},
					Y: &ast.IntLit{Value: 1}},
			}},
		}
	},
	// A countdown while loop.
	func(s *synth) []ast.Stmt {
		cname := s.mc.fresh("n")
		d := &ast.DeclStmt{Type: ast.TypeInt, Name: cname, Init: &ast.IntLit{Value: int64(2 + s.pick(9))}}
		s.locals = append(s.locals, scopeVar{cname, ast.TypeInt})
		acc, accName := s.declFresh(ast.TypeInt, "z")
		return []ast.Stmt{
			d,
			acc,
			&ast.WhileStmt{
				Cond: &ast.BinaryExpr{Op: ast.OpGt, X: &ast.Ident{Name: cname}, Y: &ast.IntLit{Value: 0}},
				Body: &ast.Block{Stmts: []ast.Stmt{
					&ast.AssignStmt{Target: &ast.Ident{Name: cname}, Op: ast.AsnSub, Value: &ast.IntLit{Value: 1}},
					&ast.AssignStmt{Target: &ast.Ident{Name: accName}, Op: ast.AsnOr,
						Value: &ast.BinaryExpr{Op: ast.OpShl, X: &ast.Ident{Name: cname},
							Y: &ast.BinaryExpr{Op: ast.OpAnd, X: &ast.Ident{Name: cname}, Y: &ast.IntLit{Value: 15}}}},
				}},
			},
		}
	},
}

// ---------------------------------------------------------------------------
// SynLoop (Algorithm 2, lines 1-11)
// ---------------------------------------------------------------------------

// synLoop builds a synthesized loop following the Figure 3 skeleton:
//
//	for (int i = min(MIN, e1); i < max(MAX, clamp(e2)); i += STEP) {
//	    <stmts>;
//	    [placeholder]
//	    <stmts>;
//	}
//
// plus the V' backup declarations before and restores after. The
// placeholder statements (SW's wrapped statement, MI's pre-invocation)
// are supplied by the mutator. Both bound expressions are clamped
// modulo the hyper-parameters so trip counts stay within
// [ (MAX-MIN)/STEP, (2·MAX+MIN)/STEP ] — enough heat to cross every
// compilation threshold, never enough to blow the step budget (the
// practical stand-in for the paper's 2-minute timeout).
func (s *synth) synLoop(placeholder []ast.Stmt) (pre []ast.Stmt, loop ast.Stmt, post []ast.Stmt) {
	cfg := s.mc.cfg
	iname := s.mc.fresh("i")
	id := func() ast.Expr { return &ast.Ident{Name: iname} }

	// init = min(MIN, e1 % MIN)
	e1 := s.expr(ast.TypeInt)
	e1m := &ast.BinaryExpr{Op: ast.OpRem, X: e1, Y: &ast.IntLit{Value: cfg.Min}}
	initName := s.mc.fresh("lo")
	initDecl := &ast.DeclStmt{Type: ast.TypeInt, Name: initName, Init: e1m}
	initVal := &ast.CondExpr{
		Cond: &ast.BinaryExpr{Op: ast.OpLt, X: &ast.Ident{Name: initName}, Y: &ast.IntLit{Value: cfg.Min}},
		Then: &ast.Ident{Name: initName},
		Else: &ast.IntLit{Value: cfg.Min},
	}

	// bound = max(MAX, e2 % (2*MAX))
	e2 := s.expr(ast.TypeInt)
	e2m := &ast.BinaryExpr{Op: ast.OpRem, X: e2, Y: &ast.IntLit{Value: 2 * cfg.Max}}
	boundName := s.mc.fresh("hi")
	boundDecl := &ast.DeclStmt{Type: ast.TypeInt, Name: boundName, Init: e2m}
	boundVal := &ast.CondExpr{
		Cond: &ast.BinaryExpr{Op: ast.OpGt, X: &ast.Ident{Name: boundName}, Y: &ast.IntLit{Value: cfg.Max}},
		Then: &ast.Ident{Name: boundName},
		Else: &ast.IntLit{Value: cfg.Max},
	}

	step := int64(1 + s.pick(int(cfg.StepMax)))

	var body []ast.Stmt
	body = append(body, s.stmts()...)
	body = append(body, placeholder...)
	body = append(body, s.stmts()...)

	loopStmt := &ast.ForStmt{
		Init: &ast.DeclStmt{Type: ast.TypeInt, Name: iname, Init: initVal},
		Cond: &ast.BinaryExpr{Op: ast.OpLt, X: id(), Y: boundVal},
		Post: &ast.AssignStmt{Target: id(), Op: ast.AsnAdd, Value: &ast.IntLit{Value: step}},
		Body: &ast.Block{Stmts: body},
	}

	// Backups for the written subset of V' (Algorithm 2, lines 9-10).
	pre = []ast.Stmt{initDecl, boundDecl}
	names := make([]string, 0, len(s.written))
	for n := range s.written {
		names = append(names, n)
	}
	// Deterministic order.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, n := range names {
		t := s.written[n]
		if t.IsArray() {
			continue // writeTarget never selects arrays
		}
		bak := s.mc.fresh("bak")
		pre = append(pre, &ast.DeclStmt{Type: t, Name: bak, Init: &ast.Ident{Name: n}})
		post = append(post, &ast.AssignStmt{Target: &ast.Ident{Name: n}, Op: ast.AsnSet, Value: &ast.Ident{Name: bak}})
	}
	return pre, loopStmt, post
}
