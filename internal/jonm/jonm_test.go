package jonm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"artemis/internal/bytecode"
	"artemis/internal/fuzz"
	"artemis/internal/jit"
	"artemis/internal/lang/ast"
	"artemis/internal/lang/parser"
	"artemis/internal/lang/sem"
	"artemis/internal/vm"
)

// testCfg returns a small-bounds config so tests run fast while still
// producing thousands of synthesized iterations.
func testCfg(seed int64) *Config {
	return &Config{Min: 500, Max: 1000, StepMax: 4, Rand: rand.New(rand.NewSource(seed))}
}

func run(t *testing.T, p *ast.Program, cfg vm.Config) *vm.Output {
	t.Helper()
	info, err := sem.Analyze(p)
	if err != nil {
		t.Fatalf("sem: %v\n%s", err, ast.Print(p))
	}
	bp, err := bytecode.Compile(info)
	if err != nil {
		t.Fatalf("bytecode: %v", err)
	}
	return vm.Run(cfg, bp).Output
}

func TestMutateProducesValidDistinctPrograms(t *testing.T) {
	seedProg := fuzz.Generate(fuzz.Options{Seed: 7})
	seen := map[string]bool{}
	for i := int64(0); i < 20; i++ {
		mutant, rep, err := Mutate(seedProg, testCfg(i))
		if err != nil {
			t.Fatalf("mutate %d: %v", i, err)
		}
		if !rep.Changed() {
			t.Errorf("mutation %d applied nothing", i)
		}
		src := ast.Print(mutant)
		if src == ast.Print(seedProg) {
			t.Errorf("mutant %d identical to seed", i)
		}
		seen[src] = true
		// Mutants must reparse (printer/parser round trip).
		if _, err := parser.Parse(src); err != nil {
			t.Fatalf("mutant %d does not reparse: %v", i, err)
		}
	}
	if len(seen) < 10 {
		t.Errorf("only %d distinct mutants out of 20", len(seen))
	}
}

func TestMutateDoesNotModifySeed(t *testing.T) {
	seedProg := fuzz.Generate(fuzz.Options{Seed: 3})
	before := ast.Print(seedProg)
	for i := int64(0); i < 5; i++ {
		if _, _, err := Mutate(seedProg, testCfg(i)); err != nil {
			t.Fatal(err)
		}
	}
	if ast.Print(seedProg) != before {
		t.Fatal("Mutate modified the seed program in place")
	}
}

// TestNeutralityInterpreted is the core JoNM guarantee (Section 3.3):
// a mutant's observable output equals the seed's, checked on the
// interpreter where no JIT can interfere.
func TestNeutralityInterpreted(t *testing.T) {
	for s := int64(0); s < 25; s++ {
		seedProg := fuzz.Generate(fuzz.Options{Seed: s})
		ref := run(t, seedProg, vm.Config{StepLimit: 10_000_000})
		if ref.Term == vm.TermTimeout {
			continue
		}
		for i := int64(0); i < 4; i++ {
			mutant, rep, err := Mutate(seedProg, testCfg(s*100+i))
			if err != nil {
				t.Fatalf("seed %d mutant %d: %v", s, i, err)
			}
			got := run(t, mutant, vm.Config{StepLimit: 500_000_000})
			if got.Term == vm.TermTimeout {
				continue // mutant too hot for the budget; harness discards these
			}
			if !got.Equivalent(ref) {
				t.Errorf("seed %d mutant %d (%s) not neutral:\n seed:   %v %q %v\n mutant: %v %q %v",
					s, i, rep, ref.Term, ref.Detail, ref.Lines,
					got.Term, got.Detail, got.Lines)
			}
		}
	}
}

// TestNeutralityQuick drives the same property through testing/quick
// with arbitrary seeds.
func TestNeutralityQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	check := func(fuzzSeed, mutSeed int64) bool {
		seedProg := fuzz.Generate(fuzz.Options{Seed: fuzzSeed})
		ref := run(t, seedProg, vm.Config{StepLimit: 10_000_000})
		if ref.Term == vm.TermTimeout {
			return true
		}
		mutant, _, err := Mutate(seedProg, testCfg(mutSeed))
		if err != nil {
			t.Logf("mutate error: %v", err)
			return false
		}
		got := run(t, mutant, vm.Config{StepLimit: 500_000_000})
		if got.Term == vm.TermTimeout {
			return true
		}
		return got.Equivalent(ref)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestMutantsHeatTheJIT: mutants must actually reach compilation —
// that is their entire purpose (the seed stays cold, Section 2.2).
func TestMutantsHeatTheJIT(t *testing.T) {
	seedProg := fuzz.Generate(fuzz.Options{Seed: 11})
	cfg := vm.Config{
		JIT:             jit.New(jit.Options{MaxTier: 2}),
		EntryThresholds: []int64{80, 250},
		OSRThresholds:   []int64{100, 350},
		RecordTrace:     true,
		StepLimit:       500_000_000,
	}
	info := sem.MustAnalyze(seedProg)
	bp := bytecode.MustCompile(info)
	seedRes := vm.Run(cfg, bp)

	hot, distinctTraces := 0, 0
	for i := int64(0); i < 8; i++ {
		mutant, _, err := Mutate(seedProg, testCfg(i))
		if err != nil {
			t.Fatal(err)
		}
		mi := sem.MustAnalyze(mutant)
		mbp := bytecode.MustCompile(mi)
		cfg2 := cfg
		cfg2.JIT = jit.New(jit.Options{MaxTier: 2})
		res := vm.Run(cfg2, mbp)
		if res.Compilations > 0 {
			hot++
		}
		// A mutation landing in never-executed code legitimately keeps
		// the seed's default JIT trace; most mutants must change it.
		if res.Output.Term != vm.TermTimeout && res.Trace.Key() != seedRes.Trace.Key() {
			distinctTraces++
		}
	}
	if hot < 6 {
		t.Errorf("only %d/8 mutants triggered JIT compilation", hot)
	}
	if distinctTraces < 5 {
		t.Errorf("only %d/8 mutants explored a different JIT trace", distinctTraces)
	}
}

// TestNeutralityUnderCorrectJIT: on a bug-free VM, seed (interpreted)
// and mutant (JIT-compiled) must agree — the exact oracle of
// Algorithm 1.
func TestNeutralityUnderCorrectJIT(t *testing.T) {
	for s := int64(30); s < 45; s++ {
		seedProg := fuzz.Generate(fuzz.Options{Seed: s})
		ref := run(t, seedProg, vm.Config{StepLimit: 10_000_000})
		if ref.Term == vm.TermTimeout {
			continue
		}
		for i := int64(0); i < 3; i++ {
			mutant, rep, err := Mutate(seedProg, testCfg(s*10+i))
			if err != nil {
				t.Fatal(err)
			}
			got := run(t, mutant, vm.Config{
				JIT:             jit.New(jit.Options{MaxTier: 2}),
				EntryThresholds: []int64{80, 250},
				OSRThresholds:   []int64{100, 350},
				StepLimit:       500_000_000,
			})
			if got.Term == vm.TermTimeout {
				continue
			}
			if !got.Equivalent(ref) {
				t.Errorf("seed %d mutant %d (%s): JIT-compiled mutant differs from seed:\n seed:   %v %q %v\n mutant: %v %q %v",
					s, i, rep, ref.Term, ref.Detail, ref.Lines, got.Term, got.Detail, got.Lines)
			}
		}
	}
}

func TestMutatorSpecificShapes(t *testing.T) {
	src := `class T {
        int acc = 0;
        int work(int x) { acc += x; return acc; }
        void helper() { acc -= 1; }
        void main() {
            for (int i = 0; i < 4; i++) { print(work(i)); }
            helper();
            print(acc);
        }
    }`
	seedProg, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ref := run(t, ast.CloneProgram(seedProg), vm.Config{})

	for _, mut := range []MutatorName{LI, SW, MI} {
		found := false
		for i := int64(0); i < 12 && !found; i++ {
			cfg := testCfg(i)
			cfg.Mutators = []MutatorName{mut}
			cfg.MethodProb = 1
			mutant, rep, err := Mutate(seedProg, cfg)
			if err != nil {
				t.Fatalf("%s: %v", mut, err)
			}
			for _, a := range rep.Applied {
				if a.Mutator == mut {
					found = true
				}
			}
			got := run(t, mutant, vm.Config{StepLimit: 500_000_000})
			if got.Term != vm.TermTimeout && !got.Equivalent(ref) {
				t.Errorf("%s mutant not neutral (%s):\nseed %v mutant %v\n%s",
					mut, rep, ref.Lines, got.Lines, ast.Print(mutant))
			}
		}
		if !found {
			t.Errorf("mutator %s never applied", mut)
		}
	}
}
