package jonm

import (
	"fmt"

	"artemis/internal/lang/ast"
)

// loopInserter implements LI (Section 3.4): synthesize a loop and
// insert it at a random program point. The loop heats the enclosing
// method toward OSR compilation; depending on the VM this also brings
// an extra de-optimization when the loop exits.
func (mc *mutationCtx) loopInserter(i int) (Application, bool) {
	// Select the point on the (possibly still seed-shared) method;
	// the clone is structurally identical, so the chosen ordinal maps
	// 1:1 onto the clone's point list.
	m := mc.prog.Class.Methods[i]
	points := mc.collectPoints(m)
	idx := mc.rng.Intn(len(points))
	pp := points[idx]
	if !mc.cloned[i] {
		m = mc.ensureCloned(i)
		pp = mc.collectPoints(m)[idx]
	}
	sy := newSynth(mc, mc.scopeWithFields(mc.scopeAt(m, idx)))
	pre, loop, post := sy.synLoop(nil)

	var stmts []ast.Stmt
	stmts = append(stmts, pre...)
	stmts = append(stmts, loop)
	stmts = append(stmts, post...)
	pp.insert(stmts...)
	mc.touch(m.Name)
	return Application{Mutator: LI, Method: m.Name, Detail: "loop inserted"}, true
}

// statementWrapper implements SW: the statement right after ρ is
// wrapped inside the synthesized loop, guarded by a one-shot exec
// flag, so it executes exactly once while the surrounding loop gets
// hot — driving the statement and the loop to be compiled together.
//
// The loop body around the wrapped statement is synthesized in
// read-only mode: the original statement must observe exactly the
// state it would have observed in the seed.
func (mc *mutationCtx) statementWrapper(i int) (Application, bool) {
	m := mc.prog.Class.Methods[i]
	points := mc.collectPoints(m)
	// Candidate points: those directly followed by a wrappable
	// statement.
	var cands []int
	for idx, pp := range points {
		if wrappable(pp.next()) {
			cands = append(cands, idx)
		}
	}
	if len(cands) == 0 {
		return Application{}, false
	}
	idx := cands[mc.rng.Intn(len(cands))]
	pp := points[idx]
	if !mc.cloned[i] {
		m = mc.ensureCloned(i)
		pp = mc.collectPoints(m)[idx]
	}
	wrapped := pp.next()

	sy := newSynth(mc, mc.scopeWithFields(mc.scopeAt(m, idx)))
	sy.readOnly = true

	execName := mc.fresh("exec")
	oneShot := &ast.IfStmt{
		Cond: &ast.UnaryExpr{Op: ast.OpNot, X: &ast.Ident{Name: execName}},
		Then: &ast.Block{Stmts: []ast.Stmt{
			wrapped,
			&ast.AssignStmt{Target: &ast.Ident{Name: execName}, Op: ast.AsnSet, Value: &ast.BoolLit{Value: true}},
		}},
	}
	pre, loop, post := sy.synLoop([]ast.Stmt{oneShot})

	var stmts []ast.Stmt
	stmts = append(stmts, &ast.DeclStmt{Type: ast.TypeBoolean, Name: execName, Init: &ast.BoolLit{Value: false}})
	stmts = append(stmts, pre...)
	stmts = append(stmts, loop)
	stmts = append(stmts, post...)

	// Replace the wrapped statement with the whole construct.
	pp.replaceNext(&ast.Block{Stmts: stmts})
	mc.touch(m.Name)
	return Application{Mutator: SW, Method: m.Name, Detail: "statement wrapped"}, true
}

// wrappable reports whether s can be moved inside a synthesized loop
// without changing semantics or well-formedness: declarations would
// fall out of scope, loose break/continue would re-bind to the
// synthesized loop, and returns may be load-bearing for the
// definite-return analysis.
func wrappable(s ast.Stmt) bool {
	switch s.(type) {
	case nil, *ast.DeclStmt, *ast.BreakStmt, *ast.ContinueStmt:
		return false
	}
	return !hasLooseJump(s) && !containsReturn(s)
}

// containsReturn reports whether s contains a return statement
// anywhere.
func containsReturn(s ast.Stmt) bool {
	found := false
	var walk func(ast.Stmt)
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			found = true
		case *ast.Block:
			for _, bs := range s.Stmts {
				walk(bs)
			}
		case *ast.IfStmt:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *ast.ForStmt:
			walk(s.Body)
		case *ast.WhileStmt:
			walk(s.Body)
		case *ast.SwitchStmt:
			for _, c := range s.Cases {
				for _, bs := range c.Body {
					walk(bs)
				}
			}
		}
	}
	walk(s)
	return found
}

// hasLooseJump reports whether s contains a break/continue that binds
// outside s itself.
func hasLooseJump(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BreakStmt, *ast.ContinueStmt:
		return true
	case *ast.Block:
		for _, bs := range s.Stmts {
			if hasLooseJump(bs) {
				return true
			}
		}
	case *ast.IfStmt:
		for _, bs := range s.Then.Stmts {
			if hasLooseJump(bs) {
				return true
			}
		}
		if s.Else != nil {
			return hasLooseJump(s.Else)
		}
	case *ast.ForStmt, *ast.WhileStmt, *ast.SwitchStmt:
		// Their own breaks/continues bind inside; a nested continue
		// binding to an *outer* loop cannot be expressed in MJ
		// (no labels), so these are self-contained.
		return false
	}
	return false
}

// methodInvocator implements MI: pick a method m with at least one
// call site; give it a control-field-guarded early-return prologue;
// then insert a synthesized loop right before a random call site that
// pre-invokes m thousands of times with the control field set — the
// Figure 2 mechanism that gets m JIT-compiled (and speculated on)
// before its real call.
func (mc *mutationCtx) methodInvocator(i int) (Application, bool) {
	m := mc.prog.Class.Methods[i]
	if m.Name == "main" {
		return Application{}, false
	}
	sites := mc.callSites(m.Name)
	if len(sites) == 0 {
		return Application{}, false
	}
	site := sites[mc.rng.Intn(len(sites))]

	// Clone both edited methods now, and take the site point before
	// the prologue below shifts m's body (when the site is in m
	// itself, the point must index the pre-prologue statement list).
	m = mc.ensureCloned(i)
	siteM := mc.ensureCloned(site.mIdx)
	sp := mc.collectPoints(siteM)[site.ordinal]
	siteScope := mc.scopeAt(siteM, site.ordinal)

	// Control field, default false.
	ctrlName := mc.fresh("ctl")
	mc.prog.Class.Fields = append(mc.prog.Class.Fields,
		&ast.Field{Type: ast.TypeBoolean, Name: ctrlName, Init: &ast.BoolLit{Value: false}})

	// Early-return prologue: if (ctl) { <stmts>; return <expr>; }.
	// Synthesized in read-only mode — it runs on every pre-invocation
	// and must not disturb pre-existing state.
	var proScope []scopeVar
	for _, p := range m.Params {
		proScope = append(proScope, scopeVar{p.Name, p.Type})
	}
	proSy := newSynth(mc, mc.scopeWithFields(proScope))
	proSy.readOnly = true
	proBody := proSy.stmts()
	if m.Ret.Kind == ast.KindVoid {
		proBody = append(proBody, &ast.ReturnStmt{})
	} else {
		proBody = append(proBody, &ast.ReturnStmt{Value: proSy.expr(m.Ret)})
	}
	prologue := &ast.IfStmt{
		Cond: &ast.Ident{Name: ctrlName},
		Then: &ast.Block{Stmts: proBody},
	}
	m.Body.Stmts = append([]ast.Stmt{prologue}, m.Body.Stmts...)

	// Pre-invocation loop before the chosen call site:
	//   ctl = true; m(<synthesized args>); ctl = false;
	// Args are synthesized from variables in scope at the site.
	siteSy := newSynth(mc, mc.scopeWithFields(siteScope))
	call := &ast.CallExpr{Name: m.Name}
	for _, p := range m.Params {
		call.Args = append(call.Args, siteSy.expr(p.Type))
	}
	var callStmt ast.Stmt = &ast.ExprStmt{X: call}
	if m.Ret.Kind != ast.KindVoid {
		// Calls are statements only when the result is discarded; MJ
		// requires ExprStmt to be a call, which it is.
		callStmt = &ast.ExprStmt{X: call}
	}
	placeholder := []ast.Stmt{
		&ast.AssignStmt{Target: &ast.Ident{Name: ctrlName}, Op: ast.AsnSet, Value: &ast.BoolLit{Value: true}},
		callStmt,
		&ast.AssignStmt{Target: &ast.Ident{Name: ctrlName}, Op: ast.AsnSet, Value: &ast.BoolLit{Value: false}},
	}
	pre, loop, post := siteSy.synLoop(placeholder)

	var stmts []ast.Stmt
	stmts = append(stmts, pre...)
	stmts = append(stmts, loop)
	stmts = append(stmts, post...)
	sp.insert(stmts...)
	mc.touch(m.Name)
	mc.touch(siteM.Name) // the call-site method's body changed too

	return Application{Mutator: MI, Method: m.Name,
		Detail: fmt.Sprintf("pre-invoked before call in %s", siteM.Name)}, true
}

// callSite names a statement position directly containing a call to a
// target method: method mIdx's point list, entry ordinal. Ordinals
// stay valid across cloning (the clone is structurally identical).
type callSite struct {
	mIdx    int
	ordinal int
}

// callSites finds every statement in the program whose expressions
// call the named method, returning the insertion point just before it.
func (mc *mutationCtx) callSites(name string) []callSite {
	var sites []callSite
	for mi, m := range mc.prog.Class.Methods {
		points := mc.collectPoints(m)
		for idx, pp := range points {
			s := pp.next()
			if s == nil {
				continue
			}
			if stmtCalls(s, name) {
				sites = append(sites, callSite{mIdx: mi, ordinal: idx})
			}
		}
	}
	return sites
}

// stmtCalls reports whether the statement's own expressions (not those
// of nested statements) contain a call to name.
func stmtCalls(s ast.Stmt, name string) bool {
	found := false
	check := func(e ast.Expr) {
		ast.WalkExprs(e, func(x ast.Expr) {
			if c, ok := x.(*ast.CallExpr); ok && c.Name == name {
				found = true
			}
		})
	}
	switch s := s.(type) {
	case *ast.DeclStmt:
		check(s.Init)
	case *ast.AssignStmt:
		check(s.Target)
		check(s.Value)
	case *ast.ExprStmt:
		check(s.X)
	case *ast.PrintStmt:
		check(s.X)
	case *ast.ReturnStmt:
		check(s.Value)
	case *ast.IfStmt:
		check(s.Cond)
	case *ast.WhileStmt:
		check(s.Cond)
	case *ast.SwitchStmt:
		check(s.Tag)
	case *ast.ForStmt:
		if d, ok := s.Init.(*ast.DeclStmt); ok {
			check(d.Init)
		}
		if a, ok := s.Init.(*ast.AssignStmt); ok {
			check(a.Value)
		}
		check(s.Cond)
	}
	return found
}
