# Tier-1 gate plus the extended checks CI runs. The container this
# repo is developed in has a single vCPU, so race-enabled campaign
# tests are slow: every target carries an explicit -timeout generous
# enough for that hardware.

GO      ?= go
TIMEOUT ?= 9000s

.PHONY: all build vet test race bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Tier-1 gate: everything must build and every test must pass.
test: build
	$(GO) test -timeout $(TIMEOUT) ./...

# Race-enabled run of the packages with real concurrency (the parallel
# campaign engine and the compilation-space enumerator live in
# internal/harness; the root package drives them from benchmarks).
race:
	$(GO) test -race -timeout $(TIMEOUT) ./internal/harness/ .

# One-shot pass over every benchmark, mostly to prove they still run;
# use bigger -benchtime for real measurements.
bench:
	$(GO) test -bench . -benchtime 1x -timeout $(TIMEOUT) .

ci: vet test race
