# Tier-1 gate plus the extended checks CI runs. The container this
# repo is developed in has a single vCPU, so race-enabled campaign
# tests are slow: every target carries an explicit -timeout generous
# enough for that hardware.

GO      ?= go
TIMEOUT ?= 9000s

.PHONY: all build fmt vet test race resume blame-smoke bench bench-smoke ci

all: ci

build:
	$(GO) build ./...

# gofmt -l prints nothing on success; any output fails the gate.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Tier-1 gate: everything must build and every test must pass
# (./... covers internal/journal and the resume/corpus suite).
test: build
	$(GO) test -timeout $(TIMEOUT) ./...

# Race-enabled run of the packages with real concurrency: the parallel
# campaign engine (internal/harness), the per-VM DisablePasses plumbing
# that concurrent bisection probes rely on (internal/jit, internal/vm),
# and the root package that drives them from benchmarks.
race:
	$(GO) test -race -timeout $(TIMEOUT) ./internal/harness/ ./internal/jit/ ./internal/vm/ .

# Blame smoke gate: bisect the flagship GCM store-sink reproducer and
# assert the behavior-derived localization names gcm (plus the rest of
# the fast blame-engine suite — verdicts, budget, determinism).
blame-smoke:
	$(GO) test -timeout $(TIMEOUT) ./internal/blame/

# Resume-determinism gate: interrupt+resume must be byte-identical to
# an uninterrupted campaign at workers 1/2/4, including after a torn
# final journal record. Part of `race` coverage too; this target runs
# just the gate for quick iteration on persistence code.
resume:
	$(GO) test -timeout $(TIMEOUT) \
		-run 'TestResumeDeterminism|TestResumeAfterTornRecord|TestCorpus' \
		./internal/journal/ ./internal/harness/

# One-shot pass over every benchmark to prove they still run, then
# the structured throughput report: cmd/bench measures campaign
# runs/sec, mutate+compile ns/op and allocs/op, and interpreter
# ns/op, writing BENCH_campaign.json for cross-commit diffing.
bench:
	$(GO) test -bench . -benchtime 1x -timeout $(TIMEOUT) .
	$(GO) run ./cmd/bench -seeds 30 -out BENCH_campaign.json

# Cheap smoke variant for CI: proves the report pipeline works
# without paying for a statistically meaningful measurement.
bench-smoke:
	$(GO) run ./cmd/bench -seeds 3 -benchtime 0.05 -out BENCH_campaign.json

ci: fmt vet test race resume blame-smoke bench-smoke
